(* Command-line front end for the ISS simulator.

   Examples:
     iss_sim run --system iss-pbft -n 32 --rate 16400 --duration 60
     iss_sim run --system single-raft -n 16 --rate 4000 --crash 3@10
     iss_sim peak --system iss-hotstuff -n 128 --duration 20
     iss_sim topology *)

open Cmdliner

(* Poor-man's sampling profiler: ISS_PROFILE=1 samples the call stack on a
   virtual-time interval timer and dumps the hottest frames at exit.  Only
   for development; OCaml 5 dropped gprof support. *)
let setup_profiler () =
  if Sys.getenv_opt "ISS_PROFILE" <> None then begin
    let samples : (string, int) Hashtbl.t = Hashtbl.create 1024 in
    let total = ref 0 in
    Sys.set_signal Sys.sigvtalrm
      (Sys.Signal_handle
         (fun _ ->
           incr total;
           let stack = Printexc.get_callstack 8 in
           let slots = Printexc.backtrace_slots stack in
           match slots with
           | Some slots ->
               Array.iteri
                 (fun depth slot ->
                   if depth = 1 then
                     match Printexc.Slot.location slot with
                     | Some loc ->
                         let key = Printf.sprintf "%s:%d" loc.Printexc.filename loc.Printexc.line_number in
                         Hashtbl.replace samples key
                           (1 + Option.value ~default:0 (Hashtbl.find_opt samples key))
                     | None -> ())
                 slots
           | None -> ()));
    ignore
      (Unix.setitimer Unix.ITIMER_VIRTUAL { Unix.it_interval = 0.001; it_value = 0.001 });
    at_exit (fun () ->
        let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) samples [] in
        let all = List.sort (fun (_, a) (_, b) -> compare b a) all in
        Printf.eprintf "--- profile: %d samples ---\n" !total;
        List.iteri (fun i (k, v) -> if i < 30 then Printf.eprintf "%8d  %s\n" v k) all)
  end

let system_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "iss-pbft" -> Ok (Runner.Cluster.Iss Core.Config.PBFT)
    | "iss-hotstuff" -> Ok (Runner.Cluster.Iss Core.Config.HotStuff)
    | "iss-raft" -> Ok (Runner.Cluster.Iss Core.Config.Raft)
    | "single-pbft" | "pbft" -> Ok (Runner.Cluster.Single Core.Config.PBFT)
    | "single-hotstuff" | "hotstuff" -> Ok (Runner.Cluster.Single Core.Config.HotStuff)
    | "single-raft" | "raft" -> Ok (Runner.Cluster.Single Core.Config.Raft)
    | "mir" | "mir-bft" | "mirbft" -> Ok Runner.Cluster.Mir
    | other -> Error (`Msg (Printf.sprintf "unknown system %S" other))
  in
  let print fmt s = Format.pp_print_string fmt (Runner.Cluster.system_name s) in
  Arg.conv (parse, print)

let policy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "simple" -> Ok Core.Config.Simple
    | "backoff" -> Ok Core.Config.Backoff
    | "blacklist" -> Ok Core.Config.Blacklist
    | "straggler-aware" | "straggler_aware" -> Ok Core.Config.Straggler_aware
    | other -> Error (`Msg (Printf.sprintf "unknown policy %S" other))
  in
  let print fmt p = Format.pp_print_string fmt (Core.Config.policy_name p) in
  Arg.conv (parse, print)

let fault_conv =
  (* "3@10" = crash node 3 at t=10s; "3@end" = epoch-end crash;
     "straggler:3" = node 3 is a Byzantine straggler. *)
  let parse s =
    match String.split_on_char ':' s with
    | [ "straggler"; node ] -> (
        match int_of_string_opt node with
        | Some node -> Ok (Runner.Experiment.Straggler node)
        | None -> Error (`Msg "straggler:<node>"))
    | _ -> (
        match String.split_on_char '@' s with
        | [ node; "end" ] -> (
            match int_of_string_opt node with
            | Some node -> Ok (Runner.Experiment.Crash_epoch_end node)
            | None -> Error (`Msg "crash spec: <node>@end"))
        | [ node; at ] -> (
            match (int_of_string_opt node, float_of_string_opt at) with
            | Some node, Some at -> Ok (Runner.Experiment.Crash_at (node, at))
            | _ -> Error (`Msg "crash spec: <node>@<seconds>"))
        | _ -> Error (`Msg "fault spec: <node>@<seconds>, <node>@end or straggler:<node>"))
  in
  let print fmt = function
    | Runner.Experiment.Crash_at (node, at) -> Format.fprintf fmt "%d@%g" node at
    | Runner.Experiment.Crash_epoch_end node -> Format.fprintf fmt "%d@end" node
    | Runner.Experiment.Straggler node -> Format.fprintf fmt "straggler:%d" node
  in
  Arg.conv (parse, print)

let system_arg =
  Arg.(
    required
    & opt (some system_conv) None
    & info [ "system"; "s" ] ~docv:"SYSTEM"
        ~doc:
          "System to run: iss-pbft, iss-hotstuff, iss-raft, single-pbft, single-hotstuff, \
           single-raft, or mir.")

let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let duration_arg =
  Arg.(value & opt float 30.0 & info [ "duration"; "d" ] ~doc:"Simulated seconds.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let policy_arg =
  Arg.(
    value
    & opt (some policy_conv) None
    & info [ "policy" ] ~doc:"Leader selection policy (simple, backoff, blacklist).")

let series_arg =
  Arg.(value & flag & info [ "series" ] ~doc:"Print the 1-second throughput series.")

let print_result ~series r =
  Format.printf "%a@." Runner.Experiment.pp_result r;
  if series then begin
    Format.printf "throughput series (req/s per 1s bin):@.";
    Array.iteri (fun i v -> Format.printf "  t=%3ds  %10.0f@." i v) r.Runner.Experiment.series
  end

let run_cmd =
  let rate_arg =
    Arg.(value & opt float 1000.0 & info [ "rate"; "r" ] ~doc:"Offered load, requests/s.")
  in
  let faults_arg =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault"; "crash" ] ~docv:"FAULT"
          ~doc:"Fault to inject: <node>@<seconds>, <node>@end, or straggler:<node>.")
  in
  let relaxed_arg =
    Arg.(
      value & flag
      & info [ "relaxed" ]
          ~doc:"Disable strict per-request validation (fast large benchmarks).")
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            (Printf.sprintf
               "Named chaos scenario to run under the invariant checker: %s.  \"chaos\" \
                generates a randomized schedule from --seed.  The run is extended past the \
                schedule's heal time and fails (exit 1) if any invariant breaks."
               (String.concat ", " Runner.Faults.scenario_names)))
  in
  let go system n rate duration seed policy faults scenario series relaxed =
    let tweak c = { c with Core.Config.strict_validation = not relaxed } in
    let seed = Int64.of_int seed in
    let scenario =
      match scenario with
      | None -> None
      | Some "chaos" -> Some (Runner.Faults.random ~seed ~n ~duration_s:duration)
      | Some name -> (
          match Runner.Faults.named ~n name with
          | Ok sc -> Some sc
          | Error e ->
              Format.eprintf "%s@." e;
              exit 2)
    in
    Option.iter (fun sc -> Format.printf "%a@." Runner.Faults.pp sc) scenario;
    match
      Runner.Experiment.run ?policy ~tweak ~faults ?scenario ~system ~n ~rate
        ~duration_s:duration ~seed ()
    with
    | r ->
        print_result ~series r;
        if Option.is_some scenario then Format.printf "invariants: OK@."
    | exception Runner.Cluster.Invariant_violation report ->
        Format.eprintf "INVARIANT VIOLATION@.%s@." report;
        exit 1
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one measurement experiment.")
    Term.(
      const go $ system_arg $ n_arg $ rate_arg $ duration_arg $ seed_arg $ policy_arg
      $ faults_arg $ scenario_arg $ series_arg $ relaxed_arg)

let peak_cmd =
  let go system n duration seed series =
    let r =
      Runner.Experiment.peak_throughput ~system ~n ~duration_s:duration
        ~seed:(Int64.of_int seed) ()
    in
    print_result ~series r
  in
  Cmd.v
    (Cmd.info "peak" ~doc:"Measure peak throughput (over-saturated run, Fig. 5 metric).")
    Term.(const go $ system_arg $ n_arg $ duration_arg $ seed_arg $ series_arg)

let topology_cmd =
  let go () =
    let dcs = Sim.Topology.datacenters in
    Format.printf "%d datacenters; one-way latency matrix (ms):@." (Array.length dcs);
    Format.printf "%14s" "";
    Array.iter (fun (d : Sim.Topology.datacenter) -> Format.printf "%9s" (String.sub d.name 0 (min 8 (String.length d.name)))) dcs;
    Format.printf "@.";
    Array.iteri
      (fun i (d : Sim.Topology.datacenter) ->
        Format.printf "%14s" d.name;
        Array.iteri
          (fun j _ -> Format.printf "%9.1f" (Sim.Time_ns.to_ms_f (Sim.Topology.latency i j)))
          dcs;
        Format.printf "@.")
      dcs
  in
  Cmd.v (Cmd.info "topology" ~doc:"Print the modeled WAN latency matrix.") Term.(const go $ const ())

let config_cmd =
  let go system n =
    let config =
      match system with
      | Runner.Cluster.Iss p -> Core.Config.default_for p ~n
      | Runner.Cluster.Single p ->
          { (Core.Config.default_for p ~n) with Core.Config.leader_policy = Core.Config.Fixed [ 0 ] }
      | Runner.Cluster.Mir -> Core.Config.pbft_default ~n
    in
    Format.printf "%a@." Core.Config.pp config
  in
  Cmd.v (Cmd.info "config" ~doc:"Print the configuration a system would run with.")
    Term.(const go $ system_arg $ n_arg)

let () =
  setup_profiler ();
  let info = Cmd.info "iss_sim" ~doc:"ISS (Insanely Scalable SMR) simulator." in
  exit (Cmd.eval (Cmd.group info [ run_cmd; peak_cmd; topology_cmd; config_cmd ]))
