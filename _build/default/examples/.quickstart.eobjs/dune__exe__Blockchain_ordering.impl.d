examples/blockchain_ordering.ml: Array Core Format Iss_crypto List Pbft Printf Proto Sim String
