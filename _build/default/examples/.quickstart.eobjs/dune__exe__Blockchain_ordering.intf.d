examples/blockchain_ordering.mli:
