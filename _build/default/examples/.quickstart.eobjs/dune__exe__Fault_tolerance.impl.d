examples/fault_tolerance.ml: Array Core Format List Pbft Printf Proto Sim String
