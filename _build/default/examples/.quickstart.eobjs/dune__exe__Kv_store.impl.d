examples/kv_store.ml: Array Core Format Hashtbl Iss_crypto List Printf Proto Raft Sim String
