examples/quickstart.ml: Array Core Format Pbft Proto Sim
