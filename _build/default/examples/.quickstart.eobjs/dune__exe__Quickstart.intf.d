examples/quickstart.mli:
