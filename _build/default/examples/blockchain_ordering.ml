(* A blockchain ordering service à la Hyperledger Fabric, the paper's other
   motivating use case: ISS (with PBFT) orders transactions into batches,
   and each delivered batch becomes a block whose header links the previous
   block's hash — every replica independently builds the identical chain.

     dune exec examples/blockchain_ordering.exe *)

type block = {
  height : int;
  prev : Iss_crypto.Hash.t;
  txs_root : Iss_crypto.Hash.t;  (* Merkle root over the transaction ids *)
  tx_count : int;
}

let block_hash b =
  Iss_crypto.Hash.of_string
    (Printf.sprintf "block:%d:%s:%s:%d" b.height
       (Iss_crypto.Hash.to_hex b.prev)
       (Iss_crypto.Hash.to_hex b.txs_root)
       b.tx_count)

let () =
  let n = 4 in
  let config = Core.Config.pbft_default ~n in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:23L in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in

  (* Each replica's chain. *)
  let genesis = Iss_crypto.Hash.of_string "genesis" in
  let chains = Array.init n (fun _ -> ref []) in

  let hooks =
    {
      Core.Node.default_hooks with
      on_batch_deliver =
        (fun node ~sn:_ ~first_request_sn:_ batch ->
          let me = Core.Node.id node in
          let chain = chains.(me) in
          let prev = match !chain with b :: _ -> block_hash b | [] -> genesis in
          let leaves =
            Array.map
              (fun (r : Proto.Request.t) ->
                Iss_crypto.Hash.of_int (Proto.Request.id_key r.id))
              (Proto.Batch.requests batch)
          in
          let b =
            {
              height = List.length !chain;
              prev;
              txs_root = Iss_crypto.Merkle.root leaves;
              tx_count = Proto.Batch.length batch;
            }
          in
          chain := b :: !chain;
          if me = 0 then
            Format.printf "[%a] block %3d  %s...  (%d txs)@." Sim.Time_ns.pp
              (Sim.Engine.now engine) b.height
              (String.sub (Iss_crypto.Hash.to_hex (block_hash b)) 0 16)
              b.tx_count);
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine
          ~send:(fun ~dst msg ->
            Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
          ~orderer_factory:Pbft.Pbft_orderer.factory ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;
  Array.iter Core.Node.start nodes;

  (* Transaction traffic from 8 wallets. *)
  for k = 0 to 199 do
    ignore
      (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms (25 * k)) (fun () ->
           let r =
             Proto.Request.make ~client:(2000 + (k mod 8)) ~ts:(k / 8)
               ~submitted_at:(Sim.Engine.now engine) ()
           in
           Array.iter (fun node -> Core.Node.submit node r) nodes))
  done;

  Sim.Engine.run ~until:(Sim.Time_ns.sec 30) engine;

  (* All replicas must have built the same chain (prefix-wise). *)
  let tip chain = match !chain with b :: _ -> Some (block_hash b) | [] -> None in
  let heights = Array.map (fun c -> List.length !(c)) chains in
  let min_height = Array.fold_left min max_int heights in
  let prefix chain = List.filteri (fun i _ -> i >= List.length !chain - min_height) !chain in
  let p0 = prefix chains.(0) in
  let all_equal =
    Array.for_all
      (fun c ->
        List.for_all2
          (fun a b -> Iss_crypto.Hash.equal (block_hash a) (block_hash b))
          (prefix c) p0)
      chains
  in
  Array.iteri
    (fun i c ->
      Format.printf "replica %d: height %d, tip %s@." i (List.length !c)
        (match tip c with
        | Some h -> String.sub (Iss_crypto.Hash.to_hex h) 0 16 ^ "..."
        | None -> "(empty)"))
    chains;
  let txs = List.fold_left (fun acc b -> acc + b.tx_count) 0 !(chains.(0)) in
  Format.printf "@.identical chains on the common prefix: %b; %d transactions in chain 0@."
    all_equal txs
