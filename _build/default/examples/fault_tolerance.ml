(* Fault tolerance demo: a 7-node ISS-PBFT cluster (f = 2) survives a
   crashed leader.  Watch the BLACKLIST policy exclude the dead node from
   the leader set after its segment is filled with ⊥, while ordering
   continues.

     dune exec examples/fault_tolerance.exe *)

let () =
  let n = 7 in
  (* Short epochs so the demo shows several epoch transitions: at light
     load, a leader proposes (possibly empty) batches only every few
     seconds, so the default 256-slot epochs would span minutes. *)
  let config = { (Core.Config.pbft_default ~n) with Core.Config.min_epoch_length = 28 } in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:31L in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in

  let delivered = ref 0 in
  let hooks =
    {
      Core.Node.default_hooks with
      on_batch_deliver =
        (fun node ~sn:_ ~first_request_sn:_ batch ->
          if Core.Node.id node = 0 then delivered := !delivered + Proto.Batch.length batch);
      on_epoch_start =
        (fun node ~epoch ~leaders ~bucket_leaders:_ ->
          if Core.Node.id node = 0 then
            Format.printf "[%a] epoch %d starts; leaders = {%s}%s@." Sim.Time_ns.pp
              (Sim.Engine.now engine) epoch
              (String.concat ", "
                 (Array.to_list (Array.map string_of_int leaders)))
              (if Array.exists (fun l -> l = 2) leaders then "" else "   <- node 2 excluded"));
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine
          ~send:(fun ~dst msg ->
            Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
          ~orderer_factory:Pbft.Pbft_orderer.factory ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;
  Array.iter Core.Node.start nodes;

  (* Continuous light load from 16 clients. *)
  for k = 0 to 399 do
    ignore
      (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms (100 * k)) (fun () ->
           let r =
             Proto.Request.make ~client:(3000 + (k mod 16)) ~ts:(k / 16)
               ~submitted_at:(Sim.Engine.now engine) ()
           in
           Array.iter
             (fun node -> if not (Core.Node.is_halted node) then Core.Node.submit node r)
             nodes))
  done;

  (* Crash node 2 (a leader) five seconds in. *)
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.sec 5) (fun () ->
         Format.printf "[%a] *** crashing node 2 ***@." Sim.Time_ns.pp (Sim.Engine.now engine);
         Sim.Network.crash net 2;
         Core.Node.halt nodes.(2)));

  Sim.Engine.run ~until:(Sim.Time_ns.sec 90) engine;

  (* Correct nodes keep agreeing and delivering. *)
  let frontier node = Core.Log.first_undelivered (Core.Node.log node) in
  Format.printf "@.node 0 delivered %d requests; delivery frontiers: %s@." !delivered
    (String.concat ", "
       (List.filter_map
          (fun i ->
            if i = 2 then None
            else Some (Printf.sprintf "n%d:%d" i (frontier nodes.(i))))
          (List.init n (fun i -> i))));
  let nils =
    Core.Log.nil_entries (Core.Node.log nodes.(0)) ~from_sn:0
      ~to_sn:(frontier nodes.(0) - 1)
  in
  Format.printf "⊥ entries in node 0's log (the dead leader's positions): %d@."
    (List.length nils)
