(* A replicated key-value store on top of ISS — the "resilient database"
   use case from the paper's introduction.

   The SMR layer (ISS-Raft here: a CFT database cluster) totally orders
   PUT operations; each replica applies them to a local hash table in
   delivery order.  Because every replica applies the same operations in
   the same order (SMR2/SMR3), the replicas' states stay identical — which
   this example verifies at the end with a state digest.

     dune exec examples/kv_store.exe *)

(* Application payloads ride outside the ISS request (ISS is payload
   oblivious, §3.7); we correlate them by request id. *)
type op = Put of { key : string; value : string }

let () =
  let n = 5 in
  let config = Core.Config.raft_default ~n in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:11L in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in

  (* The operation store: request id -> operation (a real deployment ships
     the payload inside the request body; the simulator carries sizes only,
     so the examples keep payloads in this side table). *)
  let ops : (int, op) Hashtbl.t = Hashtbl.create 64 in

  (* One state machine per replica. *)
  let stores = Array.init n (fun _ -> Hashtbl.create 64) in
  let applied = Array.make n 0 in

  let hooks =
    {
      Core.Node.default_hooks with
      on_deliver =
        Some
          (fun node (d : Core.Log.delivery) ->
            let me = Core.Node.id node in
            match Hashtbl.find_opt ops (Proto.Request.id_key d.request.Proto.Request.id) with
            | Some (Put { key; value }) ->
                Hashtbl.replace stores.(me) key value;
                applied.(me) <- applied.(me) + 1;
                if me = 0 then
                  Format.printf "[%a] apply #%d: PUT %s = %s@." Sim.Time_ns.pp
                    (Sim.Engine.now engine) d.request_sn key value
            | None -> ());
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine
          ~send:(fun ~dst msg ->
            Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
          ~orderer_factory:Raft.Raft_orderer.factory ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;
  Array.iter Core.Node.start nodes;

  (* Issue writes from two "database clients". *)
  let submit ~client ~ts key value =
    let r =
      Proto.Request.make ~client ~ts ~payload_size:(String.length key + String.length value)
        ~sig_data:Proto.Request.Unsigned ~submitted_at:(Sim.Engine.now engine) ()
    in
    Hashtbl.replace ops (Proto.Request.id_key r.id) (Put { key; value });
    Array.iter (fun node -> Core.Node.submit node r) nodes
  in
  let words = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" |] in
  for k = 0 to 23 do
    ignore
      (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms (150 * k)) (fun () ->
           submit ~client:(1000 + (k mod 2)) ~ts:(k / 2)
             (Printf.sprintf "key-%d" (k mod 6))
             (Printf.sprintf "%s-%d" words.(k mod 6) k)))
  done;

  Sim.Engine.run ~until:(Sim.Time_ns.sec 120) engine;

  (* Verify replica convergence: identical state digests everywhere. *)
  let digest store =
    let entries =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [] |> List.sort compare
    in
    Iss_crypto.Sha256.digest_hex
      (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) entries))
  in
  let d0 = digest stores.(0) in
  Array.iteri
    (fun i store ->
      Format.printf "replica %d: applied %d ops, state digest %s...@." i applied.(i)
        (String.sub (digest store) 0 16))
    stores;
  let converged = Array.for_all (fun s -> String.equal (digest s) d0) stores in
  Format.printf "@.replicas converged: %b (%d keys)@." converged (Hashtbl.length stores.(0))
