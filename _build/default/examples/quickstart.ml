(* Quickstart: a 4-node ISS-PBFT cluster ordering client requests.

   This example uses the full client path — real Client processes with
   signed requests, leader detection via Bucket_update messages, reply
   quorums — over the simulated WAN.

     dune exec examples/quickstart.exe *)

let () =
  let n = 4 in
  let config = Core.Config.pbft_default ~n in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:7L in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in

  (* Every process sends through the simulated network; message sizes are
     accounted automatically. *)
  let send_from src ~dst msg =
    Sim.Network.send net ~src ~dst ~size:(Proto.Message.wire_size msg) msg
  in

  (* Replicas: print every delivery at node 0 to show the total order. *)
  let hooks =
    {
      Core.Node.default_hooks with
      on_deliver =
        Some
          (fun node (d : Core.Log.delivery) ->
            let me = Core.Node.id node in
            if me = 0 then
              Format.printf "[%a] node0 delivered request %a as #%d (batch sn %d)@."
                Sim.Time_ns.pp (Sim.Engine.now engine) Proto.Request.pp_id
                d.request.Proto.Request.id d.request_sn d.batch_sn;
            (* Every replica answers the client; the client waits for f+1
               matching replies (§4.3). *)
            send_from me ~dst:d.request.Proto.Request.id.Proto.Request.client
              (Proto.Message.Reply
                 { req_id = d.request.Proto.Request.id; sn = d.request_sn; replier = me }));
      on_epoch_start =
        (fun node ~epoch ~leaders ~bucket_leaders ->
          (* Nodes push the new bucket assignment to clients (§4.3). *)
          if epoch = 0 || true then begin
            ignore leaders;
            for c = n to n + 2 do
              send_from (Core.Node.id node) ~dst:c
                (Proto.Message.Bucket_update { epoch; bucket_leaders })
            done
          end);
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine ~send:(send_from id)
          ~orderer_factory:Pbft.Pbft_orderer.factory ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;

  (* Three clients spread over the planet. *)
  let completed = ref 0 in
  let clients =
    Array.init 3 (fun i ->
        let id = n + i in
        Core.Client.create ~config ~id ~engine ~send:(send_from id)
          ~on_complete:(fun req ~latency ->
            incr completed;
            Format.printf "[%a] client %d: request %a confirmed in %.0f ms@." Sim.Time_ns.pp
              (Sim.Engine.now engine) id Proto.Request.pp_id req.Proto.Request.id
              (Sim.Time_ns.to_ms_f latency))
          ())
  in
  Array.iteri
    (fun i client ->
      Sim.Network.add_endpoint net ~id:(n + i) ~category:Sim.Network.Client
        ~datacenter:(i * 5 mod 16)
        ~handler:(fun ~src ~size:_ msg -> Core.Client.on_message client ~src msg))
    clients;

  Array.iter Core.Node.start nodes;

  (* Each client submits 5 requests over the first seconds. *)
  Array.iter
    (fun client ->
      for k = 0 to 4 do
        ignore
          (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms (300 * k)) (fun () ->
               Core.Client.submit_next client))
      done)
    clients;

  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) engine;
  Format.printf "@.%d requests confirmed by reply quorums; %d events simulated@." !completed
    (Sim.Engine.events_executed engine)
