lib/brb/bracha.ml: Brb_msg Hashtbl Iss_crypto Proto
