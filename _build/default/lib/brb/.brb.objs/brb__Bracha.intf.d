lib/brb/bracha.mli: Brb_msg Proto
