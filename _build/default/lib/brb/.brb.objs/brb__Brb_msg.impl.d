lib/brb/brb_msg.ml: Iss_crypto String
