lib/brb/consensus.ml: Brb_msg Hashtbl Iss_crypto Option Proto Sim
