lib/brb/consensus.mli: Brb_msg Proto Sim
