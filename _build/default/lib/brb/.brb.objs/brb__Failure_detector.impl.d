lib/brb/failure_detector.ml: Array Brb_msg List Proto Sim
