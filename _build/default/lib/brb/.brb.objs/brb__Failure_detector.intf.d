lib/brb/failure_detector.mli: Brb_msg Proto Sim
