lib/brb/sb_cons.ml: Array Bracha Brb_msg Consensus Failure_detector Hashtbl Lazy List Proto String
