lib/brb/sb_cons.mli: Brb_msg Failure_detector Proto Sim
