type t = {
  n : int;
  f : int;
  me : Proto.Ids.node_id;
  instance : int;
  sender : Proto.Ids.node_id;
  send : dst:Proto.Ids.node_id -> Brb_msg.t -> unit;
  deliver : string -> unit;
  echoes : (Proto.Ids.node_id, Iss_crypto.Hash.t) Hashtbl.t;
  readies : (Proto.Ids.node_id, Iss_crypto.Hash.t) Hashtbl.t;
  payloads : (string, string) Hashtbl.t;  (* digest raw -> payload *)
  mutable sent_value : bool;
  mutable echoed : bool;
  mutable readied : bool;
  mutable output : string option;
}

let create ~n ~me ~instance ~sender ~send ~deliver =
  {
    n;
    f = Proto.Ids.max_faulty ~n;
    me;
    instance;
    sender;
    send;
    deliver;
    echoes = Hashtbl.create 8;
    readies = Hashtbl.create 8;
    payloads = Hashtbl.create 4;
    sent_value = false;
    echoed = false;
    readied = false;
    output = None;
  }

let bcast t msg =
  for dst = 0 to t.n - 1 do
    t.send ~dst msg
  done

let broadcast t payload =
  if t.me <> t.sender then invalid_arg "Bracha.broadcast: not the designated sender";
  if not t.sent_value then begin
    t.sent_value <- true;
    bcast t (Brb_msg.Brb_send { instance = t.instance; payload })
  end

let count_matching tbl digest =
  Hashtbl.fold (fun _ d acc -> if Iss_crypto.Hash.equal d digest then acc + 1 else acc) tbl 0

let rec progress t =
  match t.output with
  | Some _ -> ()
  | None ->
      (* Amplify READY at f+1, emit READY at 2f+1 ECHOs, deliver at 2f+1
         READYs with a known payload. *)
      let try_ready digest =
        if not t.readied then begin
          let echo_quorum = count_matching t.echoes digest >= t.n - t.f in
          let ready_support = count_matching t.readies digest >= t.f + 1 in
          if echo_quorum || ready_support then begin
            t.readied <- true;
            let payload = Hashtbl.find_opt t.payloads (Iss_crypto.Hash.raw digest) in
            bcast t (Brb_msg.Brb_ready { instance = t.instance; digest; payload });
            progress t
          end
        end
      in
      let try_deliver digest =
        if count_matching t.readies digest >= t.n - t.f then
          match Hashtbl.find_opt t.payloads (Iss_crypto.Hash.raw digest) with
          | Some payload ->
              t.output <- Some payload;
              t.deliver payload
          | None -> ()
      in
      (* Evaluate against every digest we have heard of. *)
      let candidates = Hashtbl.create 4 in
      Hashtbl.iter (fun _ d -> Hashtbl.replace candidates (Iss_crypto.Hash.raw d) d) t.echoes;
      Hashtbl.iter (fun _ d -> Hashtbl.replace candidates (Iss_crypto.Hash.raw d) d) t.readies;
      Hashtbl.iter (fun _ d -> try_ready d) candidates;
      Hashtbl.iter (fun _ d -> try_deliver d) candidates

let on_message t ~src msg =
  match msg with
  | Brb_msg.Brb_send { instance; payload } when instance = t.instance ->
      if src = t.sender && not t.echoed then begin
        t.echoed <- true;
        let digest = Iss_crypto.Hash.of_string payload in
        Hashtbl.replace t.payloads (Iss_crypto.Hash.raw digest) payload;
        bcast t (Brb_msg.Brb_echo { instance = t.instance; digest });
        progress t
      end
  | Brb_msg.Brb_echo { instance; digest } when instance = t.instance ->
      if not (Hashtbl.mem t.echoes src) then begin
        Hashtbl.replace t.echoes src digest;
        progress t
      end
  | Brb_msg.Brb_ready { instance; digest; payload } when instance = t.instance ->
      if not (Hashtbl.mem t.readies src) then begin
        Hashtbl.replace t.readies src digest;
        (match payload with
        | Some p when Iss_crypto.Hash.equal (Iss_crypto.Hash.of_string p) digest ->
            Hashtbl.replace t.payloads (Iss_crypto.Hash.raw digest) p
        | Some _ | None -> ());
        progress t
      end
  | Brb_msg.Brb_send _ | Brb_msg.Brb_echo _ | Brb_msg.Brb_ready _ | Brb_msg.Bc_propose _
  | Brb_msg.Bc_vote _ | Brb_msg.Bc_decide _ | Brb_msg.Fd_beat ->
      ()

let delivered t = t.output
