(** Bracha's Byzantine reliable broadcast (1987), one instance per id.

    SEND → ECHO (2f+1) → READY (amplified at f+1, delivered at 2f+1).
    Guarantees, with n ≥ 3f+1: No duplication, Integrity, Validity,
    Consistency, Totality — exactly the BRB1–BRB6 properties §5.1.1 of the
    paper relies on. *)

type t

val create :
  n:int ->
  me:Proto.Ids.node_id ->
  instance:int ->
  sender:Proto.Ids.node_id ->
  send:(dst:Proto.Ids.node_id -> Brb_msg.t -> unit) ->
  deliver:(string -> unit) ->
  t
(** [deliver] fires at most once, with the sender's payload. *)

val broadcast : t -> string -> unit
(** Only the designated sender may call this, once. *)

val on_message : t -> src:Proto.Ids.node_id -> Brb_msg.t -> unit

val delivered : t -> string option
