(** Wire messages for the Section-5 stack: Bracha reliable broadcast,
    single-shot Byzantine consensus, failure-detector heartbeats, and the
    SB-from-consensus construction (Algorithm 5).  Payloads are opaque
    strings — this stack validates the theory section, it does not carry
    ISS batches. *)

type t =
  | Brb_send of { instance : int; payload : string }
  | Brb_echo of { instance : int; digest : Iss_crypto.Hash.t }
  | Brb_ready of { instance : int; digest : Iss_crypto.Hash.t; payload : string option }
      (** The payload rides along with the first READY from the sender's
          ECHO quorum so late nodes can deliver the value, not only its
          digest. *)
  | Bc_propose of { instance : int; view : int; value : string option }
      (** [None] encodes ⊥. *)
  | Bc_vote of { instance : int; view : int; digest : Iss_crypto.Hash.t }
  | Bc_decide of { instance : int; view : int; value : string option }
  | Fd_beat

let wire_size = function
  | Brb_send { payload; _ } -> 16 + String.length payload
  | Brb_echo _ -> 16 + Iss_crypto.Hash.size
  | Brb_ready { payload; _ } ->
      16 + Iss_crypto.Hash.size + (match payload with Some p -> String.length p | None -> 0)
  | Bc_propose { value; _ } -> 24 + (match value with Some v -> String.length v | None -> 0)
  | Bc_vote _ -> 24 + Iss_crypto.Hash.size
  | Bc_decide { value; _ } -> 24 + (match value with Some v -> String.length v | None -> 0)
  | Fd_beat -> 8
