module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

type value = string option

let digest_of = function
  | None -> Iss_crypto.Hash.of_string "bc:bot"
  | Some v -> Iss_crypto.Hash.of_string ("bc:val:" ^ v)

type t = {
  engine : Engine.t;
  n : int;
  quorum : int;
  me : Proto.Ids.node_id;
  instance : int;
  send : dst:Proto.Ids.node_id -> Brb_msg.t -> unit;
  acceptable : value -> bool;
  decide_cb : value -> unit;
  view_timeout : Time_ns.span;
  mutable estimate : value option;  (* my proposal, once set *)
  mutable lock : value option;  (* first value I voted for *)
  mutable view : int;
  mutable voted_view : int;  (* highest view I voted in *)
  votes : (int * Proto.Ids.node_id, Iss_crypto.Hash.t * value) Hashtbl.t;
  decide_votes : (Proto.Ids.node_id, Iss_crypto.Hash.t * value) Hashtbl.t;
  mutable pending_proposal : (int * value) option;  (* held until evaluable *)
  mutable output : value option;
  mutable timer : Engine.timer_id option;
  mutable active : bool;
}

let create ~engine ~n ~me ~instance ~send ~acceptable ~decide
    ?(view_timeout = Time_ns.sec 2) () =
  {
    engine;
    n;
    quorum = Proto.Ids.quorum ~n;
    me;
    instance;
    send;
    acceptable;
    decide_cb = decide;
    view_timeout;
    estimate = None;
    lock = None;
    view = 0;
    voted_view = -1;
    votes = Hashtbl.create 32;
    decide_votes = Hashtbl.create 8;
    pending_proposal = None;
    output = None;
    timer = None;
    active = false;
  }

let decided t = t.output

let bcast t msg =
  for dst = 0 to t.n - 1 do
    t.send ~dst msg
  done

let coordinator t view = view mod t.n

let conclude t v =
  if t.output = None then begin
    t.output <- Some v;
    (match t.timer with Some timer -> Engine.cancel t.engine timer | None -> ());
    bcast t (Brb_msg.Bc_decide { instance = t.instance; view = t.view; value = v });
    t.decide_cb v
  end

let check_quorum t view =
  if t.output = None then begin
    (* Count matching votes for this view. *)
    let counts = Hashtbl.create 4 in
    Hashtbl.iter
      (fun (v, _) (digest, value) ->
        if v = view then begin
          let key = Iss_crypto.Hash.raw digest in
          let cur, _ = Option.value ~default:(0, None) (Hashtbl.find_opt counts key) in
          Hashtbl.replace counts key (cur + 1, Some value)
        end)
      t.votes;
    Hashtbl.iter
      (fun _ (count, value) ->
        match value with
        | Some v when count >= t.quorum -> conclude t v
        | Some _ | None -> ())
      counts
  end

let vote t ~view value =
  if t.voted_view < view && t.output = None then begin
    t.voted_view <- view;
    if t.lock = None then t.lock <- Some value;
    bcast t (Brb_msg.Bc_vote { instance = t.instance; view; digest = digest_of value });
    (* Record my own full vote so quorum counting knows the value. *)
    Hashtbl.replace t.votes ((view, t.me)) (digest_of value, value);
    check_quorum t view
  end

let would_vote t value =
  match t.lock with
  | Some locked -> locked = value
  | None -> t.acceptable value

let try_evaluate_pending t =
  match t.pending_proposal with
  | Some (view, value) when view = t.view && t.output = None ->
      if would_vote t value then begin
        t.pending_proposal <- None;
        vote t ~view value
      end
  | Some _ | None -> ()

let rec arm_timer t =
  (match t.timer with Some timer -> Engine.cancel t.engine timer | None -> ());
  if t.active && t.output = None then begin
    let timeout = t.view_timeout * (1 lsl min t.view 16) in
    t.timer <-
      Some
        (Engine.schedule t.engine ~delay:timeout (fun () ->
             t.timer <- None;
             if t.active && t.output = None then begin
               t.view <- t.view + 1;
               t.pending_proposal <- None;
               maybe_coordinate t;
               arm_timer t
             end))
  end

and maybe_coordinate t =
  if coordinator t t.view = t.me && t.output = None then begin
    let proposal =
      match t.lock with
      | Some locked -> Some locked
      | None -> t.estimate
    in
    match proposal with
    | Some value ->
        bcast t (Brb_msg.Bc_propose { instance = t.instance; view = t.view; value })
    | None -> ()  (* nothing to propose yet *)
  end

let propose t value =
  if t.estimate = None then begin
    t.estimate <- Some value;
    t.active <- true;
    maybe_coordinate t;
    try_evaluate_pending t;
    if t.timer = None then arm_timer t
  end

let on_message t ~src msg =
  match msg with
  | Brb_msg.Bc_propose { instance; view; value } when instance = t.instance ->
      if src = coordinator t view && view >= t.view && t.output = None then begin
        if view > t.view then begin
          t.view <- view;
          arm_timer t
        end;
        if would_vote t value then vote t ~view value
        else t.pending_proposal <- Some (view, value)
        (* Held: e.g. the BRB value has not arrived here yet; re-evaluated
           when [acceptable] can change (the construction calls [propose]
           or pokes us). *)
      end
  | Brb_msg.Bc_vote { instance; view; digest } when instance = t.instance ->
      if not (Hashtbl.mem t.votes (view, src)) then begin
        (* We only learn the digest from others; the value arrives with the
           coordinator proposal or a decide.  Track the digest and try to
           resolve it against known values. *)
        let value =
          if Iss_crypto.Hash.equal digest (digest_of None) then Some None
          else
            match t.estimate with
            | Some (Some v) when Iss_crypto.Hash.equal digest (digest_of (Some v)) ->
                Some (Some v)
            | _ -> (
                match t.lock with
                | Some l when Iss_crypto.Hash.equal digest (digest_of l) -> Some l
                | _ -> None)
        in
        (match value with
        | Some value ->
            Hashtbl.replace t.votes ((view, src)) (digest, value);
            check_quorum t view
        | None ->
            (* Unresolvable digest: count it anyway, value recovered when a
               matching local value appears. *)
            Hashtbl.replace t.votes ((view, src)) (digest, None);
            check_quorum t view)
      end
  | Brb_msg.Bc_decide { instance; value; _ } when instance = t.instance ->
      if not (Hashtbl.mem t.decide_votes src) then begin
        Hashtbl.replace t.decide_votes src (digest_of value, value);
        let matching =
          Hashtbl.fold
            (fun _ (d, _) acc ->
              if Iss_crypto.Hash.equal d (digest_of value) then acc + 1 else acc)
            t.decide_votes 0
        in
        (* f+1 matching decisions contain a correct one. *)
        if matching >= Proto.Ids.max_faulty ~n:t.n + 1 then conclude t value
      end
  | _ -> ()

let stop t =
  t.active <- false;
  match t.timer with
  | Some timer ->
      Engine.cancel t.engine timer;
      t.timer <- None
  | None -> ()
