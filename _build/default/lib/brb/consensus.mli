(** Single-shot Byzantine consensus for the Algorithm-5 construction
    (paper §5.1.2).

    Rotating-coordinator protocol under partial synchrony: the view-[v]
    coordinator proposes its estimate, replicas vote (at most once per
    view), and 2f+1 matching votes decide.  A replica {e locks} the first
    value it votes for and never votes differently afterwards, which gives
    Agreement by quorum intersection; a coordinator re-proposes its own
    lock when it has one.

    Inputs are validated by an [acceptable] predicate — in Algorithm 5
    a correct node accepts only its BRB-delivered value or ⊥, which
    restricts decisions to BC4-valid values.

    Simplification (documented in DESIGN.md): the view change carries no
    signed lock justification, so an adversarial schedule that splits locks
    between a value and ⊥ can stall termination.  The scenarios of the
    paper (crash faults, quiet senders) do not produce such splits; the
    full justification machinery lives in [lib/pbft]. *)

type t

type value = string option
(** [None] is ⊥. *)

val create :
  engine:Sim.Engine.t ->
  n:int ->
  me:Proto.Ids.node_id ->
  instance:int ->
  send:(dst:Proto.Ids.node_id -> Brb_msg.t -> unit) ->
  acceptable:(value -> bool) ->
  decide:(value -> unit) ->
  ?view_timeout:Sim.Time_ns.span ->
  unit ->
  t

val propose : t -> value -> unit
(** Sets this node's estimate (first call wins) and starts participating. *)

val on_message : t -> src:Proto.Ids.node_id -> Brb_msg.t -> unit

val decided : t -> value option
(** [Some v] once this node has decided. *)

val stop : t -> unit
