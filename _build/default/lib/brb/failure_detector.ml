module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

type peer = {
  mutable timeout : Time_ns.span;
  mutable timer : Engine.timer_id option;
  mutable suspected : bool;
}

type t = {
  engine : Engine.t;
  n : int;
  me : Proto.Ids.node_id;
  send : dst:Proto.Ids.node_id -> Brb_msg.t -> unit;
  beat_interval : Time_ns.span;
  peers : peer array;
  mutable suspect_listeners : (Proto.Ids.node_id -> unit) list;
  mutable restore_listeners : (Proto.Ids.node_id -> unit) list;
  mutable beat_timer : Engine.timer_id option;
  mutable running : bool;
}

let create ~engine ~n ~me ~send ?(beat_interval = Time_ns.ms 500)
    ?(initial_timeout = Time_ns.sec 2) () =
  {
    engine;
    n;
    me;
    send;
    beat_interval;
    peers = Array.init n (fun _ -> { timeout = initial_timeout; timer = None; suspected = false });
    suspect_listeners = [];
    restore_listeners = [];
    beat_timer = None;
    running = false;
  }

let on_suspect t f = t.suspect_listeners <- f :: t.suspect_listeners
let on_restore t f = t.restore_listeners <- f :: t.restore_listeners

let suspected t p = t.peers.(p).suspected
let suspects t = List.filter (fun p -> t.peers.(p).suspected) (List.init t.n (fun i -> i))

let arm_peer t p =
  let peer = t.peers.(p) in
  (match peer.timer with Some timer -> Engine.cancel t.engine timer | None -> ());
  peer.timer <-
    Some
      (Engine.schedule t.engine ~delay:peer.timeout (fun () ->
           peer.timer <- None;
           if t.running && not peer.suspected then begin
             peer.suspected <- true;
             (* Doubling keeps eventual weak accuracy: post-GST the timeout
                outgrows the network delay and stops firing for correct
                peers. *)
             peer.timeout <- peer.timeout * 2;
             List.iter (fun f -> f p) t.suspect_listeners
           end))

let rec arm_beat t =
  t.beat_timer <-
    Some
      (Engine.schedule t.engine ~delay:t.beat_interval (fun () ->
           if t.running then begin
             for dst = 0 to t.n - 1 do
               if dst <> t.me then t.send ~dst Brb_msg.Fd_beat
             done;
             arm_beat t
           end))

let start t =
  if not t.running then begin
    t.running <- true;
    for p = 0 to t.n - 1 do
      if p <> t.me then arm_peer t p
    done;
    for dst = 0 to t.n - 1 do
      if dst <> t.me then t.send ~dst Brb_msg.Fd_beat
    done;
    arm_beat t
  end

let on_message t ~src msg =
  match msg with
  | Brb_msg.Fd_beat ->
      if t.running && src <> t.me && src >= 0 && src < t.n then begin
        let peer = t.peers.(src) in
        if peer.suspected then begin
          peer.suspected <- false;
          List.iter (fun f -> f src) t.restore_listeners
        end;
        arm_peer t src
      end
  | _ -> ()

let stop t =
  t.running <- false;
  (match t.beat_timer with Some timer -> Engine.cancel t.engine timer | None -> ());
  Array.iter
    (fun p -> match p.timer with Some timer -> Engine.cancel t.engine timer | None -> ())
    t.peers
