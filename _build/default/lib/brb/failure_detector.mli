(** ◇S(bz) failure detector (Malkhi–Reiter), implemented as §5.1.3:
    heartbeats through reliable broadcast plus per-process timeouts that
    double on suspicion.

    Guarantees under partial synchrony:
    - {b Strong completeness}: quiet processes are eventually permanently
      suspected by every correct process;
    - {b Eventual weak accuracy}: some correct process is eventually never
      suspected (timeouts outgrow the post-GST network delay). *)

type t

val create :
  engine:Sim.Engine.t ->
  n:int ->
  me:Proto.Ids.node_id ->
  send:(dst:Proto.Ids.node_id -> Brb_msg.t -> unit) ->
  ?beat_interval:Sim.Time_ns.span ->
  ?initial_timeout:Sim.Time_ns.span ->
  unit ->
  t
(** Defaults: 500 ms heartbeats, 2 s initial timeout. *)

val start : t -> unit

val on_message : t -> src:Proto.Ids.node_id -> Brb_msg.t -> unit
(** Feed [Fd_beat] messages. *)

val suspected : t -> Proto.Ids.node_id -> bool
val suspects : t -> Proto.Ids.node_id list

val on_suspect : t -> (Proto.Ids.node_id -> unit) -> unit
(** Register a SUSPECT event listener (may fire repeatedly per node as
    timers expire; RESTORE listeners analogous). *)

val on_restore : t -> (Proto.Ids.node_id -> unit) -> unit

val stop : t -> unit
