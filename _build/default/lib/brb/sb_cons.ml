type slot = {
  sn : int;
  brb : Bracha.t;
  bc : Consensus.t;
  mutable proposed : bool;  (* did we feed the consensus a value yet? *)
}

type t = {
  me : Proto.Ids.node_id;
  sender : Proto.Ids.node_id;
  mutable slots : slot array;
  by_instance : (int, [ `Brb of slot | `Bc of slot ]) Hashtbl.t;
  fd : Failure_detector.t;
  mutable initialized : bool;
  mutable deliveries : (int * string option) list;  (* reverse order *)
}

let create ~engine ~n ~me ~sender ~seq_nrs ~instance_base ~send ~fd ~deliver =
  let t =
    {
      me;
      sender;
      slots = [||];
      by_instance = Hashtbl.create (2 * Array.length seq_nrs);
      fd;
      initialized = false;
      deliveries = [];
    }
  in
  let slots =
    Array.mapi
      (fun idx sn ->
        let brb_instance = instance_base + (2 * idx) in
        let bc_instance = instance_base + (2 * idx) + 1 in
        let rec slot =
          lazy
            (let brb =
               Bracha.create ~n ~me ~instance:brb_instance ~sender ~send
                 ~deliver:(fun payload ->
                   (* BRB-DELIVER: propose the value (Algorithm 5 line 20). *)
                   let s = Lazy.force slot in
                   s.proposed <- true;
                   Consensus.propose s.bc (Some payload))
             in
             let bc =
               Consensus.create ~engine ~n ~me ~instance:bc_instance ~send
                 ~acceptable:(fun value ->
                   match value with
                   | None -> true
                   | Some v -> (
                       (* Only a value we brb-delivered ourselves is
                          acceptable — this pins BC validity to the
                          sender's actual broadcast. *)
                       match Bracha.delivered (Lazy.force slot).brb with
                       | Some mine -> String.equal mine v
                       | None -> false))
                 ~decide:(fun value ->
                   t.deliveries <- (sn, value) :: t.deliveries;
                   deliver ~sn value)
                 ()
             in
             { sn; brb; bc; proposed = false })
        in
        Lazy.force slot)
      seq_nrs
  in
  t.slots <- slots;
  Array.iteri
    (fun idx s ->
      Hashtbl.replace t.by_instance (instance_base + (2 * idx)) (`Brb s);
      Hashtbl.replace t.by_instance (instance_base + (2 * idx) + 1) (`Bc s))
    slots;
  t

let abort t =
  Array.iter
    (fun s ->
      if not s.proposed then begin
        s.proposed <- true;
        Consensus.propose s.bc None
      end)
    t.slots

let init t =
  if not t.initialized then begin
    t.initialized <- true;
    Failure_detector.on_suspect t.fd (fun p -> if p = t.sender then abort t);
    if Failure_detector.suspected t.fd t.sender then abort t
  end

let sb_cast t ~sn payload =
  if t.me <> t.sender then invalid_arg "Sb_cons.sb_cast: not the designated sender";
  match Array.find_opt (fun s -> s.sn = sn) t.slots with
  | Some s -> Bracha.broadcast s.brb payload
  | None -> invalid_arg "Sb_cons.sb_cast: unknown sequence number"

let on_message t ~src msg =
  match msg with
  | Brb_msg.Brb_send { instance; _ }
  | Brb_msg.Brb_echo { instance; _ }
  | Brb_msg.Brb_ready { instance; _ } -> (
      match Hashtbl.find_opt t.by_instance instance with
      | Some (`Brb s) -> Bracha.on_message s.brb ~src msg
      | Some (`Bc _) | None -> ())
  | Brb_msg.Bc_propose { instance; _ }
  | Brb_msg.Bc_vote { instance; _ }
  | Brb_msg.Bc_decide { instance; _ } -> (
      match Hashtbl.find_opt t.by_instance instance with
      | Some (`Bc s) -> Consensus.on_message s.bc ~src msg
      | Some (`Brb _) | None -> ())
  | Brb_msg.Fd_beat -> Failure_detector.on_message t.fd ~src msg

let delivered t = List.rev t.deliveries
