(** Algorithm 5: Sequenced Broadcast from BRB + Byzantine consensus + a
    ◇S(bz) failure detector — the paper's constructive proof (§5.1.4) that
    SB is implementable, and therefore no stronger than consensus.

    One {!Bracha} instance and one {!Consensus} instance run per sequence
    number.  The designated sender brb-casts its messages; every node
    proposes what it brb-delivers; suspecting the sender after SB-INIT
    aborts: ⊥ is proposed for every not-yet-proposed sequence number.

    The test suite checks the four SB properties (Integrity, Agreement,
    Termination, Eventual Progress) against this implementation. *)

type t

val create :
  engine:Sim.Engine.t ->
  n:int ->
  me:Proto.Ids.node_id ->
  sender:Proto.Ids.node_id ->
  seq_nrs:int array ->
  instance_base:int ->
  send:(dst:Proto.Ids.node_id -> Brb_msg.t -> unit) ->
  fd:Failure_detector.t ->
  deliver:(sn:int -> string option -> unit) ->
  t
(** [instance_base]: this SB instance owns message-instance ids
    [base .. base + 2*|seq_nrs|); run multiple SBs on one network by spacing
    their bases. *)

val init : t -> unit
(** SB-INIT: from now on, suspecting the sender aborts.  If the sender is
    already suspected, abort immediately (the paper's precondition for
    Termination). *)

val sb_cast : t -> sn:int -> string -> unit
(** Designated sender only. *)

val on_message : t -> src:Proto.Ids.node_id -> Brb_msg.t -> unit

val delivered : t -> (int * string option) list
(** Deliveries so far, in delivery order. *)
