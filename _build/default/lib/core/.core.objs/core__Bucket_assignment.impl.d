lib/core/bucket_assignment.ml: Array
