lib/core/bucket_assignment.mli:
