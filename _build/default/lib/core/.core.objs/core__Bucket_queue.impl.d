lib/core/bucket_queue.ml: Array Hashtbl List Option Proto
