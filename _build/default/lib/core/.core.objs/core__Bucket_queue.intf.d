lib/core/bucket_queue.mli: Proto
