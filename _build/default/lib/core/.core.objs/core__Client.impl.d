lib/core/client.ml: Array Config Hashtbl Int64 Iss_crypto List Node Proto Sim
