lib/core/client.mli: Config Proto Sim
