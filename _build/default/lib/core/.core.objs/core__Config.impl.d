lib/core/config.ml: Format List Printf Proto Sim
