lib/core/config.mli: Format Proto Sim
