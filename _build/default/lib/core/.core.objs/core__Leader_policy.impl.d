lib/core/leader_policy.ml: Array Config List Proto
