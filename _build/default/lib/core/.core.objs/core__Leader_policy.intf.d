lib/core/leader_policy.mli: Config Proto
