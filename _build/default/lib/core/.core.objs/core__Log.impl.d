lib/core/log.ml: Array Hashtbl Iss_crypto Printf Proto
