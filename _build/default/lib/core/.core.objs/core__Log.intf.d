lib/core/log.mli: Iss_crypto Proto
