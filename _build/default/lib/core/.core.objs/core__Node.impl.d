lib/core/node.ml: Array Bucket_assignment Bucket_queue Config Hashtbl Iss_crypto Leader_policy List Log Orderer_intf Proto Queue Segment Sim Watermarks
