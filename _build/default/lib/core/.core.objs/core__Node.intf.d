lib/core/node.mli: Config Log Orderer_intf Proto Segment Sim
