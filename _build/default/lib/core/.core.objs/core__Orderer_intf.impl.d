lib/core/orderer_intf.ml: Config Iss_crypto Proto Segment Sim
