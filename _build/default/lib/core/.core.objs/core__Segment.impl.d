lib/core/segment.ml: Array Bucket_assignment Config Format List Proto
