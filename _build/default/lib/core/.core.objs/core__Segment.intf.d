lib/core/segment.mli: Config Format Proto
