lib/core/watermarks.ml: Bytes Char Hashtbl Proto
