lib/core/watermarks.mli: Proto
