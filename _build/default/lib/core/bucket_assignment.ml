let init_owner ~n ~epoch bucket = ((bucket + epoch) mod n + n) mod n

let init_buckets ~n ~num_buckets ~epoch ~node =
  let out = ref [] in
  for b = num_buckets - 1 downto 0 do
    if init_owner ~n ~epoch b = node then out := b :: !out
  done;
  !out

let assign ~n ~num_buckets ~epoch ~leaders =
  if Array.length leaders = 0 then invalid_arg "Bucket_assignment.assign: no leaders";
  let num_leaders = Array.length leaders in
  let is_leader = Array.make n false in
  let leader_index = Array.make n (-1) in
  Array.iteri
    (fun k l ->
      is_leader.(l) <- true;
      leader_index.(l) <- k)
    leaders;
  Array.init num_buckets (fun b ->
      let owner = init_owner ~n ~epoch b in
      if is_leader.(owner) then owner
      else begin
        (* Extra bucket: round-robin over leaders, rotated by the epoch. *)
        let k = (b + epoch) mod num_leaders in
        leaders.(k)
      end)

let buckets_of_leader ~n ~num_buckets ~epoch ~leaders ~leader =
  if not (Array.exists (fun l -> l = leader) leaders) then
    invalid_arg "Bucket_assignment.buckets_of_leader: not a leader";
  let all = assign ~n ~num_buckets ~epoch ~leaders in
  let out = ref [] in
  for b = num_buckets - 1 downto 0 do
    if all.(b) = leader then out := b :: !out
  done;
  !out
