(** Bucket-to-leader assignment (paper §2.4, Algorithm 3's [Buckets]).

    Every epoch, each bucket is assigned to exactly one leader:
    + an initial round-robin distribution over {e all} nodes, rotated by the
      epoch number — Eq. (1): [initBuckets(e,i) = { b | (b+e) ≡ i mod n }];
    + buckets landing on non-leaders ([extraBuckets]) are re-distributed
      round-robin over the epoch's leaders, again rotated by [e].

    The rotation guarantees every node is assigned every bucket infinitely
    often (Lemma 5.4), which the liveness proof needs. *)

val init_buckets : n:int -> num_buckets:int -> epoch:int -> node:int -> int list
(** Eq. (1) for one node; ascending bucket numbers. *)

val assign : n:int -> num_buckets:int -> epoch:int -> leaders:int array -> int array
(** [assign ~n ~num_buckets ~epoch ~leaders] maps each bucket to the node id
    of its leader in this epoch.  [leaders] must be sorted ascending
    (lexicographic leader order, as the paper's [l(e,k)]) and non-empty.
    Result: [num_buckets]-long array, entry = leader node id. *)

val buckets_of_leader :
  n:int -> num_buckets:int -> epoch:int -> leaders:int array -> leader:int -> int list
(** The inverse view: the (sorted) buckets a given leader owns this epoch.
    Raises [Invalid_argument] if [leader] is not in [leaders]. *)
