(** ISS clients (paper §4.3).

    A client submits signed requests with consecutive timestamps inside its
    watermark window.  Leader detection: it sends each request to the node
    currently leading the request's bucket — learned from quorum-confirmed
    [Bucket_update] messages — plus the two nodes projected (via the initial
    round-robin assignment) to own that bucket in the next two epochs.  At
    every epoch transition it resubmits all requests not yet confirmed by a
    reply quorum. *)

type t

type reply_quorum = [ `F_plus_one | `One ]
(** BFT deployments need f+1 matching replies; CFT deployments accept one. *)

val create :
  config:Config.t ->
  id:Proto.Ids.client_id ->
  engine:Sim.Engine.t ->
  send:(dst:int -> Proto.Message.t -> unit) ->
  ?sign:bool ->
  ?on_complete:(Proto.Request.t -> latency:Sim.Time_ns.span -> unit) ->
  unit ->
  t
(** [sign] (default from [config.client_signatures]) attaches real simulated
    signatures.  [on_complete] fires when the reply quorum is reached. *)

val on_message : t -> src:int -> Proto.Message.t -> unit

val submit_next : t -> unit
(** Create and send the next request (timestamps are consecutive).  If the
    watermark window is exhausted (too many in flight), the request is
    queued locally and sent when space opens. *)

val start_open_loop : t -> rate:float -> until:Sim.Time_ns.t -> unit
(** Poisson arrivals at [rate] requests/s until the given time. *)

val in_flight : t -> int
val completed : t -> int
