type t = {
  epoch : int;
  instance : int;
  leader : Proto.Ids.node_id;
  leader_index : int;
  seq_nrs : int array;
  buckets : int list;
  first_sn : int;
  epoch_length : int;
}

let make_epoch ~config ~epoch ~start_sn ~leaders =
  let num_leaders = Array.length leaders in
  if num_leaders = 0 then invalid_arg "Segment.make_epoch: no leaders";
  let len = Config.epoch_length config ~leaders:num_leaders in
  let n = config.Config.n in
  let num_buckets = Config.num_buckets config in
  let owner = Bucket_assignment.assign ~n ~num_buckets ~epoch ~leaders in
  List.init num_leaders (fun k ->
      let leader = leaders.(k) in
      let seq_nrs =
        let count = ((len - 1 - k) / num_leaders) + 1 in
        Array.init count (fun j -> start_sn + k + (j * num_leaders))
      in
      let buckets = ref [] in
      for b = num_buckets - 1 downto 0 do
        if owner.(b) = leader then buckets := b :: !buckets
      done;
      {
        epoch;
        instance = (epoch * n) + k;
        leader;
        leader_index = k;
        seq_nrs;
        buckets = !buckets;
        first_sn = start_sn;
        epoch_length = len;
      })

let seq_count t = Array.length t.seq_nrs

(* seq_nrs is an arithmetic progression (stride = number of leaders), so
   membership and position are O(1). *)
let sn_index t sn =
  let count = Array.length t.seq_nrs in
  if count = 0 then None
  else begin
    let stride = if count > 1 then t.seq_nrs.(1) - t.seq_nrs.(0) else 1 in
    let off = sn - t.seq_nrs.(0) in
    if off < 0 || off mod stride <> 0 then None
    else begin
      let idx = off / stride in
      if idx < count then Some idx else None
    end
  end

let contains_sn t sn = match sn_index t sn with Some _ -> true | None -> false

let owns_bucket t b = List.mem b t.buckets

let pp fmt t =
  Format.fprintf fmt "segment(e%d,i%d,leader n%d,%d seqnrs,%d buckets)" t.epoch t.instance
    t.leader (Array.length t.seq_nrs) (List.length t.buckets)
