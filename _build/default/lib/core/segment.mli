(** Segments: the log slice one SB instance is responsible for (§2.3).

    An epoch's sequence numbers are split round-robin over its leaders —
    [Seg(e,i) = { sn ∈ Sn(e) | k ≡ sn mod |Leaders(e)| }] for the k-th
    leader — which interleaves the segments and minimizes log gaps in
    fault-free runs. *)

type t = {
  epoch : int;
  instance : int;  (** globally unique SB instance id: [epoch * n + leader_index] *)
  leader : Proto.Ids.node_id;
  leader_index : int;  (** k: position of the leader in the epoch's leader list *)
  seq_nrs : int array;  (** ascending sequence numbers of this segment *)
  buckets : int list;  (** bucket numbers assigned to this segment *)
  first_sn : int;  (** first sequence number of the {e epoch} *)
  epoch_length : int;
}

val make_epoch :
  config:Config.t ->
  epoch:int ->
  start_sn:int ->
  leaders:int array ->
  t list
(** Builds all segments of epoch [epoch] starting at log position
    [start_sn].  [leaders] sorted ascending, non-empty.  The epoch length is
    [Config.epoch_length config ~leaders:(Array.length leaders)]; bucket
    assignment follows {!Bucket_assignment}. *)

val seq_count : t -> int

val contains_sn : t -> int -> bool

val owns_bucket : t -> int -> bool

val sn_index : t -> int -> int option
(** Position of a sequence number within the segment (0-based), [None] when
    the segment does not contain it. *)

val pp : Format.formatter -> t -> unit
