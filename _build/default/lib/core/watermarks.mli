(** Per-client request watermark windows (paper §3.7).

    Clients may have at most [window] requests in flight: request timestamps
    must fall inside [\[floor, floor + window)], where [floor] is the length
    of the client's contiguously delivered timestamp prefix.  This bounds
    both buffer usage and a malicious client's ability to bias the
    bucket-distribution (it controls only [window] choices of timestamp).

    The paper advances windows at epoch boundaries; we advance the floor as
    deliveries arrive, which admits a superset of the paper's valid requests
    and is equally safe (duplicates are filtered by delivery tracking). *)

type t

val create : window:int -> t

val valid : t -> Proto.Request.id -> bool
(** [floor <= ts < floor + window] for the request's client. *)

val note_delivered : t -> Proto.Request.id -> unit
(** Record a delivered timestamp; advances the client's floor past every
    contiguously delivered prefix. *)

val delivered : t -> Proto.Request.id -> bool
(** Whether the request's timestamp was recorded as delivered — i.e. it is
    below the client's floor or in the out-of-order set.  This doubles as
    the committed-request check for deduplication: the structure stores the
    complete delivery history in O(clients + out-of-order window) memory
    instead of one entry per request ever committed. *)

val floor : t -> Proto.Ids.client_id -> int
val window : t -> int
