lib/hotstuff/hotstuff_orderer.ml: Array Core Hashtbl Iss_crypto List Printf Proto Sim
