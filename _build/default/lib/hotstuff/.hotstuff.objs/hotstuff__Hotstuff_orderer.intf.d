lib/hotstuff/hotstuff_orderer.mli: Core
