module Time_ns = Sim.Time_ns
module Engine = Sim.Engine
module Msg = Proto.Hotstuff_msg
module Proposal = Proto.Proposal
module Hash = Iss_crypto.Hash

module Orderer = struct
  type t = {
    ctx : Core.Orderer_intf.ctx;
    seg : Core.Segment.t;
    n : int;
    quorum : int;
    chain : (string, Msg.chain_node) Hashtbl.t;  (* node digest (raw) -> node *)
    qcs : (int, Msg.qc) Hashtbl.t;  (* view -> QC *)
    shares : (int * string, (int, Iss_crypto.Threshold.share) Hashtbl.t) Hashtbl.t;
        (* leader: (view, digest) -> voter -> share *)
    new_views : (int, Msg.qc option) Hashtbl.t;  (* pacemaker: sender -> justify *)
    decided : (int, unit) Hashtbl.t;  (* sn -> *)
    mutable high_qc : Msg.qc option;
    mutable locked_view : int;
    mutable last_voted_view : int;
    mutable rotations : int;  (* pacemaker leader rotations *)
    mutable i_am_leader : bool;
    mutable to_propose : int list;  (* sns still to put on the chain (leader) *)
    mutable dummies_left : int;
    mutable last_proposed : (int * Hash.t) option;  (* (view, digest) awaiting QC *)
    mutable active : bool;
    mutable timer : Engine.timer_id option;
    mutable nv_wait : int option;  (* the new-view number I'm collecting for *)
  }

  let genesis_parent t =
    Hash.of_string (Printf.sprintf "hs-genesis:%d" t.seg.Core.Segment.instance)

  let create ctx seg =
    let n = ctx.Core.Orderer_intf.config.Core.Config.n in
    {
      ctx;
      seg;
      n;
      quorum = Proto.Ids.quorum ~n;
      chain = Hashtbl.create 64;
      qcs = Hashtbl.create 64;
      shares = Hashtbl.create 16;
      new_views = Hashtbl.create 8;
      decided = Hashtbl.create 32;
      high_qc = None;
      locked_view = -1;
      last_voted_view = -1;
      rotations = 0;
      i_am_leader = false;
      to_propose = Array.to_list seg.Core.Segment.seq_nrs;
      dummies_left = 3;
      last_proposed = None;
      active = false;
      timer = None;
      nv_wait = None;
    }

  let current_leader t = (t.seg.Core.Segment.leader + t.rotations) mod t.n

  let me t = t.ctx.Core.Orderer_intf.node

  let done_ t = Hashtbl.length t.decided >= Core.Segment.seq_count t.seg

  let broadcast_hs t body =
    t.ctx.Core.Orderer_intf.broadcast
      (Proto.Message.Hotstuff { Msg.instance = t.seg.Core.Segment.instance; body })

  let send_hs t ~dst body =
    t.ctx.Core.Orderer_intf.send ~dst
      (Proto.Message.Hotstuff { Msg.instance = t.seg.Core.Segment.instance; body })

  let cancel_timer t =
    match t.timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.timer <- None
    | None -> ()

  (* ---- Decide pipeline ---------------------------------------------- *)

  (* Announce a chain node and all its undecided ancestors, oldest first. *)
  let rec decide_branch t (node : Msg.chain_node) =
    (match Hashtbl.find_opt t.chain (Hash.raw node.Msg.parent) with
    | Some parent -> decide_branch t parent
    | None -> ());
    if node.Msg.sn >= 0 && not (Hashtbl.mem t.decided node.Msg.sn) then begin
      Hashtbl.replace t.decided node.Msg.sn ();
      t.ctx.Core.Orderer_intf.announce ~sn:node.Msg.sn node.Msg.proposal;
      if done_ t then cancel_timer t
    end

  (* Three-chain commit rule over consecutive views (paper Fig. 4). *)
  let try_decide t (qc : Msg.qc) =
    match Hashtbl.find_opt t.chain (Hash.raw qc.Msg.qc_digest) with
    | None -> ()
    | Some n2 -> (
        match Hashtbl.find_opt t.chain (Hash.raw n2.Msg.parent) with
        | Some n1 when n1.Msg.view = n2.Msg.view - 1 && Hashtbl.mem t.qcs n1.Msg.view -> (
            match Hashtbl.find_opt t.chain (Hash.raw n1.Msg.parent) with
            | Some n0 when n0.Msg.view = n1.Msg.view - 1 && Hashtbl.mem t.qcs n0.Msg.view ->
                decide_branch t n0
            | Some _ | None -> ())
        | Some _ | None -> ())

  let register_qc t (qc : Msg.qc) =
    if not (Hashtbl.mem t.qcs qc.Msg.qc_view) then begin
      Hashtbl.replace t.qcs qc.Msg.qc_view qc;
      (match t.high_qc with
      | Some h when h.Msg.qc_view >= qc.Msg.qc_view -> ()
      | Some _ | None -> t.high_qc <- Some qc);
      t.locked_view <- max t.locked_view (qc.Msg.qc_view - 1);
      try_decide t qc
    end

  (* ---- Leader side ---------------------------------------------------- *)

  (* Note: proposing must NOT stop when [done_ t] — the leader typically
     decides the whole segment while replicas still need the trailing dummy
     proposals to learn the final QCs (the pipeline flush of Fig. 4). *)
  let rec propose_next t ~view ~parent ~justify =
    if t.active && t.i_am_leader then begin
      let make_and_send sn proposal =
        let node = { Msg.view; sn; parent; proposal; justify } in
        Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
        t.last_proposed <- Some (view, Msg.node_digest node);
        broadcast_hs t (Msg.Proposal_msg node)
      in
      match t.to_propose with
      | sn :: rest ->
          t.to_propose <- rest;
          if me t = t.seg.Core.Segment.leader then
            (* Original leader: cut a real batch (asynchronous: the ISS
               batcher paces us). *)
            t.ctx.Core.Orderer_intf.request_batch ~sn (fun proposal ->
                if t.active && t.i_am_leader then make_and_send sn proposal)
          else
            (* Rotated leader: design principle 2 — only ⊥. *)
            make_and_send sn Proposal.Nil
      | [] ->
          if t.dummies_left > 0 then begin
            t.dummies_left <- t.dummies_left - 1;
            make_and_send (-1) Proposal.Nil
          end
    end

  and on_qc_formed t (qc : Msg.qc) =
    register_qc t qc;
    propose_next t ~view:(qc.Msg.qc_view + 1) ~parent:qc.Msg.qc_digest ~justify:(Some qc)

  let handle_vote t ~src ~view ~digest share =
    if t.active && t.i_am_leader then begin
      match t.last_proposed with
      | Some (v, d) when v = view && Hash.equal d digest ->
          let key = (view, Hash.raw digest) in
          let tbl =
            match Hashtbl.find_opt t.shares key with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 8 in
                Hashtbl.replace t.shares key tbl;
                tbl
          in
          if not (Hashtbl.mem tbl src) then begin
            Hashtbl.replace tbl src share;
            if Hashtbl.length tbl >= t.quorum then begin
              let material =
                Msg.vote_material ~instance:t.seg.Core.Segment.instance ~view digest
              in
              let shares = Hashtbl.fold (fun _ s acc -> s :: acc) tbl [] in
              match
                Iss_crypto.Threshold.combine t.ctx.Core.Orderer_intf.threshold_group material
                  shares
              with
              | Some combined ->
                  Hashtbl.remove t.shares key;
                  t.last_proposed <- None;
                  let qc = { Msg.qc_view = view; qc_digest = digest; qc_sig = combined } in
                  let cost =
                    Iss_crypto.Threshold.combine_cost_ns ~t:t.quorum
                  in
                  t.ctx.Core.Orderer_intf.charge_cpu cost (fun () ->
                      if t.active then on_qc_formed t qc)
              | None -> ()
            end
          end
      | Some _ | None -> ()
    end

  (* ---- Replica side --------------------------------------------------- *)

  let qc_valid t (qc : Msg.qc) =
    let material =
      Msg.vote_material ~instance:t.seg.Core.Segment.instance ~view:qc.Msg.qc_view
        qc.Msg.qc_digest
    in
    Iss_crypto.Threshold.verify t.ctx.Core.Orderer_intf.threshold_group material qc.Msg.qc_sig

  let handle_proposal t ~src (node : Msg.chain_node) =
    if t.active && src = current_leader t && node.Msg.view > t.last_voted_view then begin
      let justify_ok =
        match node.Msg.justify with
        | None ->
            node.Msg.view = 0 && Hash.equal node.Msg.parent (genesis_parent t)
        | Some qc ->
            qc.Msg.qc_view < node.Msg.view
            && Hash.equal node.Msg.parent qc.Msg.qc_digest
            && qc.Msg.qc_view >= t.locked_view
            && qc_valid t qc
      in
      let content_ok =
        match node.Msg.proposal with
        | Proposal.Nil -> true  (* dummies and ⊥ fills are always safe *)
        | Proposal.Batch _ ->
            node.Msg.sn >= 0
            && Core.Segment.contains_sn t.seg node.Msg.sn
            && src = t.seg.Core.Segment.leader
            && t.ctx.Core.Orderer_intf.validate_proposal t.seg ~sn:node.Msg.sn
                 node.Msg.proposal
      in
      if justify_ok && content_ok then begin
        (match node.Msg.justify with Some qc -> register_qc t qc | None -> ());
        Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
        t.last_voted_view <- node.Msg.view;
        let digest = Msg.node_digest node in
        let material =
          Msg.vote_material ~instance:t.seg.Core.Segment.instance ~view:node.Msg.view digest
        in
        let share =
          Iss_crypto.Threshold.sign_share t.ctx.Core.Orderer_intf.threshold_group ~signer:(me t)
            material
        in
        let verify_cost =
          (match node.Msg.proposal with
          | Proposal.Batch b when t.ctx.Core.Orderer_intf.config.Core.Config.client_signatures
            ->
              Proto.Batch.length b * Iss_crypto.Signature.verify_cost_ns
          | Proposal.Batch _ | Proposal.Nil -> 0)
          + Iss_crypto.Threshold.share_sign_cost_ns
        in
        t.ctx.Core.Orderer_intf.charge_cpu verify_cost (fun () ->
            if t.active then
              send_hs t ~dst:(current_leader t)
                (Msg.Vote { view = node.Msg.view; digest; share }))
      end
    end

  (* ---- Pacemaker ------------------------------------------------------ *)

  let rec arm_timer t =
    cancel_timer t;
    if t.active && not (done_ t) then begin
      let base = t.ctx.Core.Orderer_intf.config.Core.Config.epoch_change_timeout in
      let timeout = base * (1 lsl min t.rotations 16) in
      t.timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay:timeout (fun () ->
               t.timer <- None;
               on_timeout t))
    end

  and on_timeout t =
    if t.active && not (done_ t) then begin
      t.ctx.Core.Orderer_intf.report_suspect (current_leader t);
      t.rotations <- t.rotations + 1;
      t.i_am_leader <- false;
      t.nv_wait <- None;
      Hashtbl.reset t.new_views;
      let nv_view = t.last_voted_view + 1 in
      send_hs t ~dst:(current_leader t) (Msg.New_view { view = nv_view; justify = t.high_qc });
      arm_timer t
    end

  let rec handle_new_view t ~src ~view ~justify =
    if t.active && current_leader t = me t && (not t.i_am_leader) && not (done_ t) then begin
      (match justify with
      | Some qc when qc_valid t qc -> register_qc t qc
      | Some _ | None -> ());
      Hashtbl.replace t.new_views src justify;
      (match t.nv_wait with
      | Some v when v >= view -> ()
      | Some _ | None -> t.nv_wait <- Some view);
      if Hashtbl.length t.new_views >= t.quorum then begin
        t.i_am_leader <- true;
        (* Re-propose ⊥ for everything not yet decided, then flush with
           dummies, starting above every view a quorum member voted in. *)
        let undecided =
          Array.to_list t.seg.Core.Segment.seq_nrs
          |> List.filter (fun sn -> not (Hashtbl.mem t.decided sn))
        in
        t.to_propose <- undecided;
        t.dummies_left <- 3;
        let start_view =
          let nv = match t.nv_wait with Some v -> v | None -> 0 in
          let hq = match t.high_qc with Some qc -> qc.Msg.qc_view + 1 | None -> 0 in
          max (max nv hq) (t.last_voted_view + 1)
        in
        let parent, justify =
          match t.high_qc with
          | Some qc -> (qc.Msg.qc_digest, Some qc)
          | None -> (genesis_parent t, None)
        in
        (* A rotated leader's first proposal may legitimately carry a
           justify that is not view-1; replicas accept it because the
           justify is their locked view or higher. *)
        ignore start_view;
        propose_next_rotated t ~view:start_view ~parent ~justify
      end
    end

  and propose_next_rotated t ~view ~parent ~justify =
    (* Same as [propose_next] but usable for the first post-rotation view
       (non-consecutive with the justify). *)
    if t.active && t.i_am_leader then begin
      match t.to_propose with
      | sn :: rest ->
          t.to_propose <- rest;
          let node = { Msg.view; sn; parent; proposal = Proposal.Nil; justify } in
          Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
          t.last_proposed <- Some (view, Msg.node_digest node);
          broadcast_hs t (Msg.Proposal_msg node)
      | [] ->
          if t.dummies_left > 0 then begin
            t.dummies_left <- t.dummies_left - 1;
            let node = { Msg.view; sn = -1; parent; proposal = Proposal.Nil; justify } in
            Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
            t.last_proposed <- Some (view, Msg.node_digest node);
            broadcast_hs t (Msg.Proposal_msg node)
          end
    end

  (* ---- ORDERER interface ---------------------------------------------- *)

  let start t =
    t.active <- true;
    arm_timer t;
    if t.seg.Core.Segment.leader = me t then begin
      t.i_am_leader <- true;
      propose_next t ~view:0 ~parent:(genesis_parent t) ~justify:None
    end

  let on_message t ~src msg =
    match msg with
    | Proto.Message.Hotstuff { Msg.instance; body }
      when instance = t.seg.Core.Segment.instance && t.active -> (
        match body with
        | Msg.Proposal_msg node ->
            handle_proposal t ~src node;
            (* Progress resets the pacemaker. *)
            if src = current_leader t then arm_timer t
        | Msg.Vote { view; digest; share } -> handle_vote t ~src ~view ~digest share
        | Msg.New_view { view; justify } -> handle_new_view t ~src ~view ~justify)
    | _ -> ()

  let stop t =
    t.active <- false;
    cancel_timer t
end

let factory ctx seg =
  Core.Orderer_intf.Instance ((module Orderer), Orderer.create ctx seg)
