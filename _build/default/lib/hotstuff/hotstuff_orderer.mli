(** Chained HotStuff as a Sequenced-Broadcast implementation (paper §4.2.2).

    One instance orders one segment.  Each segment sequence number maps to
    one HotStuff view; the chain is extended with three dummy views so the
    three-chain commit pipeline can flush the last real value (paper
    Fig. 4).  Votes are threshold-signature shares; 2f+1 of them combine
    into a constant-size quorum certificate carried by the next proposal.

    The segment leader drives the chain.  On leader timeout the pacemaker
    rotates to a new leader, which — per ISS design principle 2 — proposes
    only ⊥ for the sequence numbers the original leader never got decided,
    restarting the pipeline from its highest known QC. *)

module Orderer : Core.Orderer_intf.ORDERER

val factory : Core.Node.orderer_factory
