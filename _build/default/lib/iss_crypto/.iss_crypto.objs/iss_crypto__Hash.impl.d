lib/iss_crypto/hash.ml: Format Sha256 String
