lib/iss_crypto/hash.mli: Format
