lib/iss_crypto/merkle.ml: Array Hash List
