lib/iss_crypto/merkle.mli: Hash
