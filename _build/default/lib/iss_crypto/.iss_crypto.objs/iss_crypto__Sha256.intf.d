lib/iss_crypto/sha256.mli:
