lib/iss_crypto/signature.ml: Sha256 String
