lib/iss_crypto/signature.mli:
