lib/iss_crypto/threshold.ml: Hashtbl List Printf Sha256 String
