lib/iss_crypto/threshold.mli:
