type t = string

let size = 32

let of_string s = Sha256.digest s

let of_raw s =
  if String.length s <> size then invalid_arg "Hash.of_raw: need 32 bytes";
  s

let raw t = t
let to_hex = Sha256.hex
let equal = String.equal
let compare = String.compare
let combine l r = Sha256.digest (l ^ r)
let of_int i = Sha256.digest (string_of_int i)
let short t = String.sub (to_hex t) 0 8
let pp fmt t = Format.pp_print_string fmt (short t)
