(** Digest values and helpers over {!Sha256}. *)

type t
(** A 32-byte SHA-256 digest. *)

val of_string : string -> t
(** Hash arbitrary bytes. *)

val of_raw : string -> t
(** Adopt an existing 32-byte raw digest. Raises [Invalid_argument] on wrong
    length. *)

val raw : t -> string
val to_hex : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val combine : t -> t -> t
(** [combine l r] hashes the concatenation of two digests — the Merkle inner
    node rule. *)

val of_int : int -> t
(** Digest of an integer's decimal rendering; handy for synthetic ids. *)

val short : t -> string
(** First 8 hex chars, for logs. *)

val size : int
(** Digest size in bytes (32). *)

val pp : Format.formatter -> t -> unit
