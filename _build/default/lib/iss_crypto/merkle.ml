(* Levels are computed bottom-up; an odd trailing node is promoted to the
   next level unchanged.  Proofs record one step per level — either the
   sibling hash with its side, or an explicit promotion — so the verifier can
   track the leaf's index up the tree and reject proofs replayed at a
   different position. *)

type side = L | R

type step = Sibling of side * Hash.t | Promote

type proof = step list

let empty_root = Hash.of_string ""

let next_level level =
  let n = Array.length level in
  let m = (n + 1) / 2 in
  Array.init m (fun i ->
      if (2 * i) + 1 < n then Hash.combine level.(2 * i) level.((2 * i) + 1)
      else level.(2 * i))

let root leaves =
  if Array.length leaves = 0 then empty_root
  else begin
    let level = ref leaves in
    while Array.length !level > 1 do
      level := next_level !level
    done;
    !level.(0)
  end

let prove leaves i =
  let n = Array.length leaves in
  if i < 0 || i >= n then invalid_arg "Merkle.prove: index out of range";
  let path = ref [] in
  let level = ref leaves and idx = ref i in
  while Array.length !level > 1 do
    let n = Array.length !level in
    let sibling = if !idx land 1 = 0 then !idx + 1 else !idx - 1 in
    let step =
      if sibling < n then
        Sibling ((if !idx land 1 = 0 then R else L), !level.(sibling))
      else Promote
    in
    path := step :: !path;
    level := next_level !level;
    idx := !idx / 2
  done;
  List.rev !path

let verify_proof ~root:expected ~leaf ~index proof =
  let ok = ref true in
  let acc = ref leaf and idx = ref index in
  List.iter
    (fun step ->
      (match step with
      | Promote ->
          (* Only the last (odd) node of a level can be promoted, which
             forces an even... no: promotion happens exactly when the node is
             the unpaired last element, whose index is even in a level of odd
             length.  We cannot check level length here, but the index must
             be even for the node to be left-positioned and unpaired. *)
          if !idx land 1 <> 0 then ok := false
      | Sibling (side, sibling) ->
          let expected_side = if !idx land 1 = 0 then R else L in
          if side <> expected_side then ok := false
          else
            acc :=
              (match side with
              | R -> Hash.combine !acc sibling
              | L -> Hash.combine sibling !acc));
      idx := !idx / 2)
    proof;
  !ok && Hash.equal !acc expected

let proof_wire_size proof =
  List.fold_left
    (fun acc step -> acc + (match step with Sibling _ -> Hash.size + 1 | Promote -> 1))
    0 proof
