(** Merkle trees over batch digests.

    ISS checkpoints carry "the Merkle tree root of the digests of all the
    batches in the log with sequence numbers in Sn(e)" (paper §3.5), and
    state transfer proves fetched log entries against that root via
    inclusion proofs. *)

type proof
(** An inclusion proof: the sibling path from a leaf to the root. *)

val root : Hash.t array -> Hash.t
(** Root of the tree over the given leaves, in order.  An odd node at any
    level is promoted unchanged (Bitcoin-style trees duplicate instead; we
    promote, which avoids the duplication ambiguity).  The root of zero
    leaves is the hash of the empty string. *)

val prove : Hash.t array -> int -> proof
(** [prove leaves i] builds the inclusion proof for leaf [i].
    Raises [Invalid_argument] when [i] is out of range. *)

val verify_proof : root:Hash.t -> leaf:Hash.t -> index:int -> proof -> bool
(** Checks that [leaf] sits at [index] in a tree with root [root]. *)

val proof_wire_size : proof -> int
(** Bytes the proof occupies on the wire. *)
