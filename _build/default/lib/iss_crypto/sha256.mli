(** SHA-256 (FIPS 180-4), implemented from scratch on the OCaml stdlib.

    Used for request digests, bucket hashing inputs, Merkle trees and the
    simulated signature schemes.  Verified in the test suite against the
    RFC 6234 / NIST test vectors. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val update_sub : ctx -> string -> pos:int -> len:int -> unit

val finalize : ctx -> string
(** 32-byte raw digest.  The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot convenience: [digest s] is the 32-byte digest of [s]. *)

val hex : string -> string
(** Lowercase hex rendering of a raw digest (or any string). *)

val digest_hex : string -> string
(** [hex (digest s)]. *)
