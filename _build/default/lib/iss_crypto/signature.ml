type public_key = int
type keypair = { id : int; secret : string }
type signature = string

(* The secret is derived from the id but never exposed; deriving it requires
   this constant, which models "only the keyholder knows the secret". *)
let secret_domain = "iss-sim-secret-key-v1:"

let genkey ~id = { id; secret = Sha256.digest (secret_domain ^ string_of_int id) }

let public kp = kp.id
let key_id pk = pk
let public_of_id id = id

let sign kp msg = Sha256.digest (kp.secret ^ msg)

let verify pk msg s =
  let kp = genkey ~id:pk in
  String.equal (sign kp msg) s

let wire_size = 64
let sign_cost_ns = 70_000
let verify_cost_ns = 200_000

let forged () = String.make 32 '\x00'
