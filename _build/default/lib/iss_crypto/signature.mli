(** Simulated digital signatures (stand-in for 256-bit ECDSA).

    The paper's clients sign every request with ECDSA and nodes sign
    protocol messages (view changes, checkpoints).  We cannot (and need not)
    run real elliptic-curve crypto in the simulator: what the protocols rely
    on is (a) unforgeability, (b) wire size, and (c) CPU cost of sign/verify.

    This module provides all three:
    - a signature is the SHA-256 of (secret key ‖ message); since secret
      keys never leave this module, only the keyholder can produce a digest
      that verifies — unforgeable under the same "cannot invert the hash"
      assumption the paper makes about its PKI;
    - signatures report a 64-byte wire size (ECDSA P-256 signature size);
    - {!sign_cost_ns} / {!verify_cost_ns} expose calibrated CPU budgets that
      the simulator charges on its virtual clock. *)

type keypair
type public_key
type signature

val genkey : id:int -> keypair
(** Deterministic key generation from a numeric identity (the simulation's
    PKI: every process is "identified by its public key"). *)

val public : keypair -> public_key
val key_id : public_key -> int

val public_of_id : int -> public_key
(** Look up a process's public key by its identity — the simulation's PKI
    directory. *)

val sign : keypair -> string -> signature
val verify : public_key -> string -> signature -> bool

val wire_size : int
(** Bytes a signature occupies on the wire (64, as ECDSA P-256). *)

val sign_cost_ns : int
(** Simulated CPU time to produce a signature (~70 µs, ECDSA P-256 on
    commodity server CPUs). *)

val verify_cost_ns : int
(** Simulated CPU time to verify (~200 µs). *)

val forged : unit -> signature
(** A structurally valid but never-verifying signature, for adversarial
    tests. *)
