type group = { n : int; t : int; group_secret : string }

type share = { signer : int; proof : string }

type combined = { over : string }

let domain = "iss-sim-threshold-v1:"

let setup ~n ~t =
  if t <= 0 || t > n then invalid_arg "Threshold.setup: need 0 < t <= n";
  { n; t; group_secret = Sha256.digest (Printf.sprintf "%s%d/%d" domain t n) }

let threshold g = g.t
let parties g = g.n

let share_secret g signer =
  Sha256.digest (g.group_secret ^ "share:" ^ string_of_int signer)

let sign_share g ~signer msg =
  if signer < 0 || signer >= g.n then invalid_arg "Threshold.sign_share: bad signer";
  { signer; proof = Sha256.digest (share_secret g signer ^ msg) }

let verify_share g ~signer msg s =
  signer = s.signer
  && signer >= 0 && signer < g.n
  && String.equal s.proof (Sha256.digest (share_secret g signer ^ msg))

let combine g msg shares =
  let seen = Hashtbl.create 8 in
  let valid =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s.signer then false
        else if verify_share g ~signer:s.signer msg s then begin
          Hashtbl.replace seen s.signer ();
          true
        end
        else false)
      shares
  in
  if List.length valid >= g.t then Some { over = Sha256.digest (g.group_secret ^ "combined:" ^ msg) }
  else None

let verify g msg c = String.equal c.over (Sha256.digest (g.group_secret ^ "combined:" ^ msg))

let share_wire_size = 48
let combined_wire_size = 48
let share_sign_cost_ns = 300_000
let combine_cost_ns ~t = 150_000 + (t * 40_000)
let verify_cost_ns = 900_000
