(** Simulated (t, n)-threshold signatures (stand-in for BLS).

    The paper's HotStuff implementation aggregates 2f+1 follower votes into a
    constant-size quorum certificate using BLS threshold signatures.  We
    simulate the scheme's interface and guarantees:

    - each of the [n] parties produces a {e share} over a message;
    - any [t] distinct valid shares combine into a constant-size signature;
    - fewer than [t] shares, shares over different messages, or shares from
      repeated signers do not combine;
    - the combined signature verifies against the group's public parameters
      and the message.

    Like {!Signature}, unforgeability rests on hashing with secrets that
    never leave the module, and wire sizes / CPU costs mirror BLS12-381. *)

type group
(** Public parameters of a (t, n) group. *)

type share
type combined

val setup : n:int -> t:int -> group
(** Deterministic setup for parties [0..n-1] with threshold [t].
    Raises [Invalid_argument] unless [0 < t <= n]. *)

val threshold : group -> int
val parties : group -> int

val sign_share : group -> signer:int -> string -> share
(** Raises [Invalid_argument] if [signer] is outside [0..n-1]. *)

val verify_share : group -> signer:int -> string -> share -> bool

val combine : group -> string -> share list -> combined option
(** [combine g msg shares] is [Some sig] when [shares] contains at least
    [threshold g] valid shares over [msg] from distinct signers, [None]
    otherwise. *)

val verify : group -> string -> combined -> bool

val share_wire_size : int
(** 48 bytes (BLS12-381 G1 point). *)

val combined_wire_size : int
(** 48 bytes — aggregation does not grow the signature; this constant size
    is why HotStuff achieves linear message complexity. *)

val share_sign_cost_ns : int
val combine_cost_ns : t:int -> int
val verify_cost_ns : int
