module Engine = Sim.Engine

type t = {
  engine : Engine.t;
  n : int;
  id : Proto.Ids.node_id;
  send : dst:int -> Proto.Message.t -> unit;
  timeout : Sim.Time_ns.span;
  announced : (int, unit) Hashtbl.t;  (* epochs whose announcement arrived *)
  mutable waiting : (int * (unit -> unit)) option;
}

let create ~engine ~n ~id ~send ~timeout =
  { engine; n; id; send; timeout; announced = Hashtbl.create 16; waiting = None }

let primary_of_epoch ~n ~epoch = epoch mod n

let release t epoch =
  match t.waiting with
  | Some (e, k) when e = epoch ->
      t.waiting <- None;
      k ()
  | Some _ | None -> ()

let epoch_gate t ~epoch k =
  if Hashtbl.mem t.announced epoch then k ()
  else begin
    t.waiting <- Some (epoch, k);
    let primary = primary_of_epoch ~n:t.n ~epoch in
    if primary = t.id then begin
      (* I am the epoch primary: announce the configuration to everyone else
         and proceed myself. *)
      for dst = 0 to t.n - 1 do
        if dst <> t.id then
          t.send ~dst (Proto.Message.Mir_epoch_change { epoch; primary = t.id })
      done;
      Hashtbl.replace t.announced epoch ();
      release t epoch
    end;
    (* Ungraceful epoch change: if the primary stays quiet, proceed after
       the epoch-change timeout. *)
    ignore
      (Engine.schedule t.engine ~delay:t.timeout (fun () ->
           match t.waiting with
           | Some (e, _) when e = epoch ->
               Hashtbl.replace t.announced epoch ();
               release t epoch
           | Some _ | None -> ()))
  end

let on_message t ~src:_ msg =
  match msg with
  | Proto.Message.Mir_epoch_change { epoch; primary } ->
      if primary = primary_of_epoch ~n:t.n ~epoch then begin
        Hashtbl.replace t.announced epoch ();
        release t epoch
      end;
      true
  | _ -> false
