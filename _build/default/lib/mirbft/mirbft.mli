(** Behavioural model of Mir-BFT (Stathakopoulou et al., 2019) for the
    paper's comparison experiments (Figures 5 and 10).

    Mir-BFT is the multi-leader PBFT predecessor of ISS.  The two
    differences that matter for the experiments are modelled on top of the
    ISS node (see DESIGN.md for the substitution rationale):

    + {b Epoch primary}: Mir relies on one primary per epoch to announce
      the next configuration.  Nodes stall at every epoch transition until
      the primary's announcement arrives — unlike ISS, where every node
      derives the next configuration locally.  The primary rotates
      round-robin over {e all} nodes, including crashed ones; when the
      primary is crashed, the stall lasts the full epoch-change timeout
      (the recurring zero-throughput periods of Fig. 10).
    + {b Ungraceful epoch change}: while stalled, no next-epoch message is
      processed (ISS buffers and proceeds per segment).

    Ordering inside an epoch reuses the PBFT orderer — Mir's common path is
    PBFT with the same bucket rotation ISS generalizes. *)

type t
(** Per-node Mir gate state. *)

val create :
  engine:Sim.Engine.t ->
  n:int ->
  id:Proto.Ids.node_id ->
  send:(dst:int -> Proto.Message.t -> unit) ->
  timeout:Sim.Time_ns.span ->
  t

val epoch_gate : t -> epoch:int -> (unit -> unit) -> unit
(** Plug as {!Core.Node.hooks.epoch_gate} (wrapped to drop the node
    argument). *)

val on_message : t -> src:int -> Proto.Message.t -> bool
(** Feed every incoming message here first; returns [true] when the message
    was a Mir epoch-change announcement (consumed), [false] otherwise (pass
    it to the node). *)

val primary_of_epoch : n:int -> epoch:int -> Proto.Ids.node_id
