lib/pbft/pbft_orderer.ml: Array Core Hashtbl Iss_crypto List Option Proto Sim
