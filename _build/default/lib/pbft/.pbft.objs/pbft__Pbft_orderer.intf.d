lib/pbft/pbft_orderer.mli: Core
