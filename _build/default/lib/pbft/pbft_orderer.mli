(** PBFT as a Sequenced-Broadcast implementation (paper §4.2.1).

    One instance orders one segment.  The segment leader is the view-0
    primary; it proposes batches for every sequence number of the segment
    (in parallel, paced by ISS's rate limiter).  Commit follows the classic
    three-phase pattern (PRE-PREPARE / PREPARE / COMMIT with strong
    quorums).

    ISS adaptations implemented here:
    - the view-change timer is reset whenever {e any} batch of the segment
      commits (censoring resistance comes from ISS's bucket rotation, so
      per-request timers are unnecessary);
    - view changes are signed (Castro–Liskov's signature-based variant);
    - after a view change, the new primary re-proposes values prepared under
      the original leader and ⊥ for every other open sequence number
      (design principle 2 — needed for SB Integrity + Termination). *)

module Orderer : Core.Orderer_intf.ORDERER

val factory : Core.Node.orderer_factory
(** Plug into {!Core.Node.create}. *)
