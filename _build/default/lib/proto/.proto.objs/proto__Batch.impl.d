lib/proto/batch.ml: Array Buffer Iss_crypto Request
