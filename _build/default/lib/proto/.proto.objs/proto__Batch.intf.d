lib/proto/batch.mli: Iss_crypto Request
