lib/proto/hotstuff_msg.ml: Format Iss_crypto List Printf Proposal
