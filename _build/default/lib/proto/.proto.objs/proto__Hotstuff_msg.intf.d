lib/proto/hotstuff_msg.mli: Format Iss_crypto Proposal
