lib/proto/ids.ml:
