lib/proto/ids.mli:
