lib/proto/message.ml: Array Format Hotstuff_msg Ids Iss_crypto List Pbft_msg Printf Proposal Raft_msg Request
