lib/proto/message.mli: Format Hotstuff_msg Ids Iss_crypto Pbft_msg Proposal Raft_msg Request
