lib/proto/pbft_msg.ml: Buffer Format Ids Iss_crypto List Printf Proposal
