lib/proto/pbft_msg.mli: Format Ids Iss_crypto Proposal
