lib/proto/proposal.ml: Batch Format Iss_crypto
