lib/proto/proposal.mli: Batch Format Iss_crypto
