lib/proto/raft_msg.ml: Format List Printf Proposal
