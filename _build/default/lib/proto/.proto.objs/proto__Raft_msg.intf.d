lib/proto/raft_msg.mli: Format Proposal
