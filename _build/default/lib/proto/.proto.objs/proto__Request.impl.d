lib/proto/request.ml: Format Ids Iss_crypto Printf Sim
