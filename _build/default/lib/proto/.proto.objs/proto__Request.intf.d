lib/proto/request.mli: Format Ids Iss_crypto Sim
