type t = {
  requests : Request.t array;
  digest : Iss_crypto.Hash.t;
  wire_size : int;
}

let header_size = 16

let compute_digest reqs =
  let buf = Buffer.create (8 * Array.length reqs * 2) in
  Array.iter
    (fun (r : Request.t) ->
      Buffer.add_string buf (string_of_int r.id.client);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int r.id.ts);
      Buffer.add_char buf ';')
    reqs;
  Iss_crypto.Hash.of_string (Buffer.contents buf)

let make requests =
  {
    requests;
    digest = compute_digest requests;
    wire_size = header_size + Array.fold_left (fun acc r -> acc + Request.wire_size r) 0 requests;
  }

let empty = make [||]

let requests t = t.requests
let length t = Array.length t.requests
let is_empty t = Array.length t.requests = 0
let digest t = t.digest
let wire_size t = t.wire_size
let iter f t = Array.iter f t.requests
let exists f t = Array.exists f t.requests
let for_all f t = Array.for_all f t.requests
