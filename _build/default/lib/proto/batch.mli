(** Request batches — the unit ISS assigns to log positions. *)

type t

val make : Request.t array -> t
(** Takes ownership of the array; callers must not mutate it afterwards. *)

val empty : t
(** A zero-request batch (PBFT/Raft heartbeat proposals, HotStuff dummies). *)

val requests : t -> Request.t array
val length : t -> int
val is_empty : t -> bool

val digest : t -> Iss_crypto.Hash.t
(** SHA-256 over the ordered request identities; computed once at
    construction. *)

val wire_size : t -> int
(** Sum of the contained requests' wire sizes plus a small header. *)

val iter : (Request.t -> unit) -> t -> unit
val exists : (Request.t -> bool) -> t -> bool
val for_all : (Request.t -> bool) -> t -> bool
