(** Chained HotStuff wire messages (paper §4.2.2).

    One HotStuff instance runs per segment; each segment sequence number maps
    to one HotStuff view, followed by three dummy views that flush the
    three-chain pipeline (paper Fig. 4).  Votes carry threshold-signature
    shares; 2f+1 shares combine into a constant-size quorum certificate. *)

type qc = {
  qc_view : int;
  qc_digest : Iss_crypto.Hash.t;  (** digest of the certified chain node *)
  qc_sig : Iss_crypto.Threshold.combined;
}

type chain_node = {
  view : int;
  sn : int;  (** segment sequence number this node decides; -1 for dummies *)
  parent : Iss_crypto.Hash.t;  (** digest of the parent chain node *)
  proposal : Proposal.t;
  justify : qc option;  (** [None] only for the genesis proposal *)
}

val node_digest : chain_node -> Iss_crypto.Hash.t
(** Digest over (view, sn, parent, proposal digest) — what votes sign. *)

val vote_material : instance:int -> view:int -> Iss_crypto.Hash.t -> string
(** Canonical bytes a vote share signs. *)

type body =
  | Proposal_msg of chain_node
  | Vote of { view : int; digest : Iss_crypto.Hash.t; share : Iss_crypto.Threshold.share }
  | New_view of { view : int; justify : qc option }
      (** pacemaker: sent to the next leader on view timeout *)

type t = { instance : int; body : body }

val wire_size : t -> int
val pp : Format.formatter -> t -> unit
