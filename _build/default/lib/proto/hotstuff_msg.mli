(** Chained HotStuff wire messages (paper §4.2.2).

    One HotStuff instance runs per segment; each segment sequence number maps
    to one HotStuff view, followed by three dummy views that flush the
    three-chain pipeline (paper Fig. 4).  Votes carry threshold-signature
    shares; 2f+1 shares combine into a constant-size quorum certificate. *)

type qc = {
  qc_view : int;
  qc_digest : Iss_crypto.Hash.t;  (** digest of the certified chain node *)
  qc_sig : Iss_crypto.Threshold.combined;
}

type chain_node = {
  view : int;
  sn : int;  (** segment sequence number this node decides; -1 for dummies *)
  parent : Iss_crypto.Hash.t;  (** digest of the parent chain node *)
  proposal : Proposal.t;
  justify : qc option;  (** [None] only for the genesis proposal *)
}

val node_digest : chain_node -> Iss_crypto.Hash.t
(** Digest over (view, sn, parent, proposal digest) — what votes sign. *)

val vote_material : instance:int -> view:int -> Iss_crypto.Hash.t -> string
(** Canonical bytes a vote share signs. *)

type body =
  | Proposal_msg of chain_node
  | Vote of { view : int; digest : Iss_crypto.Hash.t; share : Iss_crypto.Threshold.share }
  | New_view of { view : int; rotation : int; justify : qc option }
      (** Pacemaker: broadcast on view timeout.  [rotation] is the sender's
          leader-rotation count — the leader-designate of rotation [r]
          collects a quorum of New_views carrying exactly [r], and any
          replica that sees f+1 peers announce a higher rotation than its
          own fast-forwards to it (without the sync, loss-diverged rotation
          counters can orbit forever with no leader ever assembling a
          quorum). *)
  | Fetch of { digest : Iss_crypto.Hash.t }
      (** Block sync: ask peers for the chain node with this digest.  Sent
          when a committed branch references an ancestor this replica never
          received (its proposal was dropped); deciding must wait for the
          ancestor or the replica would skip its sequence number. *)
  | Fetch_resp of { node : chain_node }
      (** Answer to {!Fetch}.  Self-certifying: the receiver recomputes
          [node_digest] and only accepts the node under that key. *)
  | Fill_request of { sns : int list }
      (** Slot recovery (the NACK of the PBFT orderer, ported): a replica
          making no progress asks peers for the slots it has not decided.
          Needed because replicas whose instance is [done] ignore New_views
          — fewer than a quorum of stuck replicas could otherwise never
          finish, and without 2f+1 finishers no stable checkpoint (hence no
          state transfer) ever forms. *)
  | Fill of { sn : int; proposal : Proposal.t }
      (** Answer to {!Fill_request} for one decided slot.  The requester
          adopts a value once f+1 peers report the same digest for the slot
          (at least one is correct, and correct replicas only report
          committed values). *)

type t = { instance : int; body : body }

val wire_size : t -> int
val pp : Format.formatter -> t -> unit
