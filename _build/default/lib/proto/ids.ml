type node_id = int
type client_id = int

let max_faulty ~n = (n - 1) / 3
let quorum ~n = n - max_faulty ~n
let majority ~n = (n / 2) + 1
