(** Process identities.

    Nodes and clients live in one integer endpoint space (the network routes
    by endpoint id).  By convention the runner allocates nodes the ids
    [0 .. n-1] and clients the ids [n ..]; these aliases keep protocol
    signatures readable. *)

type node_id = int
type client_id = int

val quorum : n:int -> int
(** Strong (Byzantine) quorum size: [2f+1] for the largest [f] with
    [n >= 3f+1] — i.e. [n - f]. *)

val max_faulty : n:int -> int
(** Largest [f] such that [n >= 3f + 1]. *)

val majority : n:int -> int
(** Crash-fault majority quorum: [n/2 + 1] (Raft). *)
