type t = Batch of Batch.t | Nil

let nil_digest = Iss_crypto.Hash.of_string "iss:nil-proposal"

let digest = function Batch b -> Batch.digest b | Nil -> nil_digest
let wire_size = function Batch b -> Batch.wire_size b | Nil -> 1
let is_nil = function Nil -> true | Batch _ -> false

let pp fmt = function
  | Nil -> Format.pp_print_string fmt "⊥"
  | Batch b -> Format.fprintf fmt "batch[%d]" (Batch.length b)
