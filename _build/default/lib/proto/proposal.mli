(** An SB proposal value: a request batch, or the special ⊥.

    SB (paper §2.2) lets correct nodes deliver a nil value for a sequence
    number when the designated sender is suspected; ISS leaves the
    corresponding log position empty and the bucket re-assignment retries
    the requests in a later epoch. *)

type t = Batch of Batch.t | Nil

val digest : t -> Iss_crypto.Hash.t
(** [Nil] has a fixed, distinguished digest. *)

val wire_size : t -> int
val is_nil : t -> bool
val pp : Format.formatter -> t -> unit
