type entry = { idx : int; term : int; proposal : Proposal.t }

type body =
  | Append_entries of {
      term : int;
      prev_idx : int;
      prev_term : int;
      entries : entry list;
      leader_commit : int;
    }
  | Append_reply of { term : int; success : bool; match_idx : int }
  | Request_vote of { term : int; last_idx : int; last_term : int }
  | Vote_reply of { term : int; granted : bool }

type t = { instance : int; body : body }

let header = 24

let wire_size t =
  match t.body with
  | Append_entries { entries; _ } ->
      header + 24
      + List.fold_left (fun acc e -> acc + 16 + Proposal.wire_size e.proposal) 0 entries
  | Append_reply _ -> header + 16
  | Request_vote _ -> header + 16
  | Vote_reply _ -> header + 8

let pp fmt t =
  let s =
    match t.body with
    | Append_entries { term; entries; _ } ->
        Printf.sprintf "append(t%d,%d entries)" term (List.length entries)
    | Append_reply { term; success; _ } -> Printf.sprintf "append-reply(t%d,%b)" term success
    | Request_vote { term; _ } -> Printf.sprintf "request-vote(t%d)" term
    | Vote_reply { term; granted } -> Printf.sprintf "vote-reply(t%d,%b)" term granted
  in
  Format.fprintf fmt "raft[i%d].%s" t.instance s
