(** Raft wire messages (paper §4.2.3).

    One Raft instance runs per segment.  Entry indices are positions within
    the segment (0-based); the segment maps them back to global sequence
    numbers.  The first leader of the segment is fixed (no initial
    election); elections only happen after a leader is suspected. *)

type entry = { idx : int; term : int; proposal : Proposal.t }

type body =
  | Append_entries of {
      term : int;
      prev_idx : int;  (** -1 when sending from the segment start *)
      prev_term : int;
      entries : entry list;
      leader_commit : int;  (** highest index known committed; -1 if none *)
    }
  | Append_reply of { term : int; success : bool; match_idx : int }
  | Request_vote of { term : int; last_idx : int; last_term : int }
  | Vote_reply of { term : int; granted : bool }

type t = { instance : int; body : body }

val wire_size : t -> int
val pp : Format.formatter -> t -> unit
