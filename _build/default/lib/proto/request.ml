type id = { client : Ids.client_id; ts : int }

type sig_data =
  | Signed of Iss_crypto.Signature.signature
  | Presumed of bool
  | Unsigned

type t = {
  id : id;
  payload_size : int;
  sig_data : sig_data;
  submitted_at : Sim.Time_ns.t;
}

let make ~client ~ts ?(payload_size = 500) ?(sig_data = Presumed true) ~submitted_at () =
  { id = { client; ts }; payload_size; sig_data; submitted_at }

let signing_material r =
  Printf.sprintf "req:%d:%d:%d" r.id.client r.id.ts r.payload_size

let sign kp r = { r with sig_data = Signed (Iss_crypto.Signature.sign kp (signing_material r)) }

let signature_valid r =
  match r.sig_data with
  | Unsigned -> true
  | Presumed ok -> ok
  | Signed s ->
      Iss_crypto.Signature.verify
        (Iss_crypto.Signature.public_of_id r.id.client)
        (signing_material r) s

let equal_id a b = a.client = b.client && a.ts = b.ts

let compare_id a b =
  if a.client <> b.client then compare a.client b.client else compare a.ts b.ts

let id_key id = (id.client lsl 31) lor (id.ts land 0x7FFFFFFF)

let bucket_of_id ~num_buckets id =
  assert (num_buckets > 0);
  (* Multiplicative mixing of (c ‖ t); the constant is the 32-bit golden
     ratio, giving a uniform spread even for a single client's consecutive
     timestamps. *)
  let mixed = ((id.client * 0x9E3779B1) + id.ts) land max_int in
  mixed mod num_buckets

let id_wire_size = 16 (* two 64-bit integers *)

let wire_size r =
  let sig_bytes =
    match r.sig_data with
    | Unsigned -> 0
    | Signed _ | Presumed _ -> Iss_crypto.Signature.wire_size
  in
  r.payload_size + id_wire_size + sig_bytes

let pp_id fmt id = Format.fprintf fmt "(c%d,t%d)" id.client id.ts
