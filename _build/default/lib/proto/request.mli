(** Client requests (paper §2.1 and §3.7).

    A request is [r = (o, id)] with [id = (t, c)]: payload, logical
    timestamp, client identity.  Two requests are duplicates iff both payload
    and id are equal; since our simulated payloads are opaque byte counts,
    identity alone discriminates.

    The payload itself is never materialized — the simulator only needs its
    byte size (for the network) and the request's identity (for bucketing
    and deduplication).  The client's signature over [(id, o)] is carried
    either as a real {!Iss_crypto.Signature.signature} (unit tests,
    adversarial scenarios) or as a pre-evaluated verdict (large benchmark
    runs, where re-hashing millions of requests would only heat the host
    CPU; the {e simulated} verification cost is charged on the virtual clock
    either way). *)

type id = { client : Ids.client_id; ts : int }

type sig_data =
  | Signed of Iss_crypto.Signature.signature
  | Presumed of bool  (** [Presumed ok]: verification outcome decided at creation *)
  | Unsigned  (** CFT deployments (Raft) skip client signatures, cf. Table 1 *)

type t = {
  id : id;
  payload_size : int;  (** bytes; the paper uses 500 B (avg Bitcoin tx) *)
  sig_data : sig_data;
  submitted_at : Sim.Time_ns.t;  (** when the client first sent it *)
}

val make :
  client:Ids.client_id ->
  ts:int ->
  ?payload_size:int ->
  ?sig_data:sig_data ->
  submitted_at:Sim.Time_ns.t ->
  unit ->
  t
(** Defaults: 500-byte payload, [Presumed true]. *)

val sign : Iss_crypto.Signature.keypair -> t -> t
(** Replace the signature with a real one over the request identity and
    payload size (standing in for the payload bytes). *)

val signature_valid : t -> bool
(** Evaluates the carried signature.  [Unsigned] counts as valid — whether a
    deployment {e requires} signatures is the validator's decision
    (see {!Core.Config}). *)

val equal_id : id -> id -> bool
val compare_id : id -> id -> int
val id_key : id -> int
(** Injective packing of an id into one int (for hashtables); supports
    clients < 2^31 and timestamps < 2^31. *)

val bucket_of_id : num_buckets:int -> id -> int
(** The paper's request-to-bucket map (§3.7): a uniform hash of
    [c ‖ t] — payload excluded so malicious clients cannot bias the
    distribution.  We mix the two components multiplicatively before the
    modulo so consecutive timestamps of one client still spread over all
    buckets. *)

val wire_size : t -> int
(** Bytes on the wire: payload + id + signature. *)

val pp_id : Format.formatter -> id -> unit
