lib/raft/raft_orderer.ml: Array Core Hashtbl Int64 List Proto Sim
