lib/raft/raft_orderer.ml: Array Core Hashtbl Int64 Iss_crypto List Proto Sim
