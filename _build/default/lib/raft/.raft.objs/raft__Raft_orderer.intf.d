lib/raft/raft_orderer.mli: Core
