(** Raft as a (crash fault-tolerant) Sequenced-Broadcast implementation
    (paper §4.2.3).

    One instance orders one segment; entry index [i] corresponds to the
    segment's [i]-th sequence number.  ISS adaptations:

    - the first leader is fixed to the segment leader — no initial election;
    - the leader re-sends unacknowledged entries on every heartbeat tick
      (the redundant re-proposals the paper observes hurting Raft in WANs
      when the batch timeout is shorter than the round trip);
    - the leader keeps sending empty append-entries until the instance is
      garbage-collected, so every follower learns the final commit index;
    - after an election, the new leader fills every unproposed index with ⊥
      (design principle 2) and never adds client batches;
    - election timer ranges double on failed elections, ensuring liveness
      under eventual synchrony. *)

module Orderer : Core.Orderer_intf.ORDERER

val factory : Core.Node.orderer_factory
