lib/runner/cluster.ml: Array Buffer Core Float Hashtbl Hotstuff Iss_crypto List Mirbft Pbft Printf Proto Raft Sim
