lib/runner/cluster.ml: Array Core Hashtbl Hotstuff List Mirbft Pbft Proto Raft Sim
