lib/runner/cluster.mli: Core Proto Sim
