lib/runner/experiment.ml: Array Cluster Core Faults Float Format List Option Printf Sim Workload
