lib/runner/experiment.ml: Array Cluster Core Format List Sim Workload
