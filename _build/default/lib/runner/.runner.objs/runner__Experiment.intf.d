lib/runner/experiment.mli: Cluster Core Format
