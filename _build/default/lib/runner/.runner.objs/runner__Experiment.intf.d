lib/runner/experiment.mli: Cluster Core Faults Format
