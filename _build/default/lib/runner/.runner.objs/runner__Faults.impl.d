lib/runner/faults.ml: Array Cluster Core Float Format Hashtbl List Printf Sim String
