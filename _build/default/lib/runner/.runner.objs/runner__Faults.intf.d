lib/runner/faults.mli: Cluster Core Format Sim
