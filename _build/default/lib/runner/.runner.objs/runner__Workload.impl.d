lib/runner/workload.ml: Array Cluster Core List Proto Queue Sim
