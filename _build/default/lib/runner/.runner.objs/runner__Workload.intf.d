lib/runner/workload.mli: Cluster Sim
