(** Cluster assembly and measurement for experiments.

    Builds a complete simulated deployment — engine, WAN, replicas wired to
    one of the seven systems the paper evaluates — and measures what the
    paper measures: end-to-end latency (submission until a reply quorum of
    f+1 nodes has delivered) and delivered throughput over 1-second bins. *)

type system =
  | Iss of Core.Config.protocol  (** the paper's contribution *)
  | Single of Core.Config.protocol  (** single-leader baseline (Fixed [0]) *)
  | Mir  (** Mir-BFT behavioural model *)

val system_name : system -> string

type t

val engine : t -> Sim.Engine.t
val network : t -> Proto.Message.t Sim.Network.t
val nodes : t -> Core.Node.t array
val config : t -> Core.Config.t

val create :
  ?policy:Core.Config.leader_policy_kind ->
  ?tweak:(Core.Config.t -> Core.Config.t) ->
  system:system ->
  n:int ->
  seed:int64 ->
  unit ->
  t
(** [policy] overrides the leader-selection policy for ISS systems (the
    default is the config preset's, i.e. BLACKLIST).  [tweak] patches the
    final configuration (ablations). *)

val start : t -> unit

(** {2 Fault injection (§6.4)} *)

val crash_at : t -> node:int -> at:Sim.Time_ns.t -> unit
(** Crash: silence the node's network endpoint and halt its timers. *)

val crash_epoch_end : t -> node:int -> unit
(** Schedule a crash just before the node would propose the last sequence
    number of its epoch-0 segment — the paper's worst case for epoch
    duration. *)

val set_stragglers : t -> int list -> unit
(** Byzantine stragglers (§6.4.2). *)

(** {2 Measurement} *)

val quorum_latencies : t -> Sim.Metrics.Histogram.t
(** Seconds from submission to reply quorum, one sample per request. *)

val throughput_series : t -> until:Sim.Time_ns.t -> float array
(** Quorum-delivered requests per second, 1-second bins. *)

val delivered_quorum : t -> int
(** Requests that reached their reply quorum so far. *)

val note_submitted : t -> Proto.Request.t -> unit
(** Workload bookkeeping: register a submitted request (for the delivered /
    offered accounting). *)

val submitted : t -> int

val reply_quorum : t -> int
(** f+1 for BFT systems, 1 for Raft. *)

val client_datacenter : t -> client:int -> int
(** Placement of a virtual client (round-robin over the datacenters). *)

val enable_delivery_tracking : t -> unit
(** Track per-request delivery (needed by the workload's resubmission
    sweeper in fault experiments; off by default to keep huge fault-free
    runs lean). *)

val request_delivered : t -> Proto.Request.t -> bool
(** Only meaningful after {!enable_delivery_tracking}. *)
