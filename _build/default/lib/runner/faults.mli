(** Declarative fault schedules (the chaos harness).

    A schedule is a list of fault specs with wall-clock (simulated) activation
    times; {!apply} compiles it into engine events against a {!Cluster.t}.
    All faults from the surviving-process model of the paper's §6.4 are
    expressible: crashes with and without recovery, partitions that heal,
    windows of probabilistic message loss, Byzantine stragglers, and per-link
    latency spikes.

    Schedules are plain data: they can be validated ({!validate}), printed
    ({!pp}), inspected for their heal time ({!heal_s}), generated from a seed
    ({!random}), or looked up by name ({!named}) — the CLI's [--scenario]
    flag and the chaos test-suite both go through this module. *)

type spec =
  | Crash of { node : int; at_s : float }
      (** Fail-stop at [at_s] (no recovery unless a matching [Recover]
          follows). *)
  | Recover of { node : int; at_s : float }
      (** Revive a crashed node; it rejoins via state transfer. *)
  | Crash_recover of { node : int; at_s : float; down_s : float }
      (** Crash at [at_s], recover [down_s] later. *)
  | Isolate of { node : int; from_s : float; until_s : float }
      (** Partition one node away from everyone, then heal. *)
  | Split of { minority : int list; from_s : float; until_s : float }
      (** Partition the cluster into [minority] vs the rest, then heal.
          [minority] must be a strict minority so the majority side retains a
          quorum. *)
  | Drop of { prob : float; from_s : float; until_s : float }
      (** Drop every node-to-node message independently with probability
          [prob] during the window. *)
  | Straggle of { node : int; from_s : float; until_s : float }
      (** Byzantine straggler (proposes empty batches) during the window. *)
  | Slow_link of {
      a : int;
      b : int;
      extra : Sim.Time_ns.span;
      from_s : float;
      until_s : float;
    }
      (** Add [extra] propagation latency to both directions of one link
          during the window. *)

type t

val make : name:string -> spec list -> t
val name : t -> string
val spec : t -> spec list

val heal_s : t -> float
(** Time of the last fault event — when every transient fault has healed and
    every scheduled recovery has happened.  Liveness is judged a grace period
    after this point. *)

val validate : t -> n:int -> (unit, string) result
(** Check node ids against the cluster size, window sanity, probability
    ranges, and that splits leave a majority intact. *)

val apply : t -> Cluster.t -> unit
(** Compile the schedule to simulator events (call before running the
    engine).  Overlapping partition windows compose: each isolated node is
    its own group and an active split adds one more.  Overlapping slow-link
    windows on distinct links compose likewise. *)

val liveness_grace_s : Core.Config.t -> float
(** How long after {!heal_s} every submitted request must have reached its
    reply quorum.  Derived from the epoch-change timeout (which paces
    state-transfer lag detection and leader banning) plus the rate-capped
    epoch duration (which paces bucket re-assignment away from dead
    leaders). *)

val named : n:int -> string -> (t, string) result
(** Built-in scenarios: ["crash-recover"], ["partition-heal"],
    ["split-brain"], ["lossy"], ["straggler-window"], ["slow-link"]. *)

val scenario_names : string list
(** Names accepted by {!named}, plus ["chaos"] (seed-derived {!random}). *)

val random : seed:int64 -> n:int -> duration_s:float -> t
(** Generate a randomized schedule of sequential, non-overlapping fault
    windows (at most one fault active at a time, so a connected correct
    quorum always exists and liveness must hold).  Deterministic in [seed]. *)

val pp : Format.formatter -> t -> unit
