(** Modeled client workload.

    The paper drives ISS with 256 closed-loop clients spread over all
    datacenters.  Simulating every client message at 10⁵ req/s would melt
    the event queue without changing the result, so the workload generator
    models the client side:

    - requests arrive open-loop at a configurable aggregate rate, attributed
      to a pool of virtual clients (consecutive timestamps each, spread over
      the 16 datacenters);
    - leader detection (§4.3) is modeled exactly: each request goes to the
      node currently leading its bucket plus the projected owners in the
      next two epochs;
    - the client→node propagation latency {e and} the target node's public
      NIC bandwidth are charged for every copy.

    Reply traffic is charged by {!Cluster}'s delivery hook. *)

val start :
  cluster:Cluster.t ->
  rate:float ->
  ?num_clients:int ->
  ?resubmit:bool ->
  ?sweep_until:Sim.Time_ns.t ->
  until:Sim.Time_ns.t ->
  unit ->
  unit
(** Generate [rate] requests/s until the given simulated time.
    [num_clients] defaults to 2048 — enough that per-client watermark
    windows never throttle the aggregate rate.

    [resubmit] (default false) models §4.3's client resubmission: a sweeper
    re-sends every not-yet-delivered request to the {e current} owner of
    its bucket every two seconds.  Required for fault experiments, where a
    request's original target may have crashed or lost the bucket.
    [sweep_until] (default [until]) lets the sweeper outlive the submission
    window — chaos runs extend it past the last fault's heal time so
    stragglers submitted just before a crash still get re-driven. *)
