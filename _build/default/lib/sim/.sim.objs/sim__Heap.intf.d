lib/sim/heap.mli:
