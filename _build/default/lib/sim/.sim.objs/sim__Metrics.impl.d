lib/sim/metrics.ml: Array Float Stdlib Time_ns
