lib/sim/metrics.mli: Time_ns
