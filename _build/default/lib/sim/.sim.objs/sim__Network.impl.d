lib/sim/network.ml: Array Engine Hashtbl List Printf Rng Time_ns Topology
