lib/sim/network.mli: Engine Rng Time_ns
