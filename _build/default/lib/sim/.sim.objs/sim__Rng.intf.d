lib/sim/rng.mli:
