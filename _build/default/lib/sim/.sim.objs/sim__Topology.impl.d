lib/sim/topology.ml: Array Lazy Time_ns
