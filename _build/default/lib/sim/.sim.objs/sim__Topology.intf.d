lib/sim/topology.mli: Time_ns
