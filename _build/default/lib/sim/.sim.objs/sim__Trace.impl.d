lib/sim/trace.ml: Buffer Engine Format Time_ns
