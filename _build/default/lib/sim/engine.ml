type event = {
  time : Time_ns.t;
  seq : int;
  mutable cancelled : bool;
  action : unit -> unit;
}

type timer_id = event

type t = {
  queue : event Heap.t;
  mutable clock : Time_ns.t;
  mutable next_seq : int;
  mutable executed : int;
}

let compare_event a b =
  if a.time <> b.time then compare a.time b.time else compare a.seq b.seq

let create () =
  { queue = Heap.create ~cmp:compare_event; clock = Time_ns.zero; next_seq = 0; executed = 0 }

let now t = t.clock

let schedule_at t ~at action =
  let at = if at < t.clock then t.clock else at in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { time = at; seq; cancelled = false; action } in
  Heap.push t.queue ev;
  ev

let schedule t ~delay action =
  let delay = if delay < 0 then 0 else delay in
  schedule_at t ~at:(Time_ns.add t.clock delay) action

let cancel _t ev = ev.cancelled <- true

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      if not ev.cancelled then begin
        t.executed <- t.executed + 1;
        ev.action ()
      end;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | Some ev when ev.time <= limit -> ignore (step t)
        | Some _ | None ->
            t.clock <- limit;
            continue := false
      done

let events_executed t = t.executed
