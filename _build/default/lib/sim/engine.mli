(** Deterministic discrete-event simulation engine.

    One engine owns the virtual clock and the event queue.  All simulated
    activity — message deliveries, protocol timers, workload arrivals — is an
    event: a closure scheduled at a virtual time.  Events at equal times fire
    in insertion order, so a run is a pure function of the seed and the
    initial schedule. *)

type t

type timer_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t

val now : t -> Time_ns.t
(** Current virtual time. *)

val schedule : t -> delay:Time_ns.span -> (unit -> unit) -> timer_id
(** [schedule t ~delay f] runs [f] at [now t + delay].  A non-positive delay
    schedules for the current instant (after currently-queued same-time
    events).  Returns a handle usable with {!cancel}. *)

val schedule_at : t -> at:Time_ns.t -> (unit -> unit) -> timer_id
(** Absolute-time variant.  Times in the past are clamped to [now]. *)

val cancel : t -> timer_id -> unit
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled tombstones). *)

val run : ?until:Time_ns.t -> t -> unit
(** Drains the event queue.  With [~until], stops once the next event would
    fire strictly after [until] and sets the clock to [until]; without it,
    runs until the queue is empty. *)

val step : t -> bool
(** Executes the single next event.  Returns [false] when the queue is
    empty. *)

val events_executed : t -> int
(** Total events executed so far (cancelled events excluded); useful for
    reporting simulation effort. *)
