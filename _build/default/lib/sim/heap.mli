(** Array-backed binary min-heap, the simulator's event queue core.

    Elements are ordered by a user-supplied comparison.  The simulator orders
    events by [(time, insertion sequence)] so that simultaneous events fire in
    a deterministic FIFO order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element, or [None] when empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit
