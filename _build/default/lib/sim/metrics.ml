module Histogram = struct
  type t = {
    mutable samples : float array;
    mutable size : int;
    mutable sorted : bool;
  }

  let create () = { samples = [||]; size = 0; sorted = true }

  let add t x =
    let cap = Array.length t.samples in
    if t.size = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let ns = Array.make ncap 0.0 in
      Array.blit t.samples 0 ns 0 t.size;
      t.samples <- ns
    end;
    t.samples.(t.size) <- x;
    t.size <- t.size + 1;
    t.sorted <- false

  let count t = t.size

  let mean t =
    if t.size = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.size - 1 do
        sum := !sum +. t.samples.(i)
      done;
      !sum /. float_of_int t.size
    end

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.size in
      Array.sort compare live;
      Array.blit live 0 t.samples 0 t.size;
      t.sorted <- true
    end

  let percentile t p =
    if t.size = 0 then 0.0
    else begin
      ensure_sorted t;
      let rank = int_of_float (Float.round (p /. 100.0 *. float_of_int (t.size - 1))) in
      let rank = Stdlib.max 0 (Stdlib.min (t.size - 1) rank) in
      t.samples.(rank)
    end

  let min t = if t.size = 0 then 0.0 else (ensure_sorted t; t.samples.(0))
  let max t = if t.size = 0 then 0.0 else (ensure_sorted t; t.samples.(t.size - 1))

  let clear t =
    t.size <- 0;
    t.sorted <- true
end

module Series = struct
  type t = {
    bin : Time_ns.span;
    mutable sums : float array;
    mutable used : int;
  }

  let create ~bin =
    assert (bin > 0);
    { bin; sums = [||]; used = 0 }

  let ensure t idx =
    let cap = Array.length t.sums in
    if idx >= cap then begin
      let ncap = Stdlib.max (idx + 1) (Stdlib.max 16 (cap * 2)) in
      let ns = Array.make ncap 0.0 in
      Array.blit t.sums 0 ns 0 t.used;
      t.sums <- ns
    end;
    if idx >= t.used then t.used <- idx + 1

  let add t ~at x =
    let idx = at / t.bin in
    ensure t idx;
    t.sums.(idx) <- t.sums.(idx) +. x

  let bins t ~until =
    let n = (until + t.bin - 1) / t.bin in
    Array.init n (fun i -> if i < t.used then t.sums.(i) else 0.0)

  let rate_per_sec t ~until =
    let per_bin = bins t ~until in
    let scale = 1e9 /. float_of_int t.bin in
    Array.map (fun x -> x *. scale) per_bin
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
end
