(** Measurement primitives for experiments.

    - {!Histogram} records individual samples (e.g. request latencies) and
      reports count / mean / percentiles.
    - {!Series} bins a counter over fixed time windows (e.g. throughput over
      1-second intervals as in the paper's Figures 9, 10 and 12).
    - {!Counter} is a plain monotonic counter. *)

module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0,100\]] by nearest-rank on the sorted
      samples; 0 when empty.  Sorting is cached between additions. *)

  val min : t -> float
  val max : t -> float
  val clear : t -> unit
end

module Series : sig
  type t

  val create : bin:Time_ns.span -> t
  (** Bin width, e.g. [Time_ns.sec 1]. *)

  val add : t -> at:Time_ns.t -> float -> unit
  val bins : t -> until:Time_ns.t -> float array
  (** Per-bin sums covering [\[0, until)]; bins with no samples are 0. *)

  val rate_per_sec : t -> until:Time_ns.t -> float array
  (** Per-bin sums normalized to events per second. *)
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end
