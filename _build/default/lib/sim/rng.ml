type t = {
  mutable state : int64;
  mutable zipf_cache : zipf_table option;
}

and zipf_table = { zn : int; zs : float; cdf : float array }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed; zipf_cache = None }

(* SplitMix64 core: add the golden gamma, then mix with two xor-shift-multiply
   rounds (constants from the reference implementation). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed; zipf_cache = None }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits: Int64.to_int wraps values >= 2^62 to negative OCaml
     ints, which would leak negative results through the modulo. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land max_int in
  r mod bound

let float t bound =
  (* 53 random bits scaled to [0,1), as in the standard doubles recipe. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let uniform_range t ~lo ~hi = lo +. float t (hi -. lo)

let build_zipf_table ~n ~s =
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. (Float.of_int k ** s));
    cdf.(k - 1) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { zn = n; zs = s; cdf }

let zipf t ~n ~s =
  assert (n > 0);
  let table =
    match t.zipf_cache with
    | Some z when z.zn = n && z.zs = s -> z
    | _ ->
        let z = build_zipf_table ~n ~s in
        t.zipf_cache <- Some z;
        z
  in
  let u = float t 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if table.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
