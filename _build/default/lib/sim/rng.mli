(** Deterministic pseudo-random number generation for the simulator.

    The simulator must be fully reproducible: every experiment is seeded and
    re-running it yields bit-identical traces.  We implement SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014), a small, fast, well-distributed
    generator whose [split] operation lets independent components draw from
    statistically independent streams derived from one master seed. *)

type t
(** A mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and advances
    [t].  Used to give each node / client / link its own stream so that adding
    a consumer does not perturb the draws of the others. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (inter-arrival times
    of a Poisson process). *)

val uniform_range : t -> lo:float -> hi:float -> float

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws from a Zipf distribution over [\[1, n\]] with skew
    [s], by inversion over the precomputed harmonic CDF (rebuilt when [n] or
    [s] changes; cached otherwise).  Used for skewed client workloads. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)
