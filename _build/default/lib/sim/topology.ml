type datacenter = { name : string; lat : float; lon : float }

(* 16 locations approximating IBM Cloud's multi-zone regions across the four
   continents mentioned in the paper. *)
let datacenters =
  [|
    { name = "Dallas"; lat = 32.78; lon = -96.80 };
    { name = "WashingtonDC"; lat = 38.90; lon = -77.04 };
    { name = "SanJose"; lat = 37.34; lon = -121.89 };
    { name = "Toronto"; lat = 43.65; lon = -79.38 };
    { name = "Montreal"; lat = 45.50; lon = -73.57 };
    { name = "SaoPaulo"; lat = -23.55; lon = -46.63 };
    { name = "London"; lat = 51.51; lon = -0.13 };
    { name = "Frankfurt"; lat = 50.11; lon = 8.68 };
    { name = "Paris"; lat = 48.86; lon = 2.35 };
    { name = "Milan"; lat = 45.46; lon = 9.19 };
    { name = "Oslo"; lat = 59.91; lon = 10.75 };
    { name = "Tokyo"; lat = 35.68; lon = 139.69 };
    { name = "Osaka"; lat = 34.69; lon = 135.50 };
    { name = "Singapore"; lat = 1.35; lon = 103.82 };
    { name = "Chennai"; lat = 13.08; lon = 80.27 };
    { name = "Sydney"; lat = -33.87; lon = 151.21 };
  |]

let pi = 4.0 *. atan 1.0
let deg2rad d = d *. pi /. 180.0

(* Great-circle distance in kilometers (haversine formula). *)
let haversine_km a b =
  let r = 6371.0 in
  let dlat = deg2rad (b.lat -. a.lat) and dlon = deg2rad (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (deg2rad a.lat) *. cos (deg2rad b.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. r *. asin (sqrt h)

(* One-way latency: light in fiber covers ~200 km/ms; real routes detour, so
   we apply a 1.4x path-stretch factor, plus a 0.25 ms fixed hop cost. *)
let latency_of_km km = Time_ns.of_sec_f ((km *. 1.4 /. 200_000.0) +. 0.00025)

let n_dc = Array.length datacenters

let matrix =
  lazy
    (Array.init n_dc (fun i ->
         Array.init n_dc (fun j ->
             if i = j then Time_ns.of_sec_f 0.00025
             else latency_of_km (haversine_km datacenters.(i) datacenters.(j)))))

let latency a b = (Lazy.force matrix).(a).(b)

(* The paper's 4-node setup spans 4 datacenters on 4 continents. *)
let four_continents = [| 0 (* Dallas *); 7 (* Frankfurt *); 13 (* Singapore *); 15 (* Sydney *) |]

let assign_uniform ~n =
  if n <= 4 then Array.init n (fun i -> four_continents.(i))
  else Array.init n (fun i -> i mod n_dc)

let max_latency () =
  let m = Lazy.force matrix in
  let best = ref 0 in
  Array.iter (fun row -> Array.iter (fun v -> if v > !best then best := v) row) m;
  !best
