(** WAN topology model.

    The paper deploys on 16 IBM-cloud datacenters spread over Europe,
    America, Australia and Asia.  We model those locations by real city
    coordinates and derive one-way propagation latency from great-circle
    distance at an effective signal speed (fiber ≈ 2/3 c, plus routing
    detours), which matches published inter-datacenter RTTs within ~20 %. *)

type datacenter = {
  name : string;
  lat : float;  (** degrees *)
  lon : float;  (** degrees *)
}

val datacenters : datacenter array
(** The 16 modelled locations. *)

val latency : int -> int -> Time_ns.span
(** [latency a b] is the one-way propagation latency between datacenters [a]
    and [b] (indices into {!datacenters}).  Symmetric; [latency a a] models
    an intra-datacenter hop (~0.25 ms). *)

val assign_uniform : n:int -> int array
(** Placement of [n] processes over the 16 datacenters, round-robin, as the
    paper does ("uniformly distributed across all datacenters").  For [n = 4]
    the paper instead uses 4 datacenters on 4 continents; this function
    special-cases that. *)

val max_latency : unit -> Time_ns.span
(** Largest pairwise one-way latency in the matrix. *)
