type level = Debug | Info | Warn

let enabled = ref false
let level = ref Info
let sink : Buffer.t option ref = ref None

let set_enabled b = enabled := b
let set_level l = level := l

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2

let emit engine lvl fmt =
  if !enabled && severity lvl >= severity !level then begin
    let k ppf =
      Format.fprintf ppf "[%a] " Time_ns.pp (Engine.now engine);
      ppf
    in
    match !sink with
    | Some buf ->
        let ppf = Format.formatter_of_buffer buf in
        Format.kfprintf
          (fun ppf -> Format.fprintf ppf "@."; Format.pp_print_flush ppf ())
          (k ppf) fmt
    | None ->
        Format.kfprintf (fun ppf -> Format.fprintf ppf "@.") (k Format.err_formatter) fmt
  end
  else Format.ifprintf Format.err_formatter fmt

let with_capture f =
  let buf = Buffer.create 256 in
  let saved_sink = !sink and saved_enabled = !enabled in
  sink := Some buf;
  enabled := true;
  let finish () =
    sink := saved_sink;
    enabled := saved_enabled
  in
  match f () with
  | v ->
      finish ();
      (v, Buffer.contents buf)
  | exception e ->
      finish ();
      raise e
