(** Lightweight simulation tracing.

    Protocol code emits trace points tagged with the simulated time; tests
    and the CLI can turn categories on to debug protocol runs without paying
    any formatting cost when disabled. *)

type level = Debug | Info | Warn

val set_enabled : bool -> unit
val set_level : level -> unit

val emit : Engine.t -> level -> ('a, Format.formatter, unit) format -> 'a
(** [emit engine lvl fmt ...] prints ["[<sim time>] <msg>"] to stderr when
    tracing is enabled at [lvl] or below. *)

val with_capture : (unit -> 'a) -> 'a * string
(** Runs the thunk with tracing redirected into a buffer; returns the result
    and the captured trace text.  Used by tests asserting on trace output. *)
