test/test_brb.ml: Alcotest Array Brb Fun List Printf Sim
