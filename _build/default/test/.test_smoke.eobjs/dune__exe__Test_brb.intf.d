test/test_brb.mli:
