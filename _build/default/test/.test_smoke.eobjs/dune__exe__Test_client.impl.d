test/test_client.ml: Alcotest Array Core List Printf Proto Sim
