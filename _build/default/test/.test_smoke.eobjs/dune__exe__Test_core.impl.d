test/test_core.ml: Alcotest Array Core Gen Hashtbl Int64 Iss_crypto List Option Printf Proto QCheck QCheck_alcotest Sim Test
