test/test_crypto.ml: Alcotest Array Gen Iss_crypto List QCheck QCheck_alcotest String
