test/test_faults.ml: Alcotest Array Buffer Core Float Format Hashtbl Iss_crypto List Pbft Printf Proto Runner Sim
