test/test_iss.ml: Alcotest Array Core Hotstuff Int64 Iss_crypto List Pbft Printf Proto QCheck QCheck_alcotest Raft Sim
