test/test_proto.ml: Alcotest Array Hashtbl Iss_crypto List Printf Proto String
