test/test_runner.ml: Alcotest Array Core List Mirbft Printf Proto Runner Sim
