test/test_smoke.ml: Alcotest Array Core Hotstuff Iss_crypto List Pbft Printf Proto Raft Sim
