(* Tests for the Section-5 stack: Bracha BRB, the ◇S(bz) failure detector,
   single-shot consensus, and the SB-from-consensus construction
   (Algorithm 5) — including the four SB properties. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small in-simulator harness wiring n processes of some protocol over
   the network; handlers are installed after creation (two-phase init). *)
let make_harness ~n ~seed ~create =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in
  (* Two-phase init: processes need a send function before they exist;
     route through a mutable dispatch table. *)
  let handlers = Array.make n (fun ~src:_ _ -> ()) in
  for id = 0 to n - 1 do
    Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
      ~handler:(fun ~src ~size:_ msg -> handlers.(id) ~src msg)
  done;
  let send_from src ~dst msg =
    if dst = src then
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.us 10) (fun () ->
             handlers.(src) ~src msg))
    else Sim.Network.send net ~src ~dst ~size:(Brb.Brb_msg.wire_size msg) msg
  in
  let procs = Array.init n (fun id -> create ~engine ~id ~send:(send_from id)) in
  (procs, handlers, engine, net)

(* ------------------------------------------------------------------ *)
(* Bracha BRB *)

let brb_harness ~n ~sender ~seed =
  let delivered = Array.make n None in
  let procs, handlers, engine, net =
    make_harness ~n ~seed ~create:(fun ~engine:_ ~id ~send ->
        Brb.Bracha.create ~n ~me:id ~instance:0 ~sender ~send ~deliver:(fun payload ->
            delivered.(id) <- Some payload))
  in
  Array.iteri (fun id p -> handlers.(id) <- (fun ~src msg -> Brb.Bracha.on_message p ~src msg)) procs;
  (procs, delivered, engine, net)

let test_brb_delivery () =
  let procs, delivered, engine, _ = brb_harness ~n:4 ~sender:0 ~seed:1L in
  Brb.Bracha.broadcast procs.(0) "value";
  Sim.Engine.run ~until:(Sim.Time_ns.sec 10) engine;
  Array.iteri
    (fun i v ->
      match v with
      | Some "value" -> ()
      | Some other -> Alcotest.failf "node %d delivered %S" i other
      | None -> Alcotest.failf "node %d delivered nothing" i)
    delivered

let test_brb_totality_with_crashed_sender_mid_broadcast () =
  (* The sender crashes right after sending: once any correct node
     delivers, all correct nodes deliver (READY amplification). *)
  let procs, delivered, engine, net = brb_harness ~n:4 ~sender:0 ~seed:2L in
  Brb.Bracha.broadcast procs.(0) "v";
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms 400) (fun () ->
         Sim.Network.crash net 0));
  Sim.Engine.run ~until:(Sim.Time_ns.sec 20) engine;
  (* All correct nodes (1..3) agree: either all or none delivered. *)
  let count =
    Array.fold_left (fun acc v -> if v <> None then acc + 1 else acc) 0
      (Array.sub delivered 1 3)
  in
  check_bool "all-or-nothing among correct" true (count = 0 || count = 3)

let test_brb_quiet_sender_no_delivery () =
  let _, delivered, engine, _ = brb_harness ~n:4 ~sender:0 ~seed:3L in
  (* Sender never broadcasts. *)
  Sim.Engine.run ~until:(Sim.Time_ns.sec 10) engine;
  Array.iter (fun v -> check_bool "nothing delivered" true (v = None)) delivered

let test_brb_non_sender_cannot_broadcast () =
  let procs, _, _, _ = brb_harness ~n:4 ~sender:0 ~seed:4L in
  Alcotest.check_raises "non-sender rejected"
    (Invalid_argument "Bracha.broadcast: not the designated sender") (fun () ->
      Brb.Bracha.broadcast procs.(1) "evil")

(* ------------------------------------------------------------------ *)
(* Failure detector *)

let fd_harness ~n ~seed =
  let fds, handlers, engine, net =
    make_harness ~n ~seed ~create:(fun ~engine ~id ~send ->
        Brb.Failure_detector.create ~engine ~n ~me:id ~send ())
  in
  Array.iteri
    (fun id fd -> handlers.(id) <- (fun ~src msg -> Brb.Failure_detector.on_message fd ~src msg))
    fds;
  (fds, engine, net)

let test_fd_strong_completeness () =
  let fds, engine, net = fd_harness ~n:4 ~seed:5L in
  Array.iter Brb.Failure_detector.start fds;
  (* Node 3 crashes immediately: everyone must eventually suspect it. *)
  Sim.Network.crash net 3;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 30) engine;
  for i = 0 to 2 do
    check_bool
      (Printf.sprintf "node %d suspects 3" i)
      true
      (Brb.Failure_detector.suspected fds.(i) 3)
  done

let test_fd_accuracy_and_restore () =
  let fds, engine, net = fd_harness ~n:4 ~seed:6L in
  let restored = ref 0 in
  Array.iter (fun fd -> Brb.Failure_detector.on_restore fd (fun _ -> incr restored)) fds;
  Array.iter Brb.Failure_detector.start fds;
  (* A transient partition of node 2, healed later: node 2 gets suspected,
     then restored, and stays unsuspected (timeout doubled past the glitch). *)
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.sec 1) (fun () ->
         Sim.Network.set_partition net (Some (fun id -> if id = 2 then 1 else 0))));
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.sec 8) (fun () ->
         Sim.Network.set_partition net None));
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) engine;
  check_bool "restore events fired" true (!restored > 0);
  for i = 0 to 3 do
    if i <> 2 then
      check_bool (Printf.sprintf "node %d no longer suspects 2" i) false
        (Brb.Failure_detector.suspected fds.(i) 2)
  done

(* ------------------------------------------------------------------ *)
(* Consensus *)

let consensus_harness ~n ~seed ~acceptable =
  let decisions = Array.make n None in
  let procs, handlers, engine, net =
    make_harness ~n ~seed ~create:(fun ~engine ~id ~send ->
        Brb.Consensus.create ~engine ~n ~me:id ~instance:0 ~send ~acceptable
          ~decide:(fun v -> decisions.(id) <- Some v)
          ())
  in
  Array.iteri
    (fun id p -> handlers.(id) <- (fun ~src msg -> Brb.Consensus.on_message p ~src msg))
    procs;
  (procs, decisions, engine, net)

let test_consensus_unanimous () =
  let procs, decisions, engine, _ = consensus_harness ~n:4 ~seed:7L ~acceptable:(fun _ -> true) in
  Array.iter (fun p -> Brb.Consensus.propose p (Some "v")) procs;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 30) engine;
  Array.iteri
    (fun i d ->
      match d with
      | Some (Some "v") -> ()
      | _ -> Alcotest.failf "node %d decided wrongly" i)
    decisions

let test_consensus_crashed_coordinator () =
  let procs, decisions, engine, net =
    consensus_harness ~n:4 ~seed:8L ~acceptable:(fun _ -> true)
  in
  (* Coordinator of view 0 (node 0) is dead; the view change must rotate to
     node 1, which then drives a decision. *)
  Sim.Network.crash net 0;
  Array.iteri (fun i p -> if i > 0 then Brb.Consensus.propose p (Some "w")) procs;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) engine;
  let decided =
    Array.to_list decisions |> List.filteri (fun i _ -> i > 0) |> List.filter_map Fun.id
  in
  check_int "all correct decide" 3 (List.length decided);
  List.iter (fun v -> check_bool "decide w" true (v = Some "w")) decided

let test_consensus_agreement_mixed_bot () =
  (* Half propose ⊥, half propose a value: everyone must decide the same
     thing. *)
  let procs, decisions, engine, _ = consensus_harness ~n:4 ~seed:9L ~acceptable:(fun _ -> true) in
  Array.iteri
    (fun i p -> Brb.Consensus.propose p (if i < 2 then None else Some "x"))
    procs;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) engine;
  let ds = Array.to_list decisions |> List.filter_map Fun.id in
  check_int "all decide" 4 (List.length ds);
  match ds with
  | first :: rest -> List.iter (fun v -> check_bool "agreement" true (v = first)) rest
  | [] -> Alcotest.fail "no decisions"

(* ------------------------------------------------------------------ *)
(* Algorithm 5: SB from BRB + consensus + FD *)

let sb_harness ~n ~sender ~seq_nrs ~seed =
  let deliveries = Array.make n [] in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in
  let handlers = Array.make n (fun ~src:_ _ -> ()) in
  for id = 0 to n - 1 do
    Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
      ~handler:(fun ~src ~size:_ msg -> handlers.(id) ~src msg)
  done;
  let send_from src ~dst msg =
    if dst = src then
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.us 10) (fun () ->
             handlers.(src) ~src msg))
    else Sim.Network.send net ~src ~dst ~size:(Brb.Brb_msg.wire_size msg) msg
  in
  let fds =
    Array.init n (fun id ->
        Brb.Failure_detector.create ~engine ~n ~me:id ~send:(send_from id) ())
  in
  let sbs =
    Array.init n (fun id ->
        Brb.Sb_cons.create ~engine ~n ~me:id ~sender ~seq_nrs ~instance_base:100
          ~send:(send_from id) ~fd:fds.(id)
          ~deliver:(fun ~sn v -> deliveries.(id) <- (sn, v) :: deliveries.(id)))
  in
  Array.iteri
    (fun id sb -> handlers.(id) <- (fun ~src msg -> Brb.Sb_cons.on_message sb ~src msg))
    sbs;
  Array.iter Brb.Failure_detector.start fds;
  Array.iter Brb.Sb_cons.init sbs;
  (sbs, deliveries, engine, net)

let test_sb_happy_path () =
  let seq_nrs = [| 0; 3; 6 |] in
  let sbs, deliveries, engine, _ = sb_harness ~n:4 ~sender:0 ~seq_nrs ~seed:10L in
  Array.iteri (fun i sn -> Brb.Sb_cons.sb_cast sbs.(0) ~sn (Printf.sprintf "m%d" i)) seq_nrs;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) engine;
  Array.iteri
    (fun node ds ->
      (* SB3 Termination: a delivery for every sequence number. *)
      check_int (Printf.sprintf "node %d delivers all" node) 3 (List.length ds);
      List.iter
        (fun (sn, v) ->
          (* SB1 Integrity + SB4 progress: sender correct and unsuspected,
             so all values are the sb-cast ones (no ⊥). *)
          match v with
          | Some m ->
              let idx = match sn with 0 -> 0 | 3 -> 1 | 6 -> 2 | _ -> -1 in
              Alcotest.(check string) "right payload" (Printf.sprintf "m%d" idx) m
          | None -> Alcotest.failf "unexpected ⊥ at sn %d" sn)
        ds)
    deliveries;
  (* SB2 Agreement across nodes. *)
  let norm ds = List.sort compare ds in
  let d0 = norm deliveries.(0) in
  Array.iter (fun ds -> check_bool "agreement" true (norm ds = d0)) deliveries

let test_sb_quiet_sender_terminates_with_bot () =
  let seq_nrs = [| 0; 1 |] in
  let _, deliveries, engine, net = sb_harness ~n:4 ~sender:0 ~seq_nrs ~seed:11L in
  (* The sender is quiet (crashed from the start, never sb-casts): SB3
     termination demands ⊥ for every sequence number at every correct
     node. *)
  Sim.Network.crash net 0;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 120) engine;
  for node = 1 to 3 do
    let ds = deliveries.(node) in
    check_int (Printf.sprintf "node %d terminates" node) 2 (List.length ds);
    List.iter
      (fun (sn, v) ->
        check_bool (Printf.sprintf "⊥ at sn %d" sn) true (v = None))
      ds
  done

let test_sb_partial_cast_agreement () =
  (* Sender casts one of two messages then crashes: nodes must agree per
     sequence number (the cast one may deliver; the other ends ⊥). *)
  let seq_nrs = [| 0; 1 |] in
  let sbs, deliveries, engine, net = sb_harness ~n:4 ~sender:0 ~seq_nrs ~seed:12L in
  Brb.Sb_cons.sb_cast sbs.(0) ~sn:0 "early";
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms 600) (fun () -> Sim.Network.crash net 0));
  Sim.Engine.run ~until:(Sim.Time_ns.sec 120) engine;
  for node = 1 to 3 do
    check_int (Printf.sprintf "node %d terminates" node) 2 (List.length deliveries.(node))
  done;
  let norm ds = List.sort compare ds in
  let d1 = norm deliveries.(1) in
  for node = 2 to 3 do
    check_bool "agreement" true (norm deliveries.(node) = d1)
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "brb-section5"
    [
      ( "bracha",
        [
          Alcotest.test_case "delivery" `Quick test_brb_delivery;
          Alcotest.test_case "totality with crash mid-broadcast" `Quick
            test_brb_totality_with_crashed_sender_mid_broadcast;
          Alcotest.test_case "quiet sender: silence" `Quick test_brb_quiet_sender_no_delivery;
          Alcotest.test_case "non-sender rejected" `Quick test_brb_non_sender_cannot_broadcast;
        ] );
      ( "failure-detector",
        [
          Alcotest.test_case "strong completeness" `Quick test_fd_strong_completeness;
          Alcotest.test_case "accuracy after transient partition" `Slow
            test_fd_accuracy_and_restore;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "unanimous" `Quick test_consensus_unanimous;
          Alcotest.test_case "crashed coordinator" `Slow test_consensus_crashed_coordinator;
          Alcotest.test_case "agreement with mixed ⊥" `Slow test_consensus_agreement_mixed_bot;
        ] );
      ( "sequenced-broadcast",
        [
          Alcotest.test_case "SB1-SB4 happy path" `Slow test_sb_happy_path;
          Alcotest.test_case "SB3 with quiet sender" `Slow
            test_sb_quiet_sender_terminates_with_bot;
          Alcotest.test_case "partial cast agreement" `Slow test_sb_partial_cast_agreement;
        ] );
    ]
