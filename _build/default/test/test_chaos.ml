(* Randomized chaos sweep — the heavyweight companion to test_faults.ml.

     dune build @chaos

   Runs every named fault scenario plus several seed-derived random
   schedules against each ISS instantiation, with invariant checking and
   the end-of-run liveness assertion enabled (Experiment.run does both when
   given a scenario).  Any safety, exactly-once or liveness violation
   raises Cluster.Invariant_violation and fails the build with the
   checker's report. *)

module Faults = Runner.Faults
module Cluster = Runner.Cluster
module Experiment = Runner.Experiment

(* Same shortened configuration as test_faults.ml: more epochs (hence more
   epoch changes, state transfers and bucket rotations) per simulated
   second, and a post-heal grace period that keeps the sweep tractable. *)
let fast c =
  {
    c with
    Core.Config.min_epoch_length = 32;
    min_segment_size = 4;
    epoch_change_timeout = Sim.Time_ns.sec 4;
    max_batch_timeout =
      (if c.Core.Config.max_batch_timeout = 0 then 0 else Sim.Time_ns.sec 1);
  }

let systems =
  [
    Cluster.Iss Core.Config.PBFT;
    Cluster.Iss Core.Config.HotStuff;
    Cluster.Iss Core.Config.Raft;
  ]

let chaos_seeds = [ 1L; 2L; 3L ]

let () =
  let n = 4 in
  let failures = ref 0 in
  let run_one system sc =
    let label =
      Printf.sprintf "%-12s %s" (Cluster.system_name system) (Faults.name sc)
    in
    match
      Experiment.run ~tweak:fast ~scenario:sc ~system ~n ~rate:300.0 ~duration_s:30.0
        ~seed:7L ()
    with
    | r -> Format.printf "ok   %s  %a@." label Experiment.pp_result r
    | exception Cluster.Invariant_violation report ->
        incr failures;
        Format.printf "FAIL %s@.%s@." label report
  in
  List.iter
    (fun system ->
      List.iter
        (fun name ->
          if name <> "chaos" then
            match Faults.named ~n name with
            | Ok sc -> run_one system sc
            | Error e -> failwith e)
        Faults.scenario_names;
      List.iter
        (fun seed -> run_one system (Faults.random ~seed ~n ~duration_s:30.0))
        chaos_seeds)
    systems;
  if !failures > 0 then begin
    Format.printf "@.%d chaos run(s) violated an invariant@." !failures;
    exit 1
  end
  else Format.printf "@.all chaos runs passed@."
