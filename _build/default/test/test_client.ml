(* Unit tests for the client module (§4.3): leader detection targets,
   reply quorums, watermark-window pacing, resubmission on epoch change. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type sent = { dst : int; msg : Proto.Message.t }

let make_client ?(n = 4) ?(window = 8) () =
  let config =
    {
      (Core.Config.pbft_default ~n) with
      Core.Config.client_watermark_window = window;
    }
  in
  let engine = Sim.Engine.create () in
  let sent = ref [] in
  let completed = ref [] in
  let client =
    Core.Client.create ~config ~id:100 ~engine
      ~send:(fun ~dst msg -> sent := { dst; msg } :: !sent)
      ~on_complete:(fun req ~latency:_ -> completed := req :: !completed)
      ()
  in
  (client, engine, sent, completed, config)

let request_targets sent =
  List.filter_map
    (fun { dst; msg } -> match msg with Proto.Message.Request_msg _ -> Some dst | _ -> None)
    !sent

let test_submission_targets () =
  let client, _, sent, _, _config = make_client () in
  Core.Client.submit_next client;
  let targets = request_targets sent in
  (* The request goes to 1-3 distinct nodes: the projected owner for the
     current epoch plus the next two (possibly coinciding). *)
  check_bool "1..3 targets" true (List.length targets >= 1 && List.length targets <= 3);
  check_int "all distinct" (List.length targets)
    (List.length (List.sort_uniq compare targets));
  check_int "one in flight" 1 (Core.Client.in_flight client)

let test_reply_quorum_f_plus_one () =
  let client, _, _, completed, _ = make_client ~n:4 () in
  Core.Client.submit_next client;
  let req_id = { Proto.Request.client = 100; ts = 0 } in
  let reply replier =
    Core.Client.on_message client ~src:replier
      (Proto.Message.Reply { req_id; sn = 0; replier })
  in
  reply 0;
  check_int "one reply is not enough (f=1)" 0 (List.length !completed);
  reply 0;
  check_int "duplicate replier does not count" 0 (List.length !completed);
  reply 2;
  check_int "f+1 distinct replies complete" 1 (List.length !completed);
  reply 3;
  check_int "extra replies ignored" 1 (List.length !completed)

let test_window_backpressure () =
  let window = 4 in
  let client, _, sent, _, _ = make_client ~window () in
  for _ = 1 to 10 do
    Core.Client.submit_next client
  done;
  check_int "window caps in-flight" window (Core.Client.in_flight client);
  (* Complete the first request: the backlog drains by one. *)
  let n_sent_before = List.length (request_targets sent) in
  let req_id = { Proto.Request.client = 100; ts = 0 } in
  List.iter
    (fun replier ->
      Core.Client.on_message client ~src:replier
        (Proto.Message.Reply { req_id; sn = 0; replier }))
    [ 0; 1 ];
  check_int "backlog drained into the window" window (Core.Client.in_flight client);
  check_bool "a queued request was sent" true
    (List.length (request_targets sent) > n_sent_before)

let test_bucket_update_and_resubmission () =
  let client, _, sent, _, _config = make_client ~n:4 () in
  Core.Client.submit_next client;
  sent := [];
  (* A quorum (f+1 = 2) of matching Bucket_update messages for epoch 1
     triggers adoption and resubmission of the pending request. *)
  let bucket_leaders = Array.make (Core.Config.num_buckets _config) 2 in
  let update src =
    Core.Client.on_message client ~src
      (Proto.Message.Bucket_update { epoch = 1; bucket_leaders })
  in
  update 0;
  check_int "single vote: no resubmission yet" 0 (List.length (request_targets sent));
  update 1;
  let targets = request_targets sent in
  check_bool "pending request resubmitted" true (List.length targets > 0);
  (* The new assignment maps every bucket to node 2; the resubmission
     includes it. *)
  check_bool "sent to the announced owner" true (List.mem 2 targets)

let test_open_loop_rate () =
  let client, engine, sent, _, _ = make_client ~window:1024 () in
  Core.Client.start_open_loop client ~rate:50.0 ~until:(Sim.Time_ns.sec 10);
  Sim.Engine.run ~until:(Sim.Time_ns.sec 10) engine;
  (* ~500 submissions expected; each fans out to up to 3 targets. *)
  let submissions = Core.Client.in_flight client in
  check_bool
    (Printf.sprintf "roughly rate*duration submissions (%d)" submissions)
    true
    (submissions > 350 && submissions < 650);
  check_bool "messages actually sent" true (List.length (request_targets sent) >= submissions)

let () =
  Alcotest.run "client"
    [
      ( "client",
        [
          Alcotest.test_case "submission targets" `Quick test_submission_targets;
          Alcotest.test_case "reply quorum f+1" `Quick test_reply_quorum_f_plus_one;
          Alcotest.test_case "watermark backpressure" `Quick test_window_backpressure;
          Alcotest.test_case "bucket update + resubmission" `Quick
            test_bucket_update_and_resubmission;
          Alcotest.test_case "open loop rate" `Quick test_open_loop_rate;
        ] );
    ]
