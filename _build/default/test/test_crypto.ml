(* Tests for the crypto substrate: SHA-256 against official vectors,
   simulated signatures, threshold signatures, Merkle trees. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* SHA-256: NIST / RFC 6234 test vectors. *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ("a", "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb");
  ]

let test_sha_vectors () =
  List.iter
    (fun (input, expected) -> check_string input expected (Iss_crypto.Sha256.digest_hex input))
    sha_vectors

let test_sha_million_a () =
  (* The classic "one million 'a'" vector. *)
  let ctx = Iss_crypto.Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Iss_crypto.Sha256.update ctx chunk
  done;
  check_string "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Iss_crypto.Sha256.hex (Iss_crypto.Sha256.finalize ctx))

let prop_sha_incremental =
  QCheck.Test.make ~name:"incremental = one-shot" ~count:200
    QCheck.(pair small_string (list small_string))
    (fun (first, rest) ->
      let ctx = Iss_crypto.Sha256.init () in
      Iss_crypto.Sha256.update ctx first;
      List.iter (Iss_crypto.Sha256.update ctx) rest;
      Iss_crypto.Sha256.finalize ctx
      = Iss_crypto.Sha256.digest (String.concat "" (first :: rest)))

let prop_sha_update_sub =
  QCheck.Test.make ~name:"update_sub slices correctly" ~count:100
    QCheck.(string_of_size Gen.(int_range 10 200))
    (fun s ->
      let mid = String.length s / 2 in
      let ctx = Iss_crypto.Sha256.init () in
      Iss_crypto.Sha256.update_sub ctx s ~pos:0 ~len:mid;
      Iss_crypto.Sha256.update_sub ctx s ~pos:mid ~len:(String.length s - mid);
      Iss_crypto.Sha256.finalize ctx = Iss_crypto.Sha256.digest s)

(* ------------------------------------------------------------------ *)
(* Hash helpers *)

let test_hash_basics () =
  let h = Iss_crypto.Hash.of_string "payload" in
  Alcotest.(check int) "raw size" 32 (String.length (Iss_crypto.Hash.raw h));
  check_bool "equal self" true (Iss_crypto.Hash.equal h (Iss_crypto.Hash.of_string "payload"));
  check_bool "different input different hash" false
    (Iss_crypto.Hash.equal h (Iss_crypto.Hash.of_string "payloae"));
  let c1 = Iss_crypto.Hash.combine h h in
  check_bool "combine not identity" false (Iss_crypto.Hash.equal c1 h);
  Alcotest.(check string) "of_raw round trip"
    (Iss_crypto.Hash.to_hex h)
    (Iss_crypto.Hash.to_hex (Iss_crypto.Hash.of_raw (Iss_crypto.Hash.raw h)))

(* ------------------------------------------------------------------ *)
(* Signatures *)

let test_signature_verify () =
  let kp = Iss_crypto.Signature.genkey ~id:42 in
  let s = Iss_crypto.Signature.sign kp "message" in
  check_bool "verifies" true
    (Iss_crypto.Signature.verify (Iss_crypto.Signature.public_of_id 42) "message" s);
  check_bool "wrong message" false
    (Iss_crypto.Signature.verify (Iss_crypto.Signature.public_of_id 42) "other" s);
  check_bool "wrong key" false
    (Iss_crypto.Signature.verify (Iss_crypto.Signature.public_of_id 43) "message" s);
  check_bool "forged rejected" false
    (Iss_crypto.Signature.verify (Iss_crypto.Signature.public_of_id 42) "message"
       (Iss_crypto.Signature.forged ()))

let prop_signature_roundtrip =
  QCheck.Test.make ~name:"sign/verify round trip" ~count:100
    QCheck.(pair small_nat small_string)
    (fun (id, msg) ->
      let kp = Iss_crypto.Signature.genkey ~id in
      Iss_crypto.Signature.verify (Iss_crypto.Signature.public kp) msg
        (Iss_crypto.Signature.sign kp msg))

(* ------------------------------------------------------------------ *)
(* Threshold signatures *)

let test_threshold_combine () =
  let g = Iss_crypto.Threshold.setup ~n:7 ~t:5 in
  let msg = "qc material" in
  let shares = List.init 5 (fun i -> Iss_crypto.Threshold.sign_share g ~signer:i msg) in
  (match Iss_crypto.Threshold.combine g msg shares with
  | Some c -> check_bool "combined verifies" true (Iss_crypto.Threshold.verify g msg c)
  | None -> Alcotest.fail "combine with t shares must succeed");
  (* Too few shares. *)
  check_bool "4 shares fail" true
    (Iss_crypto.Threshold.combine g msg (List.filteri (fun i _ -> i < 4) shares) = None);
  (* Duplicated signer doesn't count twice. *)
  let dup = List.init 5 (fun _ -> Iss_crypto.Threshold.sign_share g ~signer:0 msg) in
  check_bool "duplicate signers fail" true (Iss_crypto.Threshold.combine g msg dup = None);
  (* Shares over a different message don't combine. *)
  let wrong = Iss_crypto.Threshold.sign_share g ~signer:6 "other" in
  check_bool "foreign-message share ignored" true
    (Iss_crypto.Threshold.combine g msg (wrong :: List.filteri (fun i _ -> i < 4) shares)
    = None)

let test_threshold_share_verify () =
  let g = Iss_crypto.Threshold.setup ~n:4 ~t:3 in
  let s = Iss_crypto.Threshold.sign_share g ~signer:2 "m" in
  check_bool "share verifies" true (Iss_crypto.Threshold.verify_share g ~signer:2 "m" s);
  check_bool "wrong signer" false (Iss_crypto.Threshold.verify_share g ~signer:1 "m" s);
  check_bool "wrong msg" false (Iss_crypto.Threshold.verify_share g ~signer:2 "x" s)

let test_threshold_setup_invalid () =
  Alcotest.check_raises "t > n rejected" (Invalid_argument "Threshold.setup: need 0 < t <= n")
    (fun () -> ignore (Iss_crypto.Threshold.setup ~n:3 ~t:4))

(* ------------------------------------------------------------------ *)
(* Merkle trees *)

let leaves_of n = Array.init n (fun i -> Iss_crypto.Hash.of_int i)

let test_merkle_root_sizes () =
  (* Roots differ for different leaf sets; singleton root = the leaf. *)
  let r1 = Iss_crypto.Merkle.root (leaves_of 1) in
  check_bool "singleton root is leaf" true (Iss_crypto.Hash.equal r1 (Iss_crypto.Hash.of_int 0));
  let r5 = Iss_crypto.Merkle.root (leaves_of 5) in
  let r6 = Iss_crypto.Merkle.root (leaves_of 6) in
  check_bool "different trees differ" false (Iss_crypto.Hash.equal r5 r6)

let prop_merkle_proofs =
  QCheck.Test.make ~name:"every inclusion proof verifies" ~count:50
    QCheck.(int_range 1 40)
    (fun n ->
      let leaves = leaves_of n in
      let root = Iss_crypto.Merkle.root leaves in
      List.for_all
        (fun i ->
          let proof = Iss_crypto.Merkle.prove leaves i in
          Iss_crypto.Merkle.verify_proof ~root ~leaf:leaves.(i) ~index:i proof)
        (List.init n (fun i -> i)))

let prop_merkle_proof_rejects_wrong_position =
  QCheck.Test.make ~name:"proof at wrong index rejected" ~count:50
    QCheck.(int_range 2 40)
    (fun n ->
      let leaves = leaves_of n in
      let root = Iss_crypto.Merkle.root leaves in
      let proof = Iss_crypto.Merkle.prove leaves 0 in
      not (Iss_crypto.Merkle.verify_proof ~root ~leaf:leaves.(0) ~index:1 proof))

let test_merkle_tamper () =
  let leaves = leaves_of 8 in
  let root = Iss_crypto.Merkle.root leaves in
  let proof = Iss_crypto.Merkle.prove leaves 3 in
  check_bool "wrong leaf rejected" false
    (Iss_crypto.Merkle.verify_proof ~root ~leaf:(Iss_crypto.Hash.of_int 99) ~index:3 proof);
  let other_root = Iss_crypto.Merkle.root (leaves_of 9) in
  check_bool "wrong root rejected" false
    (Iss_crypto.Merkle.verify_proof ~root:other_root ~leaf:leaves.(3) ~index:3 proof)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha_vectors;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          qc prop_sha_incremental;
          qc prop_sha_update_sub;
        ] );
      ("hash", [ Alcotest.test_case "basics" `Quick test_hash_basics ]);
      ( "signature",
        [ Alcotest.test_case "verify/reject" `Quick test_signature_verify; qc prop_signature_roundtrip ]
      );
      ( "threshold",
        [
          Alcotest.test_case "combine rules" `Quick test_threshold_combine;
          Alcotest.test_case "share verify" `Quick test_threshold_share_verify;
          Alcotest.test_case "invalid setup" `Quick test_threshold_setup_invalid;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "roots" `Quick test_merkle_root_sizes;
          qc prop_merkle_proofs;
          qc prop_merkle_proof_rejects_wrong_position;
          Alcotest.test_case "tamper rejected" `Quick test_merkle_tamper;
        ] );
    ]
