(* Tests for the experiment harness: cluster assembly, workload modeling,
   measurement plumbing, and the Mir-BFT gate. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let quick_run ?(policy = Core.Config.Blacklist) ?(faults = []) ~system ~n ~rate ~duration_s () =
  Runner.Experiment.run ~policy ~faults ~system ~n ~rate ~duration_s ~seed:7L ()

let test_iss_pbft_delivers () =
  let r =
    quick_run ~system:(Runner.Cluster.Iss Core.Config.PBFT) ~n:4 ~rate:2000.0 ~duration_s:20.0
      ()
  in
  check_bool "delivered most of the offered load" true
    (float_of_int r.Runner.Experiment.delivered
    > 0.7 *. float_of_int r.Runner.Experiment.submitted);
  check_bool "latency sane (0.1s .. 20s)" true
    (r.Runner.Experiment.mean_latency_s > 0.1 && r.Runner.Experiment.mean_latency_s < 20.0);
  check_bool "p95 >= mean is not required, but p95 >= p50" true
    (r.Runner.Experiment.p95_latency_s >= r.Runner.Experiment.p50_latency_s)

let test_determinism () =
  let go () =
    Runner.Experiment.run ~system:(Runner.Cluster.Iss Core.Config.PBFT) ~n:4 ~rate:1500.0
      ~duration_s:15.0 ~seed:99L ()
  in
  let a = go () and b = go () in
  check_int "same delivered count" a.Runner.Experiment.delivered b.Runner.Experiment.delivered;
  Alcotest.(check (float 0.0001))
    "same mean latency" a.Runner.Experiment.mean_latency_s b.Runner.Experiment.mean_latency_s

let test_single_leader_below_iss () =
  (* Even at small scale, ISS should at least match the single-leader
     baseline's peak; at n=16 it should clearly win. *)
  let duration_s = 10.0 in
  let iss =
    Runner.Experiment.peak_throughput ~system:(Runner.Cluster.Iss Core.Config.PBFT) ~n:16
      ~duration_s ~seed:3L ()
  in
  let single =
    Runner.Experiment.peak_throughput ~system:(Runner.Cluster.Single Core.Config.PBFT) ~n:16
      ~duration_s ~seed:3L ()
  in
  check_bool
    (Printf.sprintf "ISS (%f) > 2x single leader (%f)" iss.Runner.Experiment.throughput
       single.Runner.Experiment.throughput)
    true
    (iss.Runner.Experiment.throughput > 2.0 *. single.Runner.Experiment.throughput)

let test_crash_fault_injection () =
  let r =
    quick_run
      ~faults:[ Runner.Experiment.Crash_at (1, 0.0) ]
      ~system:(Runner.Cluster.Iss Core.Config.PBFT) ~n:4 ~rate:1000.0 ~duration_s:40.0 ()
  in
  (* The system survives the crash and keeps delivering. *)
  check_bool "delivered despite crash" true (r.Runner.Experiment.delivered > 0);
  check_bool "latency includes the fault recovery" true (r.Runner.Experiment.p95_latency_s > 0.0)

let test_mir_gate () =
  let engine = Sim.Engine.create () in
  let sent = ref [] in
  let gate =
    Mirbft.create ~engine ~n:4 ~id:1
      ~send:(fun ~dst msg -> sent := (dst, msg) :: !sent)
      ~timeout:(Sim.Time_ns.sec 10)
  in
  let released = ref false in
  (* Node 1 is primary of epoch 1: announcing releases itself immediately. *)
  Mirbft.epoch_gate gate ~epoch:1 (fun () -> released := true);
  check_bool "primary releases itself" true !released;
  check_int "announced to the 3 others" 3 (List.length !sent);
  (* Epoch 2's primary is node 2: we wait for the announcement. *)
  let released2 = ref false in
  Mirbft.epoch_gate gate ~epoch:2 (fun () -> released2 := true);
  check_bool "waiting for primary" false !released2;
  ignore
    (Mirbft.on_message gate ~src:2 (Proto.Message.Mir_epoch_change { epoch = 2; primary = 2 }));
  check_bool "released by announcement" true !released2;
  (* Epoch 3's primary never announces: the timeout releases. *)
  let released3 = ref false in
  Mirbft.epoch_gate gate ~epoch:3 (fun () -> released3 := true);
  Sim.Engine.run ~until:(Sim.Time_ns.sec 30) engine;
  check_bool "timeout releases (ungraceful epoch change)" true !released3

let test_mir_rejects_wrong_primary () =
  let engine = Sim.Engine.create () in
  let gate =
    Mirbft.create ~engine ~n:4 ~id:0 ~send:(fun ~dst:_ _ -> ()) ~timeout:(Sim.Time_ns.sec 10)
  in
  let released = ref false in
  Mirbft.epoch_gate gate ~epoch:2 (fun () -> released := true);
  (* Node 3 claims to be primary of epoch 2 (it is not). *)
  ignore
    (Mirbft.on_message gate ~src:3 (Proto.Message.Mir_epoch_change { epoch = 2; primary = 3 }));
  check_bool "forged announcement ignored" false !released

let test_saturation_estimates_positive () =
  List.iter
    (fun system ->
      List.iter
        (fun n ->
          check_bool "estimate positive" true
            (Runner.Experiment.saturation_estimate system ~n > 0.0))
        [ 4; 32; 128 ])
    [
      Runner.Cluster.Iss Core.Config.PBFT;
      Runner.Cluster.Iss Core.Config.HotStuff;
      Runner.Cluster.Iss Core.Config.Raft;
      Runner.Cluster.Single Core.Config.PBFT;
      Runner.Cluster.Mir;
    ]

let test_throughput_series_sums_to_delivered () =
  let r =
    quick_run ~system:(Runner.Cluster.Iss Core.Config.PBFT) ~n:4 ~rate:1000.0 ~duration_s:20.0
      ()
  in
  let sum = Array.fold_left ( +. ) 0.0 r.Runner.Experiment.series in
  Alcotest.(check (float 1.0))
    "series integrates to delivered count"
    (float_of_int r.Runner.Experiment.delivered)
    sum

let () =
  Alcotest.run "runner"
    [
      ( "experiments",
        [
          Alcotest.test_case "ISS-PBFT delivers" `Slow test_iss_pbft_delivers;
          Alcotest.test_case "runs are deterministic" `Slow test_determinism;
          Alcotest.test_case "ISS beats single leader at n=16" `Slow
            test_single_leader_below_iss;
          Alcotest.test_case "crash fault injection" `Slow test_crash_fault_injection;
          Alcotest.test_case "series sums to delivered" `Slow
            test_throughput_series_sums_to_delivered;
          Alcotest.test_case "saturation estimates" `Quick test_saturation_estimates_positive;
        ] );
      ( "mir-gate",
        [
          Alcotest.test_case "gate protocol" `Quick test_mir_gate;
          Alcotest.test_case "forged primary ignored" `Quick test_mir_rejects_wrong_primary;
        ] );
    ]
