(* Unit and property tests for the simulator substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:99L and b = Sim.Rng.create ~seed:99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a) (Sim.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:99L in
  let b = Sim.Rng.split a in
  let x = Sim.Rng.next_int64 a and y = Sim.Rng.next_int64 b in
  check_bool "split streams differ" true (x <> y)

let test_rng_bounds () =
  let rng = Sim.Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 17 in
    check_bool "int in range" true (v >= 0 && v < 17);
    let f = Sim.Rng.float rng 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Sim.Rng.create ~seed:6L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "exponential mean ~3" true (mean > 2.8 && mean < 3.2)

let test_rng_zipf () =
  let rng = Sim.Rng.create ~seed:7L in
  let counts = Array.make 11 0 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.zipf rng ~n:10 ~s:1.1 in
    check_bool "zipf in range" true (v >= 1 && v <= 10);
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "rank 1 most frequent" true (counts.(1) > counts.(2) && counts.(2) > counts.(5))

(* ------------------------------------------------------------------ *)
(* Heap *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let test_heap_peek () =
  let h = Sim.Heap.create ~cmp:compare in
  check_bool "empty peek" true (Sim.Heap.peek h = None);
  Sim.Heap.push h 5;
  Sim.Heap.push h 2;
  Sim.Heap.push h 9;
  check_bool "peek min" true (Sim.Heap.peek h = Some 2);
  check_int "length" 3 (Sim.Heap.length h)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 20) (fun () -> order := 2 :: !order));
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> order := 1 :: !order));
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 30) (fun () -> order := 3 :: !order));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_engine_fifo_same_time () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> order := i :: !order))
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> fired := true) in
  Sim.Engine.cancel e id;
  Sim.Engine.run e;
  check_bool "cancelled timer silent" false !fired

let test_engine_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> incr fired));
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 50) (fun () -> incr fired));
  Sim.Engine.run ~until:(Sim.Time_ns.ms 20) e;
  check_int "only first event" 1 !fired;
  check_int "clock at limit" (Sim.Time_ns.ms 20) (Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "second event after resume" 2 !fired

let test_engine_nested_schedule () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 5) (fun () ->
         log := `A :: !log;
         ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 5) (fun () -> log := `B :: !log))));
  Sim.Engine.run e;
  check_int "both fired" 2 (List.length !log);
  check_int "final clock" (Sim.Time_ns.ms 10) (Sim.Engine.now e)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_histogram () =
  let h = Sim.Metrics.Histogram.create () in
  for i = 1 to 100 do
    Sim.Metrics.Histogram.add h (float_of_int i)
  done;
  check_int "count" 100 (Sim.Metrics.Histogram.count h);
  Alcotest.(check (float 0.01)) "mean" 50.5 (Sim.Metrics.Histogram.mean h);
  Alcotest.(check (float 1.5)) "p50" 50.0 (Sim.Metrics.Histogram.percentile h 50.0);
  Alcotest.(check (float 1.5)) "p95" 95.0 (Sim.Metrics.Histogram.percentile h 95.0);
  Alcotest.(check (float 0.01)) "min" 1.0 (Sim.Metrics.Histogram.min h);
  Alcotest.(check (float 0.01)) "max" 100.0 (Sim.Metrics.Histogram.max h)

let test_series () =
  let s = Sim.Metrics.Series.create ~bin:(Sim.Time_ns.sec 1) in
  Sim.Metrics.Series.add s ~at:(Sim.Time_ns.ms 500) 3.0;
  Sim.Metrics.Series.add s ~at:(Sim.Time_ns.ms 800) 2.0;
  Sim.Metrics.Series.add s ~at:(Sim.Time_ns.ms 2500) 7.0;
  let bins = Sim.Metrics.Series.bins s ~until:(Sim.Time_ns.sec 4) in
  Alcotest.(check (array (float 0.01))) "bins" [| 5.0; 0.0; 7.0; 0.0 |] bins

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_symmetry () =
  let n = Array.length Sim.Topology.datacenters in
  check_int "16 datacenters" 16 n;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_int
        (Printf.sprintf "latency %d-%d symmetric" i j)
        (Sim.Topology.latency i j) (Sim.Topology.latency j i)
    done
  done

let test_topology_sane_values () =
  (* London <-> Frankfurt should be a few ms; Sydney <-> London ~ 100+ ms. *)
  let name_idx name =
    let rec go i =
      if Sim.Topology.datacenters.(i).Sim.Topology.name = name then i else go (i + 1)
    in
    go 0
  in
  let lon = name_idx "London" and fra = name_idx "Frankfurt" and syd = name_idx "Sydney" in
  let ms x = Sim.Time_ns.to_ms_f x in
  check_bool "London-Frankfurt < 10ms" true (ms (Sim.Topology.latency lon fra) < 10.0);
  check_bool "London-Sydney > 80ms" true (ms (Sim.Topology.latency lon syd) > 80.0);
  check_bool "intra-dc small" true (ms (Sim.Topology.latency 0 0) < 1.0)

let test_topology_assignment () =
  let a = Sim.Topology.assign_uniform ~n:4 in
  check_int "4 nodes, 4 distinct dcs" 4 (List.length (List.sort_uniq compare (Array.to_list a)));
  let a = Sim.Topology.assign_uniform ~n:32 in
  check_int "32 nodes round-robin" 32 (Array.length a);
  Array.iteri (fun i dc -> check_int (Printf.sprintf "node %d" i) (i mod 16) dc) a

(* ------------------------------------------------------------------ *)
(* Network *)

let make_net () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:1L in
  let config = { Sim.Network.default_config with jitter = 0 } in
  let net = Sim.Network.create ~config e ~rng () in
  (e, net)

let test_network_delivery () =
  let e, net = make_net () in
  let got = ref [] in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:15
    ~handler:(fun ~src ~size msg -> got := (src, size, msg) :: !got);
  Sim.Network.send net ~src:0 ~dst:1 ~size:1000 "hello";
  Sim.Engine.run e;
  (match !got with
  | [ (0, 1000, "hello") ] -> ()
  | _ -> Alcotest.fail "expected one delivery");
  (* Dallas -> Sydney one way is > 50 ms. *)
  check_bool "propagation delay applied" true (Sim.Engine.now e > Sim.Time_ns.ms 50)

let test_network_bandwidth_serialization () =
  let e, net = make_net () in
  let arrivals = ref [] in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> arrivals := Sim.Engine.now e :: !arrivals);
  (* 10 x 1.25 MB messages at 1 Gbps = 10 ms serialization each: arrivals
     must be spaced by ~10 ms because the sender NIC serializes them. *)
  for _ = 1 to 10 do
    Sim.Network.send net ~src:0 ~dst:1 ~size:1_250_000 ()
  done;
  Sim.Engine.run e;
  let ts = List.rev !arrivals in
  check_int "all arrived" 10 (List.length ts);
  let rec gaps = function a :: (b :: _ as rest) -> (b - a) :: gaps rest | _ -> [] in
  List.iter
    (fun gap ->
      check_bool "NIC spacing ~10ms" true
        (gap > Sim.Time_ns.ms 9 && gap < Sim.Time_ns.ms 12))
    (gaps ts)

let test_network_crash_and_partition () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:1
    ~handler:(fun ~src:_ ~size:_ _ -> incr got);
  Sim.Network.crash net 1;
  Sim.Network.send net ~src:0 ~dst:1 ~size:100 ();
  Sim.Engine.run e;
  check_int "crashed endpoint receives nothing" 0 !got;
  Sim.Network.recover net 1;
  Sim.Network.set_partition net (Some (fun id -> id));
  Sim.Network.send net ~src:0 ~dst:1 ~size:100 ();
  Sim.Engine.run e;
  check_int "partitioned pair drops" 0 !got;
  Sim.Network.set_partition net None;
  Sim.Network.send net ~src:0 ~dst:1 ~size:100 ();
  Sim.Engine.run e;
  check_int "healed partition delivers" 1 !got

let test_network_drop_probability () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:1
    ~handler:(fun ~src:_ ~size:_ _ -> incr got);
  Sim.Network.set_drop_probability net 0.5;
  for _ = 1 to 1000 do
    Sim.Network.send net ~src:0 ~dst:1 ~size:10 ()
  done;
  Sim.Engine.run e;
  check_bool "about half dropped" true (!got > 350 && !got < 650)

let test_network_charge () =
  let e, net = make_net () in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  (* 1.25 MB at 1 Gbps = 10 ms. *)
  let d1 = Sim.Network.charge net ~endpoint:0 ~dir:`Tx ~peer:Sim.Network.Node ~bytes:1_250_000 in
  check_bool "first charge ~10ms" true (d1 > Sim.Time_ns.ms 9 && d1 < Sim.Time_ns.ms 11);
  let d2 = Sim.Network.charge net ~endpoint:0 ~dir:`Tx ~peer:Sim.Network.Node ~bytes:1_250_000 in
  check_bool "charges accumulate" true (d2 > Sim.Time_ns.ms 19);
  (* The client-facing NIC is independent. *)
  let d3 =
    Sim.Network.charge net ~endpoint:0 ~dir:`Tx ~peer:Sim.Network.Client ~bytes:1_250_000
  in
  check_bool "separate NIC unaffected" true (d3 < Sim.Time_ns.ms 11);
  ignore e

(* ------------------------------------------------------------------ *)
(* Trace *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_trace_capture () =
  let e = Sim.Engine.create () in
  let (), captured =
    Sim.Trace.with_capture (fun () ->
        Sim.Trace.set_level Sim.Trace.Info;
        Sim.Trace.emit e Sim.Trace.Info "hello %d" 42;
        Sim.Trace.emit e Sim.Trace.Debug "hidden %s" "debug")
  in
  check_bool "info captured" true (contains ~needle:"hello 42" captured);
  check_bool "below-level suppressed" false (contains ~needle:"hidden" captured)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf;
        ] );
      ("heap", [ qc prop_heap_sorts; Alcotest.test_case "peek/length" `Quick test_heap_peek ]);
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO at equal time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "series" `Quick test_series;
        ] );
      ( "topology",
        [
          Alcotest.test_case "symmetry" `Quick test_topology_symmetry;
          Alcotest.test_case "sane values" `Quick test_topology_sane_values;
          Alcotest.test_case "assignment" `Quick test_topology_assignment;
        ] );
      ("trace", [ Alcotest.test_case "capture and levels" `Quick test_trace_capture ]);
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "bandwidth serialization" `Quick test_network_bandwidth_serialization;
          Alcotest.test_case "crash and partition" `Quick test_network_crash_and_partition;
          Alcotest.test_case "drop probability" `Quick test_network_drop_probability;
          Alcotest.test_case "charge" `Quick test_network_charge;
        ] );
    ]
