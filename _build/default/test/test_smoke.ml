(* End-to-end smoke test: a 4-node ISS-PBFT cluster over the simulated WAN
   orders requests submitted by modeled clients. *)

let factory_for (config : Core.Config.t) =
  match config.Core.Config.protocol with
  | Core.Config.PBFT -> Pbft.Pbft_orderer.factory
  | Core.Config.HotStuff -> Hotstuff.Hotstuff_orderer.factory
  | Core.Config.Raft -> Raft.Raft_orderer.factory

let build_cluster ~config ~seed =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let net = Sim.Network.create engine ~rng () in
  let n = config.Core.Config.n in
  let placement = Sim.Topology.assign_uniform ~n in
  let delivered = ref [] in
  let hooks =
    {
      Core.Node.default_hooks with
      on_deliver =
        Some
          (fun node d -> if Core.Node.id node = 0 then delivered := d :: !delivered);
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine
          ~send:(fun ~dst msg ->
            Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
          ~orderer_factory:(factory_for config) ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;
  (engine, net, nodes, delivered)

let test_orders_requests config () =
  let engine, _net, nodes, delivered = build_cluster ~config ~seed:42L in
  Array.iter Core.Node.start nodes;
  (* Submit 100 requests from 10 clients directly to every node (modeled
     client broadcast). *)
  for c = 0 to 9 do
    for ts = 0 to 9 do
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms (10 * ts)) (fun () ->
             let r =
               Proto.Request.make ~client:(1000 + c) ~ts
                 ~submitted_at:(Sim.Engine.now engine) ()
             in
             Array.iter (fun node -> Core.Node.submit node r) nodes))
    done
  done;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 120) engine;
  let count = List.length !delivered in
  Alcotest.(check int) "all 100 requests delivered at node 0" 100 count;
  (* No duplicates: all delivered ids distinct. *)
  let ids =
    List.map (fun (d : Core.Log.delivery) -> Proto.Request.id_key d.request.Proto.Request.id)
      !delivered
  in
  Alcotest.(check int) "no duplicate deliveries" 100 (List.length (List.sort_uniq compare ids))

let test_agreement_across_nodes () =
  let config = Core.Config.pbft_default ~n:4 in
  let engine, _net, nodes, _ = build_cluster ~config ~seed:7L in
  Array.iter Core.Node.start nodes;
  for c = 0 to 4 do
    for ts = 0 to 19 do
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms (5 * ts)) (fun () ->
             let r =
               Proto.Request.make ~client:(2000 + c) ~ts
                 ~submitted_at:(Sim.Engine.now engine) ()
             in
             Array.iter (fun node -> Core.Node.submit node r) nodes))
    done
  done;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) engine;
  (* Compare the common committed prefix across nodes (SMR2 agreement). *)
  let log0 = Core.Node.log nodes.(0) in
  let upto = Core.Log.first_undelivered log0 in
  Alcotest.(check bool) "node 0 made progress" true (upto > 0);
  Array.iter
    (fun node ->
      let log = Core.Node.log node in
      for sn = 0 to min upto (Core.Log.first_undelivered log) - 1 do
        let d p = Iss_crypto.Hash.to_hex (Proto.Proposal.digest p) in
        match (Core.Log.get log0 ~sn, Core.Log.get log ~sn) with
        | Some a, Some b -> Alcotest.(check string) (Printf.sprintf "sn %d" sn) (d a) (d b)
        | _ -> Alcotest.fail "missing entry in common prefix"
      done)
    nodes

let () =
  Alcotest.run "smoke"
    [
      ( "iss-pbft",
        [
          Alcotest.test_case "orders requests end-to-end" `Quick
            (test_orders_requests (Core.Config.pbft_default ~n:4));
          Alcotest.test_case "agreement across nodes" `Quick test_agreement_across_nodes;
        ] );
      ( "iss-hotstuff",
        [
          Alcotest.test_case "orders requests end-to-end" `Quick
            (test_orders_requests (Core.Config.hotstuff_default ~n:4));
        ] );
      ( "iss-raft",
        [
          Alcotest.test_case "orders requests end-to-end" `Quick
            (test_orders_requests (Core.Config.raft_default ~n:4));
        ] );
    ]
