(* Raw simulator-engine throughput microbenchmark.

   Measures events/sec of the DES core (`Sim.Engine` + `Sim.Network`) under
   two synthetic loads, independent of any protocol logic:

   - timer-heavy: a population of self-rescheduling timers with heavy
     cancel churn and a sprinkle of far-future timers, the shape of
     protocol timeouts (batch/epoch/view-change timers, most of which are
     cancelled before firing);
   - message-heavy: a forwarding mesh over the WAN topology plus a periodic
     all-peers broadcast, the shape of the NIC serialization/delivery path
     (two engine events per message).

   `dune exec bench/engine_bench.exe` prints both mixes;
   `-- --json DIR` additionally writes DIR/BENCH_engine.json;
   `-- --quick` runs a CI-sized load.

   Unlike the figure baselines, events/sec here is a *host* measurement:
   compare runs on the same machine (the committed baseline pins the
   reference container's trajectory, not a portable constant).  The
   simulated workload itself is deterministic: `sim_events` and
   `final_pending` are diff-stable. *)

module Engine = Sim.Engine
module Time_ns = Sim.Time_ns

type row = {
  name : string;
  events : int;
  wall_s : float;
  pending_end : int;
}

let drain_events engine ~target =
  let t0 = Unix.gettimeofday () in
  while Engine.events_executed engine < target && Engine.step engine do
    ()
  done;
  Unix.gettimeofday () -. t0

(* ------------------------------------------------------------------ *)

let timer_mix ~target =
  let engine = Engine.create () in
  let rng = Sim.Rng.create ~seed:7L in
  (* Paper-scale pending population: n=128 with a large client pool keeps
     O(100k) timers in flight (retransmission timers, batch timeouts,
     per-instance view-change timers). *)
  let population = 100_000 in
  (* Cancel churn, the retransmission-timer pattern: each delivery acts as a
     cumulative ack — it cancels the retransmission timers of the acked
     window (still live: retransmission timeouts are long, acks are fast)
     and re-arms them for the next in-flight window.  Protocol timers are
     overwhelmingly cancelled, not fired. *)
  let window = 2 in
  let ring = Array.make 32_768 None in
  let cursor = ref 0 in
  let noop () = () in
  let pick_delay () =
    let r = Sim.Rng.int rng 100 in
    if r = 0 then Time_ns.sec (20 + Sim.Rng.int rng 20) (* far future *)
    else if r < 70 then Time_ns.us (10 + Sim.Rng.int rng 2000) (* near *)
    else Time_ns.ms (1 + Sim.Rng.int rng 200)
  in
  (* One shared closure for the whole population (the per-firing state lives
     in [ring]/[cursor]), armed through the fire-and-forget [post] path: the
     benchmark measures the engine, not the harness's closure allocation. *)
  let rec body () =
    for _ = 1 to window do
      (match ring.(!cursor) with
      | Some id -> Engine.cancel engine id
      | None -> ());
      ring.(!cursor) <-
        Some
          (Engine.schedule engine
             ~delay:(Time_ns.ms (300 + Sim.Rng.int rng 700))
             noop);
      cursor := (!cursor + 1) mod Array.length ring
    done;
    Engine.post engine ~delay:(pick_delay ()) body
  in
  for _ = 1 to population do
    Engine.post engine ~delay:(pick_delay ()) body
  done;
  let wall_s = drain_events engine ~target in
  {
    name = "timer-heavy";
    events = Engine.events_executed engine;
    wall_s;
    pending_end = Engine.pending engine;
  }

(* ------------------------------------------------------------------ *)

let message_mix ~target =
  let engine = Engine.create () in
  let rng = Sim.Rng.create ~seed:11L in
  let net = Sim.Network.create engine ~rng () in
  let n = 32 in
  for id = 0 to n - 1 do
    Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node
      ~datacenter:(id mod Array.length Sim.Topology.datacenters)
      ~handler:(fun ~src:_ ~size:_ hops ->
        if hops > 0 then
          let size = 128 + (64 * (hops mod 8)) in
          Sim.Network.send net ~src:id ~dst:((id + 7) mod n) ~size (hops - 1))
  done;
  (* Steady forwarding population: each delivery forwards once. *)
  for m = 0 to 2047 do
    Sim.Network.send net ~src:(m mod n) ~dst:((m + 7) mod n) ~size:256 max_int
  done;
  (* Periodic protocol-style broadcast: node 0 multicasts to all peers. *)
  let dsts = List.init (n - 1) (fun i -> i + 1) in
  let rec broadcast () =
    Sim.Network.multicast net ~src:0 ~dsts ~size:1024 0;
    ignore (Engine.schedule engine ~delay:(Time_ns.ms 5) broadcast)
  in
  broadcast ();
  let wall_s = drain_events engine ~target in
  {
    name = "message-heavy";
    events = Engine.events_executed engine;
    wall_s;
    pending_end = Engine.pending engine;
  }

(* ------------------------------------------------------------------ *)

let row_json r =
  Obs.Jsonx.Obj
    [
      ("name", Obs.Jsonx.String r.name);
      ("events", Obs.Jsonx.Int r.events);
      ("wall_s", Obs.Jsonx.Float r.wall_s);
      ( "events_per_sec",
        Obs.Jsonx.Float (float_of_int r.events /. Float.max 1e-9 r.wall_s) );
      ("final_pending", Obs.Jsonx.Int r.pending_end);
    ]

let () =
  let quick = ref false and json_dir = ref None and scale = ref 1.0 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: dir :: rest ->
        json_dir := Some dir;
        parse rest
    | "--scale" :: s :: rest ->
        scale := float_of_string s;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: engine_bench [--quick] [--scale X] [--json DIR] (got %S)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base = if !quick then 150_000 else 4_000_000 in
  let target = int_of_float (float_of_int base *. !scale) in
  let rows = [ timer_mix ~target; message_mix ~target ] in
  List.iter
    (fun r ->
      Printf.printf "%-14s %9d events in %6.2fs  =  %10.0f events/s  (pending at end: %d)\n%!"
        r.name r.events r.wall_s
        (float_of_int r.events /. Float.max 1e-9 r.wall_s)
        r.pending_end)
    rows;
  match !json_dir with
  | None -> ()
  | Some dir ->
      let rec mkdirs d =
        if not (Sys.file_exists d) then begin
          let parent = Filename.dirname d in
          if parent <> d then mkdirs parent;
          try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        end
      in
      mkdirs dir;
      let json =
        Obs.Jsonx.Obj
          [
            ("bench", Obs.Jsonx.String "engine");
            ("host_dependent", Obs.Jsonx.Bool true);
            ("quick", Obs.Jsonx.Bool !quick);
            ("mixes", Obs.Jsonx.List (List.map row_json rows));
          ]
      in
      let file = Filename.concat dir "BENCH_engine.json" in
      let oc = open_out file in
      output_string oc (Obs.Jsonx.to_string json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "[wrote %s]\n%!" file
