(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6).  `dune exec bench/main.exe` runs everything;
   `dune exec bench/main.exe -- fig5 fig7` runs a subset.

   Durations are scaled-down (simulated seconds) relative to the paper's
   wall-clock experiments so the whole suite completes in tens of minutes on
   one core; set ISS_BENCH_SCALE (e.g. 2.0) to lengthen runs.  Shapes, not
   absolute testbed numbers, are the reproduction target — see
   EXPERIMENTS.md. *)

module E = Runner.Experiment
module C = Runner.Cluster

let scale =
  match Sys.getenv_opt "ISS_BENCH_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let dur s = s *. scale

let seed = 42L

(* All benchmark runs disable strict per-request validation: with honest
   leaders the checks never fire, results are bit-identical (verified), and
   runs are ~8x faster.  Tests exercise strict mode. *)
let relax c = { c with Core.Config.strict_validation = false }

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let print_result r = Format.printf "%a@." E.pp_result r

(* --json DIR: each figure additionally writes DIR/BENCH_<figure>.json with
   one row per measurement run, so plots are reproducible without scraping
   the text output.  Rows accumulate here while a figure runs; the driver
   loop flushes them per figure. *)
let json_dir : string option ref = ref None
let json_rows : Obs.Jsonx.t list ref = ref []

(* A result row, optionally tagged with figure-specific context (fault name,
   policy, straggler count, ...). *)
let emit ?(extra = []) ?series r =
  if !json_dir <> None then
    let row =
      match E.result_to_json ?series r with
      | Obs.Jsonx.Obj fields -> Obs.Jsonx.Obj (fields @ extra)
      | j -> j
    in
    json_rows := row :: !json_rows

let flush_figure_json name =
  match (!json_dir, List.rev !json_rows) with
  | None, _ | _, [] -> json_rows := []
  | Some dir, rows ->
      json_rows := [];
      let file = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
      let json =
        Obs.Jsonx.Obj [ ("figure", Obs.Jsonx.String name); ("rows", Obs.Jsonx.List rows) ]
      in
      let oc = open_out file in
      output_string oc (Obs.Jsonx.to_string json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "[wrote %s]\n%!" file

let print_series label (series : float array) =
  Printf.printf "%s\n" label;
  Array.iteri (fun i v -> Printf.printf "  t=%4ds  %10.0f req/s\n" i v) series;
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: ISS configuration parameters used in the evaluation";
  List.iter
    (fun proto ->
      let config = Core.Config.default_for proto ~n:32 in
      Format.printf "--- %s ---@.%a@.@." (Core.Config.protocol_name proto) Core.Config.pp
        config)
    [ Core.Config.PBFT; Core.Config.HotStuff; Core.Config.Raft ]

(* Fig. 5: peak throughput vs number of nodes, all seven systems. *)
let fig5 () =
  header
    "Figure 5: Scalability of single-leader protocols, their ISS counterparts, and Mir-BFT \
     (peak throughput, req/s)";
  let node_counts = [ 4; 16; 32; 128 ] in
  let systems =
    [
      C.Single Core.Config.PBFT;
      C.Single Core.Config.HotStuff;
      C.Single Core.Config.Raft;
      C.Iss Core.Config.PBFT;
      C.Iss Core.Config.HotStuff;
      C.Iss Core.Config.Raft;
      C.Mir;
    ]
  in
  let peaks = Hashtbl.create 64 in
  List.iter
    (fun system ->
      (* Mir-BFT only needs the endpoints of the curve. *)
      let node_counts =
        match system with C.Mir -> [ 4; 128 ] | C.Single _ | C.Iss _ -> node_counts
      in
      List.iter
        (fun n ->
          (* Larger deployments need longer runs: batch intervals stretch
             with n (fixed total batch rate). *)
          let duration_s = dur (if n >= 128 then 16.0 else 10.0 +. (float_of_int n /. 8.0)) in
          let r = E.peak_throughput ~system ~n ~duration_s ~seed () in
          Hashtbl.replace peaks (C.system_name system, n) r.E.throughput;
          emit ~extra:[ ("peak_throughput_req_s", Obs.Jsonx.Float r.E.throughput) ] r;
          print_result r)
        node_counts)
    systems;
  Printf.printf "\nImprovement of ISS over the single-leader baseline at n=128:\n";
  List.iter
    (fun proto ->
      let name = Core.Config.protocol_name proto in
      match
        (Hashtbl.find_opt peaks ("ISS-" ^ name, 128), Hashtbl.find_opt peaks (name, 128))
      with
      | Some iss, Some single when single > 0.0 ->
          Printf.printf "  %-9s %6.1fx   (paper: %s)\n" name (iss /. single)
            (match proto with
            | Core.Config.PBFT -> "37x"
            | Core.Config.HotStuff -> "56x"
            | Core.Config.Raft -> "55x")
      | _ -> ())
    [ Core.Config.PBFT; Core.Config.HotStuff; Core.Config.Raft ];
  Printf.printf "%!"

(* Fig. 6: latency vs throughput for increasing load. *)
let fig6 () =
  header
    "Figure 6: Latency over throughput for increasing load (ISS-PBFT / ISS-HotStuff / \
     ISS-Raft)";
  List.iter
    (fun proto ->
      let system = C.Iss proto in
      List.iter
        (fun n ->
          let fractions = [ 0.5; 0.9 ] in
          List.iter
            (fun frac ->
              let peak = E.saturation_estimate system ~n /. 1.2 in
              let rate = frac *. peak in
              let duration_s = dur (10.0 +. (float_of_int n /. 8.0)) in
              let r = E.run ~tweak:relax ~system ~n ~rate ~duration_s ~seed () in
              emit ~extra:[ ("load_fraction", Obs.Jsonx.Float frac) ] r;
              print_result r)
            fractions)
        [ 4; 32 ])
    [ Core.Config.PBFT; Core.Config.HotStuff; Core.Config.Raft ]

(* §6.4 fault experiments all use ISS-PBFT on 32 nodes at 16.4 kreq/s. *)
let fault_n = 32
let fault_rate = 16_400.0

(* Fig. 7: leader policy impact under one crash (epoch start / epoch end). *)
let fig7 () =
  header
    "Figure 7: Impact of leader selection policies on mean and p95 latency under one crash \
     fault (ISS-PBFT, n=32, 16.4 kreq/s)";
  let policies =
    [
      ("SIMPLE", Core.Config.Simple);
      ("BACKOFF", Core.Config.Backoff);
      ("BLACKLIST", Core.Config.Blacklist);
    ]
  in
  List.iter
    (fun (fault_name, fault) ->
      List.iter
        (fun (pname, policy) ->
          let r =
            E.run ~tweak:relax ~policy ~faults:[ fault ] ~system:(C.Iss Core.Config.PBFT) ~n:fault_n
              ~rate:fault_rate ~duration_s:(dur 35.0) ~seed ()
          in
          emit
            ~extra:
              [ ("fault", Obs.Jsonx.String fault_name); ("policy", Obs.Jsonx.String pname) ]
            r;
          Printf.printf "%-12s %-10s mean=%6.2fs  p95=%6.2fs  tput=%8.0f req/s\n%!" fault_name
            pname r.E.mean_latency_s r.E.p95_latency_s r.E.throughput)
        policies)
    [ ("epoch-start", E.Crash_at (1, 0.0)); ("epoch-end", E.Crash_epoch_end 1) ]

(* Fig. 8: crash impact vs experiment duration (latency converges to
   fault-free as BLACKLIST excises the crashed leader). *)
let fig8 () =
  header
    "Figure 8: Crash-fault impact on mean and p95 latency for increasing experiment duration \
     (BLACKLIST, ISS-PBFT, n=32)";
  List.iter
    (fun duration_s ->
      List.iter
        (fun (fault_name, faults) ->
          let r =
            E.run ~tweak:relax ~faults ~system:(C.Iss Core.Config.PBFT) ~n:fault_n ~rate:fault_rate
              ~duration_s:(dur duration_s) ~seed ()
          in
          emit ~extra:[ ("fault", Obs.Jsonx.String fault_name) ] r;
          Printf.printf "duration=%4.0fs %-12s mean=%6.2fs  p95=%6.2fs\n%!" duration_s
            fault_name r.E.mean_latency_s r.E.p95_latency_s)
        [
          ("fault-free", []);
          ("epoch-start", [ E.Crash_at (1, 0.0) ]);
          ("epoch-end", [ E.Crash_epoch_end 1 ]);
        ])
    [ 20.0; 45.0 ]

(* Fig. 9: throughput over time with one crash (1 s bins). *)
let fig9 () =
  header "Figure 9: ISS-PBFT throughput over time with one crash fault (BLACKLIST, n=32)";
  List.iter
    (fun (fault_name, faults) ->
      let r =
        E.run ~tweak:relax ~faults ~system:(C.Iss Core.Config.PBFT) ~n:fault_n ~rate:fault_rate
          ~duration_s:(dur 45.0) ~seed ()
      in
      emit ~series:true ~extra:[ ("fault", Obs.Jsonx.String fault_name) ] r;
      print_series (Printf.sprintf "--- crash at %s ---" fault_name) r.E.series)
    [ ("epoch start", [ E.Crash_at (1, 0.0) ]); ("epoch end", [ E.Crash_epoch_end 1 ]) ]

(* Fig. 10: Mir-BFT throughput over time with one epoch-start crash; the
   crashed node periodically becomes epoch primary and stalls everyone. *)
let fig10 () =
  header "Figure 10: Mir-BFT throughput over time with one epoch-start crash fault (n=32)";
  (* Crash node 3: it becomes Mir epoch primary at epochs 3, 35, 67, ... so
     the recurring full-timeout stall appears early in the run. *)
  let r =
    E.run ~tweak:relax ~faults:[ E.Crash_at (3, 0.0) ] ~system:C.Mir ~n:fault_n ~rate:fault_rate
      ~duration_s:(dur 75.0) ~seed ()
  in
  emit ~series:true ~extra:[ ("fault", Obs.Jsonx.String "epoch-start-crash") ] r;
  print_series "--- Mir-BFT, 1 epoch-start crash ---" r.E.series;
  Printf.printf
    "(zero-throughput periods at epoch changes; full 10 s stalls when the crashed node is \
     epoch primary)\n\
     %!"

(* Fig. 11: latency over throughput with 1..10 Byzantine stragglers. *)
let fig11 () =
  header
    "Figure 11: ISS-PBFT latency over throughput with increasing Byzantine stragglers \
     (BLACKLIST, n=32)";
  List.iter
    (fun k ->
      let faults = List.init k (fun i -> E.Straggler (1 + i)) in
      let r =
        E.run ~tweak:relax ~faults ~system:(C.Iss Core.Config.PBFT) ~n:fault_n ~rate:fault_rate
          ~duration_s:(dur 40.0) ~seed ()
      in
      emit ~extra:[ ("stragglers", Obs.Jsonx.Int k) ] r;
      Printf.printf "stragglers=%2d  tput=%8.0f req/s  mean=%6.2fs  p95=%6.2fs\n%!" k
        r.E.throughput r.E.mean_latency_s r.E.p95_latency_s)
    [ 0; 1; 4; 10 ]

(* Fig. 12: throughput over time with one straggler (5 s spikes). *)
let fig12 () =
  header "Figure 12: ISS-PBFT throughput over time with one Byzantine straggler (n=32)";
  let r =
    E.run ~tweak:relax ~faults:[ E.Straggler 1 ] ~system:(C.Iss Core.Config.PBFT) ~n:fault_n
      ~rate:fault_rate ~duration_s:(dur 45.0) ~seed ()
  in
  emit ~series:true ~extra:[ ("stragglers", Obs.Jsonx.Int 1) ] r;
  print_series "--- 1 straggler ---" r.E.series;
  Printf.printf
    "(spikes every ~5 s: correct leaders' batches deliver once the straggler's batch \
     commits)\n\
     %!"

(* Overload sweep: offered load from 0.25x to 2x the saturation ceiling of
   a throttled flow-controlled ISS-PBFT, locating the knee and checking
   goodput holds past it (EXPERIMENTS.md "Overload sweep").  Writes the
   BENCH_overload.json figure in the same format as `iss_sim bench
   --json`. *)
let overload () =
  header
    "Overload sweep: goodput across the saturation knee (throttled ISS-PBFT n=4, flow \
     control on)";
  let sw = E.overload_sweep ~seed () in
  List.iter
    (fun (p : E.sweep_point) ->
      Format.printf "  %.2fx  %a@." p.E.fraction E.pp_result p.E.point)
    sw.E.sweep_points;
  Printf.printf "ceiling %.0f req/s; peak goodput %.0f req/s; knee at %.2fx\n%!" sw.E.ceiling
    sw.E.peak_goodput sw.E.knee_fraction;
  match !json_dir with
  | None -> ()
  | Some dir ->
      let file = Filename.concat dir "BENCH_overload.json" in
      let oc = open_out file in
      output_string oc (Obs.Jsonx.to_string (E.sweep_to_json sw));
      output_char oc '\n';
      close_out oc;
      Printf.printf "[wrote %s]\n%!" file

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out.  Not part of the
   default run (invoke with `bench/main.exe ablations`). *)

let ablations () =
  header
    "Ablation A: Raft batch timeout vs WAN round trip (§6.2 — a timeout below the RTT wastes \
     bandwidth on re-proposals)";
  List.iter
    (fun timeout_ms ->
      let tweak c =
        relax { c with Core.Config.min_batch_timeout = Sim.Time_ns.ms timeout_ms }
      in
      let r =
        E.run ~tweak ~system:(C.Iss Core.Config.Raft) ~n:16 ~rate:40_000.0 ~duration_s:(dur 20.0)
          ~seed ()
      in
      Printf.printf
        "timeout=%5dms  tput=%8.0f req/s  mean lat=%5.2fs  node-to-node traffic=%6.1f MB\n%!"
        timeout_ms r.E.throughput r.E.mean_latency_s
        (float_of_int r.E.net_bytes /. 1e6))
    [ 100; 600 ];
  header
    "Ablation B: PBFT total batch rate (§6.2 — the fixed rate caps message complexity; raising \
     it raises the ceiling and the traffic)";
  List.iter
    (fun rate_bps ->
      let tweak c = relax { c with Core.Config.batch_rate = Some rate_bps } in
      let r =
        E.peak_throughput ~tweak ~system:(C.Iss Core.Config.PBFT) ~n:16 ~duration_s:(dur 15.0)
          ~seed ()
      in
      Printf.printf
        "batch rate=%3.0f b/s  peak tput=%8.0f req/s  mean lat=%5.2fs  messages=%d\n%!" rate_bps
        r.E.throughput r.E.mean_latency_s r.E.net_messages)
    [ 16.0; 64.0 ];
  header
    "Ablation C: buckets per leader (§2.4 — more buckets smooth the leader-change rotation; \
     few buckets skew load)";
  List.iter
    (fun buckets ->
      let tweak c = relax { c with Core.Config.buckets_per_leader = buckets } in
      let r =
        E.run ~tweak ~system:(C.Iss Core.Config.PBFT) ~n:16 ~rate:30_000.0
          ~duration_s:(dur 15.0) ~seed ()
      in
      Printf.printf "buckets/leader=%3d  tput=%8.0f req/s  mean lat=%5.2fs  p95=%5.2fs\n%!"
        buckets r.E.throughput r.E.mean_latency_s r.E.p95_latency_s)
    [ 1; 16 ];
  header
    "Ablation D: leader-set size under SIMPLE vs epoch length (the min-segment floor, §6.2)";
  List.iter
    (fun min_seg ->
      let tweak c = relax { c with Core.Config.min_segment_size = min_seg } in
      let r =
        E.run ~tweak ~system:(C.Iss Core.Config.PBFT) ~n:32 ~rate:30_000.0
          ~duration_s:(dur 20.0) ~seed ()
      in
      Printf.printf "min segment=%3d  tput=%8.0f req/s  mean lat=%5.2fs\n%!" min_seg
        r.E.throughput r.E.mean_latency_s)
    [ 2; 16 ];
  header
    "Ablation E: dynamic straggler detection (§6.4.2 future work) — STRAGGLER-AWARE vs \
     BLACKLIST under one Byzantine straggler (n=32, 16.4 kreq/s)";
  List.iter
    (fun (pname, policy) ->
      let r =
        E.run ~tweak:relax ~policy ~faults:[ E.Straggler 1 ] ~system:(C.Iss Core.Config.PBFT)
          ~n:32 ~rate:16_400.0 ~duration_s:(dur 60.0) ~seed ()
      in
      Printf.printf "%-16s tput=%8.0f req/s  mean lat=%6.2fs  p95=%6.2fs\n%!" pname
        r.E.throughput r.E.mean_latency_s r.E.p95_latency_s)
    [ ("BLACKLIST", Core.Config.Blacklist); ("STRAGGLER-AWARE", Core.Config.Straggler_aware) ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks for the hot data structures. *)

let micro () =
  header "Micro-benchmarks (Bechamel): hot primitives";
  let open Bechamel in
  let open Toolkit in
  let sha_input = String.make 1024 'x' in
  let digests = Array.init 256 (fun i -> Iss_crypto.Hash.of_int i) in
  let requests =
    Array.init 4096 (fun i ->
        Proto.Request.make ~client:(i mod 64) ~ts:(i / 64) ~submitted_at:0 ())
  in
  let tests =
    [
      Test.make ~name:"sha256-1KiB"
        (Staged.stage (fun () -> Iss_crypto.Sha256.digest sha_input));
      Test.make ~name:"merkle-root-256"
        (Staged.stage (fun () -> Iss_crypto.Merkle.root digests));
      Test.make ~name:"batch-make-4096"
        (Staged.stage (fun () -> Proto.Batch.make requests));
      Test.make ~name:"bucket-queue-add+cut-2048"
        (Staged.stage (fun () ->
             let q = Core.Bucket_queue.create () in
             for i = 0 to 2047 do
               ignore (Core.Bucket_queue.add q ~seq:i requests.(i))
             done;
             ignore (Core.Bucket_queue.cut q ~max:2048)));
      Test.make ~name:"bucket-assignment-n128"
        (Staged.stage (fun () ->
             Core.Bucket_assignment.assign ~n:128 ~num_buckets:2048 ~epoch:7
               ~leaders:(Array.init 100 (fun i -> i))));
      Test.make ~name:"heap-push-pop-1k"
        (Staged.stage (fun () ->
             let h = Sim.Heap.create ~cmp:compare in
             for i = 0 to 999 do
               Sim.Heap.push h ((i * 7919) mod 1000)
             done;
             while not (Sim.Heap.is_empty h) do
               ignore (Sim.Heap.pop h)
             done));
    ]
  in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        analysis)
    tests

(* ------------------------------------------------------------------ *)

let all_figures =
  [
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("overload", overload);
    ("ablations", ablations);
    ("micro", micro);
  ]

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let () =
  let rec parse_args names = function
    | [] -> List.rev names
    | "--json" :: dir :: rest ->
        json_dir := Some dir;
        parse_args names rest
    | [ "--json" ] ->
        prerr_endline "--json requires a directory argument";
        exit 2
    | name :: rest -> parse_args (name :: names) rest
  in
  let requested =
    match parse_args [] (List.tl (Array.to_list Sys.argv)) with
    | _ :: _ as names -> names
    | [] ->
        (* Importance order: if a run is cut short, the headline figures are
           already in the output. *)
        [
          "table1"; "fig5"; "fig7"; "fig9"; "fig11"; "fig12"; "fig10"; "fig8"; "overload";
          "micro"; "fig6"; "ablations";
        ]
  in
  (match !json_dir with None -> () | Some dir -> mkdirs dir);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name all_figures with
      | Some f ->
          let t = Unix.gettimeofday () in
          f ();
          flush_figure_json name;
          Printf.printf "[%s done in %.0fs]\n%!" name (Unix.gettimeofday () -. t)
      | None ->
          Printf.printf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst all_figures)))
    requested;
  Printf.printf "\nTotal bench time: %.0fs\n%!" (Unix.gettimeofday () -. t0)
