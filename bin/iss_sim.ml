(* Command-line front end for the ISS simulator.

   Examples:
     iss_sim run --system iss-pbft -n 32 --rate 16400 --duration 60
     iss_sim run --system single-raft -n 16 --rate 4000 --crash 3@10
     iss_sim peak --system iss-hotstuff -n 128 --duration 20
     iss_sim topology *)

open Cmdliner

(* Poor-man's sampling profiler: ISS_PROFILE=1 samples the call stack on a
   virtual-time interval timer and dumps the hottest frames at exit.  Only
   for development; OCaml 5 dropped gprof support. *)
let setup_profiler () =
  if Sys.getenv_opt "ISS_PROFILE" <> None then begin
    let samples : (string, int) Hashtbl.t = Hashtbl.create 1024 in
    let total = ref 0 in
    Sys.set_signal Sys.sigvtalrm
      (Sys.Signal_handle
         (fun _ ->
           incr total;
           let stack = Printexc.get_callstack 8 in
           let slots = Printexc.backtrace_slots stack in
           match slots with
           | Some slots ->
               Array.iteri
                 (fun depth slot ->
                   if depth = 1 then
                     match Printexc.Slot.location slot with
                     | Some loc ->
                         let key = Printf.sprintf "%s:%d" loc.Printexc.filename loc.Printexc.line_number in
                         Hashtbl.replace samples key
                           (1 + Option.value ~default:0 (Hashtbl.find_opt samples key))
                     | None -> ())
                 slots
           | None -> ()));
    ignore
      (Unix.setitimer Unix.ITIMER_VIRTUAL { Unix.it_interval = 0.001; it_value = 0.001 });
    at_exit (fun () ->
        let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) samples [] in
        let all = List.sort (fun (_, a) (_, b) -> compare b a) all in
        Printf.eprintf "--- profile: %d samples ---\n" !total;
        List.iteri (fun i (k, v) -> if i < 30 then Printf.eprintf "%8d  %s\n" v k) all)
  end

let system_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "iss-pbft" -> Ok (Runner.Cluster.Iss Core.Config.PBFT)
    | "iss-hotstuff" -> Ok (Runner.Cluster.Iss Core.Config.HotStuff)
    | "iss-raft" -> Ok (Runner.Cluster.Iss Core.Config.Raft)
    | "single-pbft" | "pbft" -> Ok (Runner.Cluster.Single Core.Config.PBFT)
    | "single-hotstuff" | "hotstuff" -> Ok (Runner.Cluster.Single Core.Config.HotStuff)
    | "single-raft" | "raft" -> Ok (Runner.Cluster.Single Core.Config.Raft)
    | "mir" | "mir-bft" | "mirbft" -> Ok Runner.Cluster.Mir
    | other -> Error (`Msg (Printf.sprintf "unknown system %S" other))
  in
  let print fmt s = Format.pp_print_string fmt (Runner.Cluster.system_name s) in
  Arg.conv (parse, print)

let policy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "simple" -> Ok Core.Config.Simple
    | "backoff" -> Ok Core.Config.Backoff
    | "blacklist" -> Ok Core.Config.Blacklist
    | "straggler-aware" | "straggler_aware" -> Ok Core.Config.Straggler_aware
    | other -> Error (`Msg (Printf.sprintf "unknown policy %S" other))
  in
  let print fmt p = Format.pp_print_string fmt (Core.Config.policy_name p) in
  Arg.conv (parse, print)

let fault_conv =
  (* "3@10" = crash node 3 at t=10s; "3@end" = epoch-end crash;
     "straggler:3" = node 3 is a Byzantine straggler. *)
  let parse s =
    match String.split_on_char ':' s with
    | [ "straggler"; node ] -> (
        match int_of_string_opt node with
        | Some node -> Ok (Runner.Experiment.Straggler node)
        | None -> Error (`Msg "straggler:<node>"))
    | _ -> (
        match String.split_on_char '@' s with
        | [ node; "end" ] -> (
            match int_of_string_opt node with
            | Some node -> Ok (Runner.Experiment.Crash_epoch_end node)
            | None -> Error (`Msg "crash spec: <node>@end"))
        | [ node; at ] -> (
            match (int_of_string_opt node, float_of_string_opt at) with
            | Some node, Some at -> Ok (Runner.Experiment.Crash_at (node, at))
            | _ -> Error (`Msg "crash spec: <node>@<seconds>"))
        | _ -> Error (`Msg "fault spec: <node>@<seconds>, <node>@end or straggler:<node>"))
  in
  let print fmt = function
    | Runner.Experiment.Crash_at (node, at) -> Format.fprintf fmt "%d@%g" node at
    | Runner.Experiment.Crash_epoch_end node -> Format.fprintf fmt "%d@end" node
    | Runner.Experiment.Straggler node -> Format.fprintf fmt "straggler:%d" node
  in
  Arg.conv (parse, print)

let system_arg =
  Arg.(
    required
    & opt (some system_conv) None
    & info [ "system"; "s" ] ~docv:"SYSTEM"
        ~doc:
          "System to run: iss-pbft, iss-hotstuff, iss-raft, single-pbft, single-hotstuff, \
           single-raft, or mir.")

let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let duration_arg =
  Arg.(value & opt float 30.0 & info [ "duration"; "d" ] ~doc:"Simulated seconds.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let policy_arg =
  Arg.(
    value
    & opt (some policy_conv) None
    & info [ "policy" ] ~doc:"Leader selection policy (simple, backoff, blacklist).")

let series_arg =
  Arg.(value & flag & info [ "series" ] ~doc:"Print the 1-second throughput series.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write sampled request-lifecycle spans as JSON lines to $(docv) (one event per \
           line: req, phase, node, t) and print the per-phase latency breakdown.")

let trace_sample_arg =
  Arg.(
    value & opt int 1
    & info [ "trace-sample" ] ~docv:"K"
        ~doc:"Trace every K-th request (deterministic selection; 1 traces all).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run summary plus an end-of-run metric-registry snapshot (per-node \
           gauges, cluster counters, latency histogram) as JSON to $(docv).")

(* Observability wiring: a tracer must share the cluster's virtual clock, so
   when either output is requested we pre-create the engine and hand it to
   the experiment.  With neither flag the run is exactly the uninstrumented
   one (no engine override, no tracer, no registry). *)
let obs_setup ~trace_out ~metrics_out ~trace_sample =
  if trace_out = None && metrics_out = None then (None, None, None)
  else begin
    let engine = Sim.Engine.create () in
    let tracer =
      match trace_out with
      | None -> None
      | Some _ -> Some (Obs.Tracer.create ~sample:trace_sample ~engine ())
    in
    let registry =
      match metrics_out with None -> None | Some _ -> Some (Obs.Registry.create ())
    in
    (Some engine, tracer, registry)
  end

let obs_finish ~trace_out ~metrics_out ~engine ~tracer ~registry r =
  (match (trace_out, tracer) with
  | Some file, Some tr ->
      let oc = open_out file in
      Obs.Tracer.write_jsonl tr oc;
      close_out oc;
      Format.printf "%a@." Obs.Tracer.pp_breakdown tr;
      Format.printf "trace: %d events (%d dropped) -> %s@." (Obs.Tracer.num_events tr)
        (Obs.Tracer.dropped tr) file
  | _ -> ());
  match (metrics_out, registry, engine) with
  | Some file, Some reg, Some engine ->
      let json =
        Obs.Jsonx.Obj
          [
            ("result", Runner.Experiment.result_to_json ~series:true r);
            ("metrics", Obs.Registry.snapshot reg ~at:(Sim.Engine.now engine));
          ]
      in
      let oc = open_out file in
      output_string oc (Obs.Jsonx.to_string json);
      output_char oc '\n';
      close_out oc;
      Format.printf "metrics: %d series -> %s@." (Obs.Registry.num_metrics reg) file
  | _ -> ()

let print_result ~series r =
  Format.printf "%a@." Runner.Experiment.pp_result r;
  if series then begin
    Format.printf "throughput series (req/s per 1s bin):@.";
    Array.iteri (fun i v -> Format.printf "  t=%3ds  %10.0f@." i v) r.Runner.Experiment.series
  end

let workload_conv =
  (* Overload shapes with canonical parameters; a spec like
     "flash-crowd:10,4,5" or "hot-bucket:1.2" overrides them. *)
  let parse s =
    let name, params =
      match String.index_opt s ':' with
      | None -> (s, [])
      | Some i ->
          ( String.sub s 0 i,
            String.split_on_char ','
              (String.sub s (i + 1) (String.length s - i - 1))
            |> List.filter_map float_of_string_opt )
    in
    match (String.lowercase_ascii name, params) with
    | "steady", _ -> Ok Runner.Workload.Steady
    | "flash-crowd", [ at_s; factor; len_s ] ->
        Ok (Runner.Workload.Flash_crowd { at_s; factor; len_s })
    | "flash-crowd", [] ->
        Ok (Runner.Workload.Flash_crowd { at_s = 10.0; factor = 4.0; len_s = 5.0 })
    | "hot-bucket", [ skew ] -> Ok (Runner.Workload.Hot_bucket { skew })
    | "hot-bucket", [] -> Ok (Runner.Workload.Hot_bucket { skew = 1.2 })
    | "ramp", [ peak_factor ] -> Ok (Runner.Workload.Ramp { peak_factor })
    | "ramp", [] -> Ok (Runner.Workload.Ramp { peak_factor = 2.0 })
    | _ ->
        Error
          (`Msg
            "workload: steady, flash-crowd[:at,factor,len], hot-bucket[:skew] or \
             ramp[:peak]")
  in
  let print fmt w = Format.pp_print_string fmt (Runner.Workload.shape_name w) in
  Arg.conv (parse, print)

let shed_policy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "reject-new" | "reject_new" -> Ok Core.Config.Reject_new
    | "drop-oldest" | "drop_oldest" -> Ok Core.Config.Drop_oldest
    | other -> Error (`Msg (Printf.sprintf "unknown shed policy %S" other))
  in
  let print fmt p = Format.pp_print_string fmt (Core.Config.shed_policy_name p) in
  Arg.conv (parse, print)

let run_cmd =
  let rate_arg =
    Arg.(value & opt float 1000.0 & info [ "rate"; "r" ] ~doc:"Offered load, requests/s.")
  in
  let offered_load_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "offered-load" ] ~docv:"X"
          ~doc:
            "Offered load as a fraction of the overload experiments' analytical ceiling \
             (2048 req/s; overrides --rate, 2.0 = 2x overload).  Implies the throttled \
             flow-control configuration the overload sweep uses, so fractions here line \
             up with the sweep's — and with the knee in BENCH_overload.json.")
  in
  let workload_arg =
    Arg.(
      value
      & opt (some workload_conv) None
      & info [ "workload" ] ~docv:"SHAPE"
          ~doc:
            "Offered-load shape: steady (default), flash-crowd[:at,factor,len], \
             hot-bucket[:skew], or ramp[:peak].  Non-steady shapes enable client \
             resubmission.")
  in
  let flow_control_arg =
    Arg.(
      value & flag
      & info [ "flow-control" ]
          ~doc:"Enable node-side admission control and pushback (off by default).")
  in
  let bucket_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bucket-cap" ] ~docv:"REQS"
          ~doc:"Bucket-queue capacity when --flow-control is on (default 4096).")
  in
  let shed_policy_arg =
    Arg.(
      value
      & opt (some shed_policy_conv) None
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:"Shed policy when a bucket is full: reject-new (default) or drop-oldest.")
  in
  let retry_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "retry-budget" ] ~docv:"K"
          ~doc:
            "Modeled clients abandon a request after K resubmissions (default: retry \
             forever).  Implies client resubmission.")
  in
  let faults_arg =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault"; "crash" ] ~docv:"FAULT"
          ~doc:"Fault to inject: <node>@<seconds>, <node>@end, or straggler:<node>.")
  in
  let relaxed_arg =
    Arg.(
      value & flag
      & info [ "relaxed" ]
          ~doc:"Disable strict per-request validation (fast large benchmarks).")
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            (Printf.sprintf
               "Named chaos scenario to run under the invariant checker: %s.  \"chaos\" \
                generates a randomized benign schedule from --seed; \"byz\" a randomized \
                active-malice window (BFT protocols only, like the byz-* scenarios).  The \
                run is extended past the schedule's heal time and fails (exit 1) if any \
                invariant breaks."
               (String.concat ", " Runner.Faults.scenario_names)))
  in
  let go system n rate duration seed policy faults scenario series relaxed trace_out
      trace_sample metrics_out offered_load workload flow_control bucket_cap shed_policy
      retry_budget =
    let tweak c =
      let c =
        if Option.is_some offered_load then Runner.Experiment.overload_tweak () c else c
      in
      let c = { c with Core.Config.strict_validation = not relaxed } in
      if not (flow_control || Option.is_some offered_load) then c
      else
        {
          c with
          Core.Config.flow_control = true;
          bucket_capacity =
            Option.value bucket_cap ~default:c.Core.Config.bucket_capacity;
          shed_policy = Option.value shed_policy ~default:c.Core.Config.shed_policy;
        }
    in
    let rate =
      match offered_load with
      | None -> rate
      | Some x -> x *. Runner.Experiment.overload_ceiling
    in
    (* Overload shapes and retry budgets only make sense with the
       resubmission sweeper running. *)
    let resubmit =
      if
        Option.is_some retry_budget
        || (match workload with Some Runner.Workload.Steady | None -> false | Some _ -> true)
      then Some true
      else None
    in
    let seed = Int64.of_int seed in
    let engine, tracer, registry = obs_setup ~trace_out ~metrics_out ~trace_sample in
    let scenario =
      match scenario with
      | None -> None
      | Some "chaos" -> Some (Runner.Faults.random ~seed ~n ~duration_s:duration)
      | Some "byz" -> Some (Runner.Faults.random_byzantine ~seed ~n ~duration_s:duration)
      | Some name -> (
          match Runner.Faults.named ~n name with
          | Ok sc -> Some sc
          | Error e ->
              Format.eprintf "%s@." e;
              exit 2)
    in
    Option.iter (fun sc -> Format.printf "%a@." Runner.Faults.pp sc) scenario;
    match
      Runner.Experiment.run ?engine ?policy ~tweak ~faults ?scenario ?tracer ?registry
        ?shape:workload ?retry_budget ?resubmit ~system ~n ~rate ~duration_s:duration
        ~seed ()
    with
    | r ->
        print_result ~series r;
        obs_finish ~trace_out ~metrics_out ~engine ~tracer ~registry r;
        if Option.is_some scenario then Format.printf "invariants: OK@."
    | exception Runner.Cluster.Invariant_violation report ->
        Format.eprintf "INVARIANT VIOLATION@.%s@." report;
        exit 1
    | exception Invalid_argument msg ->
        (* e.g. a byz-* scenario requested for Raft *)
        Format.eprintf "%s@." msg;
        exit 2
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one measurement experiment.")
    Term.(
      const go $ system_arg $ n_arg $ rate_arg $ duration_arg $ seed_arg $ policy_arg
      $ faults_arg $ scenario_arg $ series_arg $ relaxed_arg $ trace_out_arg
      $ trace_sample_arg $ metrics_out_arg $ offered_load_arg $ workload_arg
      $ flow_control_arg $ bucket_cap_arg $ shed_policy_arg $ retry_budget_arg)

let peak_cmd =
  let go system n duration seed series trace_out trace_sample metrics_out =
    let engine, tracer, registry = obs_setup ~trace_out ~metrics_out ~trace_sample in
    let r =
      Runner.Experiment.peak_throughput ?engine ?tracer ?registry ~system ~n
        ~duration_s:duration ~seed:(Int64.of_int seed) ()
    in
    print_result ~series r;
    obs_finish ~trace_out ~metrics_out ~engine ~tracer ~registry r
  in
  Cmd.v
    (Cmd.info "peak" ~doc:"Measure peak throughput (over-saturated run, Fig. 5 metric).")
    Term.(
      const go $ system_arg $ n_arg $ duration_arg $ seed_arg $ series_arg $ trace_out_arg
      $ trace_sample_arg $ metrics_out_arg)

let topology_cmd =
  let go () =
    let dcs = Sim.Topology.datacenters in
    Format.printf "%d datacenters; one-way latency matrix (ms):@." (Array.length dcs);
    Format.printf "%14s" "";
    Array.iter (fun (d : Sim.Topology.datacenter) -> Format.printf "%9s" (String.sub d.name 0 (min 8 (String.length d.name)))) dcs;
    Format.printf "@.";
    Array.iteri
      (fun i (d : Sim.Topology.datacenter) ->
        Format.printf "%14s" d.name;
        Array.iteri
          (fun j _ -> Format.printf "%9.1f" (Sim.Time_ns.to_ms_f (Sim.Topology.latency i j)))
          dcs;
        Format.printf "@.")
      dcs
  in
  Cmd.v (Cmd.info "topology" ~doc:"Print the modeled WAN latency matrix.") Term.(const go $ const ())

(* ------------------------------------------------------------------ *)
(* Differential conformance fuzzing (DESIGN.md §9) *)

let protocol_of_name s =
  match String.lowercase_ascii s with
  | "pbft" -> Some Core.Config.PBFT
  | "hotstuff" -> Some Core.Config.HotStuff
  | "raft" -> Some Core.Config.Raft
  | _ -> None

let conform_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of fuzzed seeds to check (seed, seed+1, ...).")
  in
  let start_arg =
    Arg.(value & opt int 1 & info [ "start" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"On failure, greedily minimize the scenario before reporting it.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a committed repro (scenario + protocol) or a bare scenario JSON file \
             instead of fuzzing.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Write a self-contained repro JSON for every failure into $(docv).")
  in
  let fail_and_exit ~shrink ~save f =
    let f = if shrink then Conform.Shrink.minimize_failure f else f in
    Format.eprintf "CONFORMANCE FAILURE@.%a@." Conform.Harness.pp_failure f;
    Format.eprintf "scenario: %s@." (Conform.Scenario.to_string f.Conform.Harness.scenario);
    (match save with
    | Some dir ->
        let file = Conform.Harness.save_repro f ~dir in
        Format.eprintf "repro written to %s@." file
    | None -> ());
    exit 1
  in
  let replay ~shrink ~save file =
    let contents = In_channel.with_open_text file In_channel.input_all in
    match Obs.Jsonx.of_string contents with
    | Error e ->
        Format.eprintf "%s: %s@." file e;
        exit 2
    | Ok json -> (
        let scenario_json =
          match Obs.Jsonx.member "scenario" json with Some s -> s | None -> json
        in
        match Conform.Scenario.of_json scenario_json with
        | Error e ->
            Format.eprintf "%s: %s@." file e;
            exit 2
        | Ok sc -> (
            let protocols =
              match Obs.Jsonx.member "protocol" json with
              | Some (Obs.Jsonx.String p) -> (
                  match protocol_of_name p with
                  | Some p -> [ p ]
                  | None ->
                      Format.eprintf "%s: unknown protocol %S@." file p;
                      exit 2)
              | _ -> Conform.Harness.protocols
            in
            Format.printf "replaying %a against %s@." Conform.Scenario.pp sc
              (String.concat ", " (List.map Core.Config.protocol_name protocols));
            (* Behaviour fingerprint check: print each protocol's SHA-256
               fingerprint and, when the repro file carries a committed
               "fingerprints" field, verify bit-identity against it. *)
            let pinned p =
              match Obs.Jsonx.member "fingerprints" json with
              | Some (Obs.Jsonx.Obj kvs) -> (
                  match List.assoc_opt (Core.Config.protocol_name p) kvs with
                  | Some (Obs.Jsonx.String fp) -> Some fp
                  | _ -> None)
              | _ -> None
            in
            let rec go = function
              | [] -> Format.printf "conformance: OK@."
              | p :: rest -> (
                  match Conform.Harness.check_protocol sc p with
                  | Error f -> fail_and_exit ~shrink ~save f
                  | Ok () -> (
                      match Conform.Harness.run_protocol ~instrumented:false sc p with
                      | Error e ->
                          Format.eprintf "%s: %s@." (Core.Config.protocol_name p) e;
                          exit 1
                      | Ok r -> (
                          Format.printf "%s fingerprint %s@."
                            (Core.Config.protocol_name p) r.Conform.Harness.fingerprint;
                          match pinned p with
                          | Some expected when expected <> r.Conform.Harness.fingerprint ->
                              Format.eprintf
                                "%s: fingerprint drifted from committed value %s@."
                                (Core.Config.protocol_name p) expected;
                              exit 1
                          | Some _ -> Format.printf "  matches committed fingerprint@."; go rest
                          | None -> go rest)))
            in
            go protocols))
  in
  let go seeds start shrink replay_file save =
    match replay_file with
    | Some file -> replay ~shrink ~save file
    | None ->
        for k = start to start + seeds - 1 do
          let sc = Conform.Scenario.of_seed (Int64.of_int k) in
          Format.printf "%a ...@?" Conform.Scenario.pp sc;
          (match Conform.Harness.check_scenario sc with
          | Ok () -> Format.printf " OK@."
          | Error f ->
              Format.printf " FAIL@.";
              fail_and_exit ~shrink ~save f)
        done;
        Format.printf "conformance: %d seeds passed (x %d protocols, instrumented + bare)@."
          seeds
          (List.length Conform.Harness.protocols)
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Differential conformance fuzzing: run fuzzed schedules against all three ISS \
          instantiations and check them against an idealized atomic-broadcast reference \
          model, with determinism and instrumented/bare bit-identity asserted per seed.")
    Term.(const go $ seeds_arg $ start_arg $ shrink_arg $ replay_arg $ save_arg)

let bench_cmd =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI smoke variant: 3 sweep points x 12 s instead of 7 x 25 s.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"DIR" ~doc:"Write BENCH_overload.json into $(docv).")
  in
  let go quick json seed n =
    let sw = Runner.Experiment.overload_sweep ~quick ~seed:(Int64.of_int seed) ~n () in
    Format.printf
      "overload sweep: throttled iss-pbft n=%d, ceiling %.0f req/s, flow control on@." n
      sw.Runner.Experiment.ceiling;
    List.iter
      (fun (p : Runner.Experiment.sweep_point) ->
        Format.printf "  %.2fx  %a@." p.fraction Runner.Experiment.pp_result p.point)
      sw.Runner.Experiment.sweep_points;
    Format.printf "peak goodput %.0f req/s; knee at %.2fx ceiling@."
      sw.Runner.Experiment.peak_goodput sw.Runner.Experiment.knee_fraction;
    match json with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let file = Filename.concat dir "BENCH_overload.json" in
        let oc = open_out file in
        output_string oc (Obs.Jsonx.to_string (Runner.Experiment.sweep_to_json sw));
        output_char oc '\n';
        close_out oc;
        Format.printf "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Offered-load sweep across the saturation knee of a throttled flow-controlled \
          ISS-PBFT; emits the BENCH_overload.json figure.")
    Term.(const go $ quick_arg $ json_arg $ seed_arg $ n_arg)

let config_cmd =
  let go system n =
    let config =
      match system with
      | Runner.Cluster.Iss p -> Core.Config.default_for p ~n
      | Runner.Cluster.Single p ->
          { (Core.Config.default_for p ~n) with Core.Config.leader_policy = Core.Config.Fixed [ 0 ] }
      | Runner.Cluster.Mir -> Core.Config.pbft_default ~n
    in
    Format.printf "%a@." Core.Config.pp config
  in
  Cmd.v (Cmd.info "config" ~doc:"Print the configuration a system would run with.")
    Term.(const go $ system_arg $ n_arg)

let () =
  setup_profiler ();
  let info = Cmd.info "iss_sim" ~doc:"ISS (Insanely Scalable SMR) simulator." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; peak_cmd; bench_cmd; conform_cmd; topology_cmd; config_cmd ]))
