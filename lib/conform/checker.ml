(* The differential conformance checker (DESIGN.md §9).

   Consumes the raw per-node delivery stream plus the submitted workload and
   checks the observed behaviour against the reference model of an idealized
   atomic broadcast:

   - agreement / total order: every node that delivers sequence number [sn]
     delivers the same batch with the same first request sequence number,
     and each node's delivered [sn]s are strictly increasing;
   - no fabrication: every delivered request was submitted;
   - exactly-once: no node delivers a request twice, and no request is
     ordered at two different log positions;
   - Eq. (2) numbering: request sequence numbers chain exactly across the
     observed log positions, starting at 0.  (Positions holding ⊥ or an
     empty keep-alive batch deliver nothing and are never observed; they
     carry zero requests, so they are transparent to the chain.)
   - completeness: every submitted request is ordered and reaches its reply
     quorum, and each client's delivered timestamps form the full
     contiguous range it submitted;
   - watermark window closure: a request with timestamp [t] can only be
     ordered after timestamp [t - window] of the same client (§3.7's
     client watermark windows, checked globally post hoc).

   The checker is deliberately independent of [Cluster]'s online invariant
   checker: it re-derives every property from the observer streams alone, so
   the two implementations cross-validate each other. *)

type entry = {
  e_digest : Iss_crypto.Hash.t;
  e_frs : int;  (* first request sequence number (Eq. 2 cumulative count) *)
  e_len : int;
  mutable e_nodes : int;  (* how many nodes delivered this sn *)
}

type stats = {
  sns : int;  (* distinct log positions delivered somewhere *)
  requests : int;  (* distinct requests ordered *)
  quorum_requests : int;  (* requests whose position reached the reply quorum *)
  per_node_delivered : int array;  (* requests delivered by each node *)
  shed : int;  (* flow-control sheds observed, all correct nodes *)
  gave_up : int;  (* requests whose client exhausted its retry budget *)
}

type t = {
  n : int;
  reply_quorum : int;
  window : int;
  submitted : (int, Proto.Request.t) Hashtbl.t;  (* id_key -> request *)
  global : (int, entry) Hashtbl.t;  (* sn -> first-observed content *)
  req_sn : (int, int) Hashtbl.t;  (* id_key -> sn of global appearance *)
  last_sn : int array;  (* per node, -1 before any delivery *)
  last_frs_end : int array;  (* per node: frs + len of the last delivery *)
  per_node_seen : (int, unit) Hashtbl.t array;
  delivered_counts : int array;
  byzantine : bool array;  (* invariants quantify over correct nodes only *)
  shed_counts : int array;  (* flow-control sheds per node *)
  gave_up : (int, unit) Hashtbl.t;  (* id_key of abandoned requests *)
  mutable max_sn : int;
  mutable violation : string option;
}

let create ~n ~reply_quorum ~window =
  {
    n;
    reply_quorum;
    window;
    submitted = Hashtbl.create 4096;
    global = Hashtbl.create 4096;
    req_sn = Hashtbl.create 4096;
    last_sn = Array.make n (-1);
    last_frs_end = Array.make n 0;
    per_node_seen = Array.init n (fun _ -> Hashtbl.create 4096);
    delivered_counts = Array.make n 0;
    byzantine = Array.make n false;
    shed_counts = Array.make n 0;
    gave_up = Hashtbl.create 64;
    max_sn = -1;
    violation = None;
  }

let set_byzantine t node = t.byzantine.(node) <- true

let fail t fmt = Printf.ksprintf (fun msg -> if t.violation = None then t.violation <- Some msg) fmt

let note_submitted t (r : Proto.Request.t) =
  Hashtbl.replace t.submitted (Proto.Request.id_key r.Proto.Request.id) r

let note_shed t ~node (r : Proto.Request.t) =
  if not t.byzantine.(node) then begin
    t.shed_counts.(node) <- t.shed_counts.(node) + 1;
    (* A node that already delivered this request holds it in its dedup
       state: a later copy must be absorbed as a duplicate, never counted
       against the bucket and shed. *)
    if Hashtbl.mem t.per_node_seen.(node) (Proto.Request.id_key r.Proto.Request.id) then
      fail t "node %d shed request (client %d, ts %d) it had already delivered" node
        r.id.Proto.Request.client r.id.Proto.Request.ts
  end

let note_gave_up t (r : Proto.Request.t) =
  Hashtbl.replace t.gave_up (Proto.Request.id_key r.Proto.Request.id) ()

let note_delivery t ~node ~sn ~first_request_sn batch =
  if t.violation = None then
    if t.byzantine.(node) then begin
      (* A Byzantine node's local log is outside the specification: keep its
         progress counters (they feed the fingerprint, so instrumented and
         bare runs still compare bit-exactly) but quantify every invariant
         over correct nodes only, and never let its deliveries seed the
         first-observed baseline for a position. *)
      let len = Proto.Batch.length batch in
      if sn > t.last_sn.(node) then t.last_sn.(node) <- sn;
      t.last_frs_end.(node) <- first_request_sn + len;
      t.delivered_counts.(node) <- t.delivered_counts.(node) + len
    end
    else begin
    let len = Proto.Batch.length batch in
    (* Per-node total order: strictly increasing delivery positions.  (Gaps
       are legal: a checkpoint jump skips positions covered by the adopted
       snapshot.) *)
    if sn <= t.last_sn.(node) then
      fail t "node %d delivered sn %d after sn %d (out of order)" node sn t.last_sn.(node);
    (* Eq. (2) per-node continuity across adjacent positions. *)
    if sn = t.last_sn.(node) + 1 && t.last_sn.(node) >= 0
       && first_request_sn <> t.last_frs_end.(node)
    then
      fail t "node %d: sn %d numbers requests from %d, expected %d (Eq. 2 discontinuity)"
        node sn first_request_sn t.last_frs_end.(node);
    t.last_sn.(node) <- sn;
    t.last_frs_end.(node) <- first_request_sn + len;
    t.delivered_counts.(node) <- t.delivered_counts.(node) + len;
    if sn > t.max_sn then t.max_sn <- sn;
    (* Cross-node agreement at this position. *)
    let digest = Proto.Proposal.digest (Proto.Proposal.Batch batch) in
    (match Hashtbl.find_opt t.global sn with
    | Some e ->
        e.e_nodes <- e.e_nodes + 1;
        if not (Iss_crypto.Hash.equal e.e_digest digest) then
          fail t "node %d delivered a different batch at sn %d (%s vs %s)" node sn
            (Iss_crypto.Hash.short digest) (Iss_crypto.Hash.short e.e_digest);
        if e.e_frs <> first_request_sn then
          fail t "node %d numbered sn %d from %d, another node used %d" node sn
            first_request_sn e.e_frs
    | None ->
        Hashtbl.replace t.global sn { e_digest = digest; e_frs = first_request_sn; e_len = len; e_nodes = 1 };
        (* First global appearance: record where each request is ordered. *)
        Proto.Batch.iter
          (fun (r : Proto.Request.t) ->
            let key = Proto.Request.id_key r.Proto.Request.id in
            match Hashtbl.find_opt t.req_sn key with
            | Some sn0 ->
                fail t "request (client %d, ts %d) ordered at both sn %d and sn %d"
                  r.id.Proto.Request.client r.id.Proto.Request.ts sn0 sn
            | None -> Hashtbl.replace t.req_sn key sn)
          batch);
    (* No fabrication + per-node exactly-once. *)
    let seen = t.per_node_seen.(node) in
    Proto.Batch.iter
      (fun (r : Proto.Request.t) ->
        let key = Proto.Request.id_key r.Proto.Request.id in
        if not (Hashtbl.mem t.submitted key) then
          fail t "node %d delivered request (client %d, ts %d) that was never submitted" node
            r.id.Proto.Request.client r.id.Proto.Request.ts;
        if Hashtbl.mem seen key then
          fail t "node %d delivered request (client %d, ts %d) twice" node
            r.id.Proto.Request.client r.id.Proto.Request.ts;
        Hashtbl.replace seen key ())
      batch
  end

(* ------------------------------------------------------------------ *)
(* End-of-run structural checks *)

let check_log_structure t =
  (* Gaps between observed positions are legal — ⊥ entries and empty
     keep-alive batches deliver nothing, so they never reach the observer —
     but they carry zero requests, so Eq. (2) numbering must chain exactly
     across the observed positions, starting at 0. *)
  if t.max_sn >= 0 then begin
    let sns = Hashtbl.fold (fun sn _ acc -> sn :: acc) t.global [] in
    let sns = List.sort compare sns in
    let expected = ref 0 in
    List.iter
      (fun sn ->
        let e = Hashtbl.find t.global sn in
        if e.e_frs <> !expected then
          fail t "sn %d numbers requests from %d, expected %d (Eq. 2 discontinuity)" sn e.e_frs
            !expected;
        expected := e.e_frs + e.e_len)
      sns
  end

let check_liveness t =
  let missing = ref 0 and unquorate = ref 0 and example = ref None in
  Hashtbl.iter
    (fun key (r : Proto.Request.t) ->
      if not (Hashtbl.mem t.gave_up key) then
      match Hashtbl.find_opt t.req_sn key with
      | None ->
          incr missing;
          if !example = None then example := Some r
      | Some sn -> (
          match Hashtbl.find_opt t.global sn with
          | Some e when e.e_nodes >= t.reply_quorum -> ()
          | _ ->
              incr unquorate;
              if !example = None then example := Some r))
    t.submitted;
  if !missing > 0 || !unquorate > 0 then
    let r = Option.get !example in
    fail t "%d submitted requests never ordered, %d short of the reply quorum of %d (e.g. client %d ts %d)"
      !missing !unquorate t.reply_quorum r.id.Proto.Request.client r.id.Proto.Request.ts

let check_clients t =
  (* Per-client view: delivered timestamps must form the exact contiguous
     range the client submitted, and ordering positions must respect the
     watermark window — ts [k] can only be ordered after ts [k - window]. *)
  let clients : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let max_ts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key (r : Proto.Request.t) ->
      let c = r.id.Proto.Request.client and ts = r.id.Proto.Request.ts in
      (match Hashtbl.find_opt max_ts c with
      | Some m when m >= ts -> ()
      | _ -> Hashtbl.replace max_ts c ts);
      match Hashtbl.find_opt t.req_sn key with
      | None -> ()  (* already reported by check_liveness *)
      | Some sn ->
          let tbl =
            match Hashtbl.find_opt clients c with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 256 in
                Hashtbl.replace clients c tbl;
                tbl
          in
          Hashtbl.replace tbl ts sn)
    t.submitted;
  Hashtbl.iter
    (fun c tbl ->
      let m = try Hashtbl.find max_ts c with Not_found -> -1 in
      for ts = 0 to m do
        match Hashtbl.find_opt tbl ts with
        | None ->
            (* A hole is legal exactly where the client gave the request up:
               the explicit give-up terminal state of the overload run. *)
            if
              t.violation = None
              && not (Hashtbl.mem t.gave_up (Proto.Request.id_key { Proto.Request.client = c; ts }))
            then
              fail t "client %d: ts %d missing from the delivered range [0, %d]" c ts m
        | Some sn ->
            if ts >= t.window then begin
              match Hashtbl.find_opt tbl (ts - t.window) with
              | Some sn' when sn' < sn -> ()
              | Some sn' ->
                  fail t
                    "client %d: ts %d ordered at sn %d but ts %d (one window below) only at sn \
                     %d — watermark window violated"
                    c ts sn (ts - t.window) sn'
              | None -> ()
            end
      done)
    clients

let finalize t =
  check_log_structure t;
  check_liveness t;
  check_clients t;
  match t.violation with
  | Some msg -> Error msg
  | None ->
      let quorum_requests =
        Hashtbl.fold
          (fun _ e acc -> if e.e_nodes >= t.reply_quorum then acc + e.e_len else acc)
          t.global 0
      in
      Ok
        {
          sns = Hashtbl.length t.global;
          requests = Hashtbl.length t.req_sn;
          quorum_requests;
          per_node_delivered = Array.copy t.delivered_counts;
          shed = Array.fold_left ( + ) 0 t.shed_counts;
          gave_up = Hashtbl.length t.gave_up;
        }

let violation t = t.violation

(* A digest of everything the checker observed, for determinism and
   instrumented-vs-bare bit-identity comparisons: the full ordered log
   (digest + numbering per position) plus each node's delivery progress. *)
let fingerprint t =
  let buf = Buffer.create 8192 in
  for sn = 0 to t.max_sn do
    match Hashtbl.find_opt t.global sn with
    | Some e ->
        Buffer.add_string buf (Iss_crypto.Hash.short e.e_digest);
        Buffer.add_string buf (Printf.sprintf ":%d:%d:%d;" e.e_frs e.e_len e.e_nodes)
    | None -> Buffer.add_string buf "hole;"
  done;
  Array.iteri
    (fun node last ->
      Buffer.add_string buf
        (Printf.sprintf "n%d=%d@%d;" node t.delivered_counts.(node) last))
    t.last_sn;
  (* Overload accounting enters the digest only when it fired: scenarios
     without flow control keep their pre-flow-control fingerprints. *)
  let shed_total = Array.fold_left ( + ) 0 t.shed_counts in
  if shed_total > 0 || Hashtbl.length t.gave_up > 0 then begin
    Buffer.add_string buf (Printf.sprintf "gaveup=%d;" (Hashtbl.length t.gave_up));
    Array.iteri
      (fun node shed -> Buffer.add_string buf (Printf.sprintf "shed%d=%d;" node shed))
      t.shed_counts
  end;
  Iss_crypto.Sha256.digest_hex (Buffer.contents buf)
