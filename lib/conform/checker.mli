(** Differential conformance checker (DESIGN.md §9).

    Replays the raw observer streams of one run — every workload submission
    and every per-node batch delivery — against the reference model of an
    idealized atomic broadcast, independently of {!Runner.Cluster}'s online
    invariant checker (the two implementations cross-validate each other).

    Checked properties: cross-node agreement and per-node total order,
    no fabrication, exactly-once (per node and globally), Eq. (2) request
    numbering chaining across observed log positions (⊥ and empty
    keep-alive batches deliver nothing and are transparent to the chain),
    liveness against the reply quorum, per-client delivered-range
    completeness, and client watermark window closure (§3.7). *)

type t

type stats = {
  sns : int;  (** distinct log positions delivered somewhere *)
  requests : int;  (** distinct requests ordered *)
  quorum_requests : int;  (** requests whose position reached the reply quorum *)
  per_node_delivered : int array;  (** requests delivered by each node *)
  shed : int;  (** flow-control sheds observed, all correct nodes *)
  gave_up : int;  (** requests whose client exhausted its retry budget *)
}

val create : n:int -> reply_quorum:int -> window:int -> t
(** [window] is the configuration's [client_watermark_window]. *)

val set_byzantine : t -> int -> unit
(** Exempt a node from the checked invariants: agreement, exactly-once,
    fabrication and Eq. (2) quantify over {e correct} nodes only, and a
    Byzantine node's deliveries never seed the first-observed baseline for
    a log position.  Its progress counters still feed {!fingerprint}.  Call
    before the run for every node the fault schedule attacks
    ({!Scenario.byzantine_nodes}). *)

val note_submitted : t -> Proto.Request.t -> unit
(** Feed from {!Runner.Cluster.set_submission_observer}. *)

val note_delivery : t -> node:int -> sn:int -> first_request_sn:int -> Proto.Batch.t -> unit
(** Feed from {!Runner.Cluster.set_delivery_observer}.  Violations are
    recorded (first one wins), never raised — a failing run completes and is
    then shrunk. *)

val note_shed : t -> node:int -> Proto.Request.t -> unit
(** Feed from {!Runner.Cluster.set_shed_observer} (shed events only, not
    advisory pushback).  Records the shed and checks the no
    delivered-then-shed invariant: a correct node never sheds a request it
    has already delivered (its dedup state must absorb the duplicate
    before admission counts it against the bucket). *)

val note_gave_up : t -> Proto.Request.t -> unit
(** Feed from {!Runner.Cluster.set_give_up_observer}.  Given-up requests
    become legal terminal states for the liveness and per-client
    completeness checks; the per-client watermark-window check treats the
    hole as transparent. *)

val finalize : t -> (stats, string) result
(** Run the end-of-run structural checks (Eq. 2 global chaining, liveness,
    per-client completeness and window closure) and
    report the first recorded violation, if any.  Call only after the
    engine has run past the schedule's heal time plus the liveness grace
    period. *)

val violation : t -> string option
(** The first recorded violation so far, without running the structural
    checks. *)

val fingerprint : t -> string
(** Hex digest of the complete observed behaviour (ordered log + per-node
    progress) — equal fingerprints mean behaviourally identical runs.  Used
    for the determinism and instrumented-vs-bare bit-identity assertions. *)
