(* The conformance harness: run one fuzzed scenario against all three ISS
   instantiations, differentially check each run against the reference
   model, and assert determinism and instrumented-vs-bare bit-identity by
   re-running.

   Each (scenario, protocol) pair is simulated twice:

   - once fully instrumented (lifecycle tracer + metric registry + the
     cluster's online invariant checker), which also cross-checks the
     observability layer's own accounting against the conformance checker;
   - once bare (no tracer, no registry).

   The two runs must produce identical behaviour fingerprints: any
   divergence means either nondeterminism (e.g. an insertion-order-dependent
   tie-break) or instrumentation perturbing the simulation — both bugs. *)

module Time_ns = Sim.Time_ns
module Faults = Runner.Faults
module Cluster = Runner.Cluster
module J = Obs.Jsonx

let protocols = [ Core.Config.PBFT; Core.Config.HotStuff; Core.Config.Raft ]

type failure = {
  scenario : Scenario.t;
  protocol : Core.Config.protocol;
  message : string;
}

let failure_message f = f.message
let pp_failure fmt f =
  Format.fprintf fmt "[%s x %s] %s" (Scenario.name f.scenario)
    (Core.Config.protocol_name f.protocol) f.message

(* Shortened epochs and tight timeouts (the chaos-test configuration): the
   liveness grace period derives from these, so shrinking them shrinks every
   conformance run. *)
let fast c =
  {
    c with
    Core.Config.min_epoch_length = 32;
    min_segment_size = 4;
    epoch_change_timeout = Time_ns.sec 4;
    max_batch_timeout = (if c.Core.Config.max_batch_timeout = 0 then 0 else Time_ns.sec 1);
  }

(* Overload scenarios flip flow control on with buckets small enough that
   conformance-scale rates actually shed.  The shed policy comes from the
   scenario's [drop_oldest] draw. *)
let overload_tweak (o : Scenario.overload) c =
  let drop_oldest =
    match o with
    | Scenario.Flash_crowd { drop_oldest; _ } | Scenario.Hot_bucket { drop_oldest; _ } ->
        drop_oldest
  in
  {
    c with
    Core.Config.flow_control = true;
    bucket_capacity = 16;
    shed_policy = (if drop_oldest then Core.Config.Drop_oldest else Core.Config.Reject_new);
    pushback_watermark = 0.75;
  }

(* The modeled client abandons a stalled request after this many re-sends in
   overload scenarios — the explicit give-up terminal state. *)
let overload_retry_budget = 4

let run_until_s (sc : Scenario.t) config =
  let heal = Faults.heal_s (Faults.make ~name:(Scenario.name sc) sc.Scenario.faults) in
  (* Give-ups need the sweeper to notice the stall (5 s) and then spend the
     retry budget at one re-send per 2 s sweep: extend overload runs so
     every shed request reaches a terminal state before liveness judges. *)
  let overload_grace = match sc.Scenario.overload with Some _ -> 10.0 | None -> 0.0 in
  Float.max
    (sc.Scenario.duration_s +. 15.0)
    (heal +. Faults.liveness_grace_s config +. sc.Scenario.duration_s)
  +. overload_grace

(* ------------------------------------------------------------------ *)
(* Observability self-consistency: the registry's own delivery accounting
   and the tracer's event structure must agree with what the conformance
   checker observed. *)

let metric_value ~name ?node snapshot =
  let node_matches node_field =
    match (node, node_field) with
    | None, None -> true
    | Some want, Some (J.Int got) -> want = got
    | _ -> false
  in
  match J.member "metrics" snapshot with
  | None -> None
  | Some (J.List entries) ->
      List.find_map
        (fun e ->
          match (J.member "name" e, J.member "node" e) with
          | Some (J.String n), node_field when n = name && node_matches node_field -> (
              match J.member "value" e with Some (J.Int v) -> Some v | _ -> None)
          | _ -> None)
        entries
  | Some _ -> None

let check_obs_consistency ~cluster ~registry ~tracer ~engine (stats : Checker.stats) =
  let snapshot = Obs.Registry.snapshot registry ~at:(Sim.Engine.now engine) in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
  (match metric_value ~name:"cluster.delivered_quorum" snapshot with
  | Some v ->
      if v <> stats.Checker.quorum_requests then
        fail "registry cluster.delivered_quorum=%d but the checker counted %d" v
          stats.Checker.quorum_requests
  | None -> fail "registry snapshot is missing cluster.delivered_quorum");
  (match metric_value ~name:"cluster.submitted" snapshot with
  | Some v ->
      if v <> Cluster.submitted cluster then
        fail "registry cluster.submitted=%d but the cluster counted %d" v
          (Cluster.submitted cluster)
  | None -> fail "registry snapshot is missing cluster.submitted");
  Array.iteri
    (fun node count ->
      match metric_value ~name:"node.delivered" ~node snapshot with
      | Some v ->
          if v <> count then
            fail "registry node.delivered=%d for node %d but the checker counted %d" v node
              count
      | None -> fail "registry snapshot is missing node.delivered for node %d" node)
    stats.Checker.per_node_delivered;
  (* Tracer: every reply event must belong to a request that was submitted
     first, with non-decreasing timestamps. *)
  let submit_at = Hashtbl.create 4096 in
  Obs.Tracer.iter tracer (fun ~req ~node:_ ~at phase ->
      match phase with
      | Obs.Tracer.Submit -> if not (Hashtbl.mem submit_at req) then Hashtbl.replace submit_at req at
      | Obs.Tracer.Reply -> (
          match Hashtbl.find_opt submit_at req with
          | None -> fail "tracer recorded a reply for request key %d with no submit event" req
          | Some t0 ->
              if at < t0 then
                fail "tracer recorded a reply before the submit for request key %d" req)
      | _ -> ());
  !err

(* ------------------------------------------------------------------ *)
(* One simulated run *)

type run_result = { fingerprint : string; stats : Checker.stats }

let run_protocol ?(instrumented = true) (sc : Scenario.t) protocol :
    (run_result, string) result =
  match Scenario.validate ~protocol sc with
  | Error e -> Error (Printf.sprintf "invalid scenario: %s" e)
  | Ok () -> (
      let engine = Sim.Engine.create () in
      let tracer =
        if instrumented then Some (Obs.Tracer.create ~sample:1 ~engine ()) else None
      in
      let registry = if instrumented then Some (Obs.Registry.create ()) else None in
      let tweak =
        match sc.Scenario.overload with
        | None -> fast
        | Some o -> fun c -> overload_tweak o (fast c)
      in
      let cluster =
        Cluster.create ~engine ?tracer ?registry ~tweak ~system:(Cluster.Iss protocol)
          ~n:sc.Scenario.n ~seed:sc.Scenario.seed ()
      in
      let config = Cluster.config cluster in
      let checker =
        Checker.create ~n:sc.Scenario.n ~reply_quorum:(Cluster.reply_quorum cluster)
          ~window:config.Core.Config.client_watermark_window
      in
      List.iter (Checker.set_byzantine checker) (Scenario.byzantine_nodes sc);
      Cluster.set_submission_observer cluster (Checker.note_submitted checker);
      Cluster.set_delivery_observer cluster (fun ~node ~sn ~first_request_sn batch ->
          Checker.note_delivery checker ~node ~sn ~first_request_sn batch);
      let shape, retry_budget =
        match sc.Scenario.overload with
        | None -> (Runner.Workload.Steady, None)
        | Some o ->
            (* The checker re-derives the shed / give-up conformance rules
               from its own observer feed, cross-validating the cluster's
               online delivered-then-shed check. *)
            Cluster.set_shed_observer cluster (fun ~node ~shed r ->
                if shed then Checker.note_shed checker ~node r);
            Cluster.set_give_up_observer cluster (Checker.note_gave_up checker);
            (match o with
             | Scenario.Flash_crowd { at_s; factor; len_s; _ } ->
                 Runner.Workload.Flash_crowd { at_s; factor; len_s }
             | Scenario.Hot_bucket { skew; _ } -> Runner.Workload.Hot_bucket { skew }),
            Some overload_retry_budget
      in
      let schedule = Faults.make ~name:(Scenario.name sc) sc.Scenario.faults in
      Faults.apply schedule cluster;
      Cluster.enable_invariants cluster;
      Cluster.start cluster;
      let run_until = Time_ns.of_sec_f (run_until_s sc config) in
      Runner.Workload.start ~cluster ~rate:sc.Scenario.rate
        ~num_clients:sc.Scenario.num_clients ~resubmit:true ~shape ?retry_budget
        ~shape_seed:sc.Scenario.seed ~sweep_until:run_until
        ~until:(Time_ns.of_sec_f sc.Scenario.duration_s) ();
      match
        Sim.Engine.run ~until:run_until engine;
        Cluster.check_liveness cluster
      with
      | exception Cluster.Invariant_violation report ->
          Error (Printf.sprintf "online invariant checker: %s" report)
      | () -> (
          match Checker.finalize checker with
          | Error msg -> Error msg
          | Ok stats -> (
              let fingerprint = Checker.fingerprint checker in
              match (registry, tracer) with
              | Some registry, Some tracer -> (
                  match check_obs_consistency ~cluster ~registry ~tracer ~engine stats with
                  | Some msg -> Error (Printf.sprintf "observability self-consistency: %s" msg)
                  | None -> Ok { fingerprint; stats })
              | _ -> Ok { fingerprint; stats })))

(* ------------------------------------------------------------------ *)
(* Full conformance for one scenario: all three ISS instantiations, each
   run instrumented and bare, with fingerprint equality across the pair. *)

let check_protocol (sc : Scenario.t) protocol : (unit, failure) result =
  match run_protocol ~instrumented:true sc protocol with
  | Error message -> Error { scenario = sc; protocol; message }
  | Ok instrumented -> (
      match run_protocol ~instrumented:false sc protocol with
      | Error message ->
          Error
            {
              scenario = sc;
              protocol;
              message = Printf.sprintf "bare re-run diverged: %s" message;
            }
      | Ok bare ->
          if String.equal instrumented.fingerprint bare.fingerprint then Ok ()
          else
            Error
              {
                scenario = sc;
                protocol;
                message =
                  Printf.sprintf
                    "nondeterminism: instrumented and bare runs differ (%s vs %s) — either \
                     an order-dependent tie-break or instrumentation perturbing the \
                     simulation"
                    instrumented.fingerprint bare.fingerprint;
              })

let check_scenario (sc : Scenario.t) : (unit, failure) result =
  let rec go = function
    | [] -> Ok ()
    | protocol :: rest -> (
        match check_protocol sc protocol with Ok () -> go rest | Error f -> Error f)
  in
  (* Active-malice scenarios only make sense under a Byzantine fault model:
     Raft (crash-fault-tolerant) is exempt, not broken. *)
  let applicable =
    if Scenario.has_byzantine sc then
      List.filter (fun p -> p <> Core.Config.Raft) protocols
    else protocols
  in
  go applicable

let check_seed seed = check_scenario (Scenario.of_seed seed)

(* ------------------------------------------------------------------ *)
(* Repro files *)

let repro_to_json (f : failure) =
  J.Obj
    [
      ("scenario", Scenario.to_json f.scenario);
      ("protocol", J.String (Core.Config.protocol_name f.protocol));
      ("message", J.String f.message);
    ]

let save_repro (f : failure) ~dir =
  let file =
    Filename.concat dir
      (Printf.sprintf "%s-%s.json" (Scenario.name f.scenario)
         (String.lowercase_ascii (Core.Config.protocol_name f.protocol)))
  in
  let oc = open_out file in
  output_string oc (J.to_string (repro_to_json f));
  output_char oc '\n';
  close_out oc;
  file
