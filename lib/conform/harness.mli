(** Conformance harness (DESIGN.md §9).

    Runs a fuzzed {!Scenario} against all three ISS instantiations
    (ISS-PBFT, ISS-HotStuff, ISS-Raft), feeding every submission and
    per-node delivery to the differential {!Checker}, with the cluster's
    online invariant checker enabled as a second, independent net.

    Each (scenario, protocol) pair runs twice — fully instrumented
    (lifecycle tracer + metric registry, whose accounting is cross-checked
    against the conformance checker) and bare — and the two behaviour
    fingerprints must be identical: this asserts both determinism (no
    insertion-order-dependent tie-breaks) and that observability
    instrumentation never perturbs a run. *)

type failure = {
  scenario : Scenario.t;
  protocol : Core.Config.protocol;
  message : string;
}

val failure_message : failure -> string
val pp_failure : Format.formatter -> failure -> unit

val protocols : Core.Config.protocol list
(** The three ISS instantiations every scenario is checked against. *)

type run_result = { fingerprint : string; stats : Checker.stats }

val run_protocol :
  ?instrumented:bool -> Scenario.t -> Core.Config.protocol -> (run_result, string) result
(** One simulated run of the scenario under one protocol
    ([instrumented] defaults to [true]).  The run extends past the fault
    schedule's heal time plus the liveness grace period before the checks
    fire. *)

val check_protocol : Scenario.t -> Core.Config.protocol -> (unit, failure) result
(** One protocol: instrumented + bare runs with fingerprint equality. *)

val check_scenario : Scenario.t -> (unit, failure) result
(** All three protocols, instrumented + bare each, with fingerprint
    equality.  Returns the first failure. *)

val check_seed : int64 -> (unit, failure) result
(** [check_scenario (Scenario.of_seed seed)]. *)

val repro_to_json : failure -> Obs.Jsonx.t

val save_repro : failure -> dir:string -> string
(** Write a self-contained repro (scenario + protocol + first violation)
    into [dir]; returns the file path.  Repro files are what
    [test/conform_corpus/] holds and what [iss_sim conform --replay]
    consumes. *)
