(* A conformance scenario: everything needed to reproduce one fuzzed run —
   cluster size, workload shape, and the fault/jitter schedule.  Scenarios
   are plain data with an exact JSON round-trip so a failing seed can be
   committed to the corpus and replayed bit-identically later. *)

module Rng = Sim.Rng
module Faults = Runner.Faults
module J = Obs.Jsonx

type overload =
  | Flash_crowd of { at_s : float; factor : float; len_s : float; drop_oldest : bool }
  | Hot_bucket of { skew : float; drop_oldest : bool }

type t = {
  seed : int64;  (* drives the cluster RNG and (via derivation) every draw below *)
  n : int;
  rate : float;  (* offered load, requests/s *)
  num_clients : int;  (* small pools stress the per-client watermark window *)
  duration_s : float;  (* submission window; the run extends to heal + grace *)
  faults : Faults.spec list;
  overload : overload option;
      (* flow control on, tiny buckets, an overload workload shape and a
         finite client retry budget — exercises shed/give-up conformance *)
}

let name t = Printf.sprintf "seed-%Ld" t.seed

(* Quantize a float draw to milliseconds: scenario times survive the JSON
   round-trip textually unchanged and shrink steps stay tidy. *)
let ms_quant x = Float.round (x *. 1000.0) /. 1000.0

(* ------------------------------------------------------------------ *)
(* The fuzzer.  Every structural choice comes from a generator derived from
   the scenario seed, so [of_seed] is a pure function of [seed]. *)

let of_seed seed =
  let rng = Rng.create ~seed in
  let n = Rng.pick rng [| 4; 4; 5; 7 |] in
  let num_clients = 2 + Rng.int rng 7 in
  let rate = float_of_int (60 + (20 * Rng.int rng 12)) in
  let duration_s = float_of_int (4 + Rng.int rng 6) in
  (* Fault schedule: a quarter of the seeds run fault-free (pure ordering /
     watermark / GC conformance), a quarter draw an active-malice window
     (BFT protocols only — the harness skips Raft for those), and the rest
     draw a sequential schedule of crash-recoveries, partitions, loss and
     straggler windows. *)
  let schedule =
    match Rng.int rng 4 with
    | 0 -> []
    | 1 -> Faults.spec (Faults.random_byzantine ~seed:(Rng.next_int64 rng) ~n ~duration_s)
    | _ -> Faults.spec (Faults.random ~seed:(Rng.next_int64 rng) ~n ~duration_s)
  in
  (* Latency jitter: an extra slow-link window on one random link, on top of
     whatever the schedule does (slow links never threaten liveness, so
     overlap is fine). *)
  let jitter =
    if Rng.int rng 3 = 0 then
      let a = Rng.int rng n in
      let b = (a + 1 + Rng.int rng (n - 1)) mod n in
      let from_s = ms_quant (Rng.float rng (0.8 *. duration_s)) in
      let until_s = ms_quant (from_s +. 0.5 +. Rng.float rng duration_s) in
      let extra = Sim.Time_ns.ms (20 + Rng.int rng 180) in
      [ Faults.Slow_link { a; b; extra; from_s; until_s } ]
    else []
  in
  (* Overload window: a fifth of the seeds run with flow control on (tiny
     buckets, so shedding actually fires at conformance rates) under a
     saturating workload shape.  Drawn last: pre-overload seeds keep their
     exact scenarios. *)
  let overload =
    if Rng.int rng 5 = 0 then begin
      let drop_oldest = Rng.int rng 2 = 1 in
      if Rng.int rng 2 = 0 then
        Some
          (Flash_crowd
             {
               at_s = ms_quant (0.2 *. duration_s +. Rng.float rng (0.3 *. duration_s));
               factor = float_of_int (6 + Rng.int rng 7);
               len_s = ms_quant (1.0 +. Rng.float rng 2.0);
               drop_oldest;
             })
      else
        Some (Hot_bucket { skew = 0.9 +. (0.1 *. float_of_int (Rng.int rng 8)); drop_oldest })
    end
    else None
  in
  { seed; n; rate; num_clients; duration_s; faults = schedule @ jitter; overload }

let validate_overload = function
  | None -> Ok ()
  | Some (Flash_crowd { at_s; factor; len_s; _ }) ->
      if at_s < 0.0 then Error "overload: at_s must be non-negative"
      else if factor <= 1.0 then Error "overload: factor must exceed 1"
      else if len_s <= 0.0 then Error "overload: len_s must be positive"
      else Ok ()
  | Some (Hot_bucket { skew; _ }) ->
      if skew <= 0.0 then Error "overload: skew must be positive" else Ok ()

let validate ?protocol t =
  if t.n < 4 then Error "n must be at least 4"
  else if t.rate <= 0.0 then Error "rate must be positive"
  else if t.num_clients < 1 then Error "num_clients must be positive"
  else if t.duration_s <= 0.0 then Error "duration_s must be positive"
  else
    match validate_overload t.overload with
    | Error _ as e -> e
    | Ok () -> Faults.validate ?protocol (Faults.make ~name:(name t) t.faults) ~n:t.n

let has_byzantine t = Faults.has_byzantine (Faults.make ~name:(name t) t.faults)
let byzantine_nodes t = Faults.byzantine_nodes (Faults.make ~name:(name t) t.faults)

(* ------------------------------------------------------------------ *)
(* JSON codec (repro files).  Spans are encoded as integer nanoseconds;
   floats print via Jsonx's round-tripping formatter. *)

let spec_to_json (s : Faults.spec) =
  let obj kind fields = J.Obj (("kind", J.String kind) :: fields) in
  match s with
  | Faults.Crash { node; at_s } ->
      obj "crash" [ ("node", J.Int node); ("at_s", J.Float at_s) ]
  | Faults.Recover { node; at_s } ->
      obj "recover" [ ("node", J.Int node); ("at_s", J.Float at_s) ]
  | Faults.Crash_recover { node; at_s; down_s } ->
      obj "crash_recover"
        [ ("node", J.Int node); ("at_s", J.Float at_s); ("down_s", J.Float down_s) ]
  | Faults.Isolate { node; from_s; until_s } ->
      obj "isolate"
        [ ("node", J.Int node); ("from_s", J.Float from_s); ("until_s", J.Float until_s) ]
  | Faults.Split { minority; from_s; until_s } ->
      obj "split"
        [
          ("minority", J.List (List.map (fun i -> J.Int i) minority));
          ("from_s", J.Float from_s);
          ("until_s", J.Float until_s);
        ]
  | Faults.Drop { prob; from_s; until_s } ->
      obj "drop"
        [ ("prob", J.Float prob); ("from_s", J.Float from_s); ("until_s", J.Float until_s) ]
  | Faults.Straggle { node; from_s; until_s } ->
      obj "straggle"
        [ ("node", J.Int node); ("from_s", J.Float from_s); ("until_s", J.Float until_s) ]
  | Faults.Slow_link { a; b; extra; from_s; until_s } ->
      obj "slow_link"
        [
          ("a", J.Int a);
          ("b", J.Int b);
          ("extra_ns", J.Int extra);
          ("from_s", J.Float from_s);
          ("until_s", J.Float until_s);
        ]
  | Faults.Equivocate { node; from_s; until_s } ->
      obj "equivocate"
        [ ("node", J.Int node); ("from_s", J.Float from_s); ("until_s", J.Float until_s) ]
  | Faults.Censor { node; buckets; from_s; until_s } ->
      obj "censor"
        [
          ("node", J.Int node);
          ("buckets", J.List (List.map (fun i -> J.Int i) buckets));
          ("from_s", J.Float from_s);
          ("until_s", J.Float until_s);
        ]
  | Faults.Corrupt_sig { node; from_s; until_s } ->
      obj "corrupt_sig"
        [ ("node", J.Int node); ("from_s", J.Float from_s); ("until_s", J.Float until_s) ]
  | Faults.Replay { node; from_s; until_s } ->
      obj "replay"
        [ ("node", J.Int node); ("from_s", J.Float from_s); ("until_s", J.Float until_s) ]
  | Faults.Bad_checkpoint { node; from_s; until_s } ->
      obj "bad_checkpoint"
        [ ("node", J.Int node); ("from_s", J.Float from_s); ("until_s", J.Float until_s) ]

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) r f = Result.bind r f

let int_field name json =
  let* v = field name json in
  match v with J.Int i -> Ok i | _ -> Error (Printf.sprintf "field %S: expected int" name)

let float_field name json =
  let* v = field name json in
  match J.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected number" name)

let spec_of_json json =
  let* kind = field "kind" json in
  match kind with
  | J.String "crash" ->
      let* node = int_field "node" json in
      let* at_s = float_field "at_s" json in
      Ok (Faults.Crash { node; at_s })
  | J.String "recover" ->
      let* node = int_field "node" json in
      let* at_s = float_field "at_s" json in
      Ok (Faults.Recover { node; at_s })
  | J.String "crash_recover" ->
      let* node = int_field "node" json in
      let* at_s = float_field "at_s" json in
      let* down_s = float_field "down_s" json in
      Ok (Faults.Crash_recover { node; at_s; down_s })
  | J.String "isolate" ->
      let* node = int_field "node" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Isolate { node; from_s; until_s })
  | J.String "split" ->
      let* minority = field "minority" json in
      let* minority =
        match J.to_list minority with
        | None -> Error "field \"minority\": expected list"
        | Some items ->
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                match item with
                | J.Int i -> Ok (i :: acc)
                | _ -> Error "field \"minority\": expected ints")
              items (Ok [])
      in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Split { minority; from_s; until_s })
  | J.String "drop" ->
      let* prob = float_field "prob" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Drop { prob; from_s; until_s })
  | J.String "straggle" ->
      let* node = int_field "node" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Straggle { node; from_s; until_s })
  | J.String "slow_link" ->
      let* a = int_field "a" json in
      let* b = int_field "b" json in
      let* extra = int_field "extra_ns" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Slow_link { a; b; extra; from_s; until_s })
  | J.String "equivocate" ->
      let* node = int_field "node" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Equivocate { node; from_s; until_s })
  | J.String "censor" ->
      let* node = int_field "node" json in
      let* buckets = field "buckets" json in
      let* buckets =
        match J.to_list buckets with
        | None -> Error "field \"buckets\": expected list"
        | Some items ->
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                match item with
                | J.Int i -> Ok (i :: acc)
                | _ -> Error "field \"buckets\": expected ints")
              items (Ok [])
      in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Censor { node; buckets; from_s; until_s })
  | J.String "corrupt_sig" ->
      let* node = int_field "node" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Corrupt_sig { node; from_s; until_s })
  | J.String "replay" ->
      let* node = int_field "node" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Replay { node; from_s; until_s })
  | J.String "bad_checkpoint" ->
      let* node = int_field "node" json in
      let* from_s = float_field "from_s" json in
      let* until_s = float_field "until_s" json in
      Ok (Faults.Bad_checkpoint { node; from_s; until_s })
  | J.String other -> Error (Printf.sprintf "unknown fault kind %S" other)
  | _ -> Error "field \"kind\": expected string"

let overload_to_json = function
  | Flash_crowd { at_s; factor; len_s; drop_oldest } ->
      J.Obj
        [
          ("kind", J.String "flash_crowd");
          ("at_s", J.Float at_s);
          ("factor", J.Float factor);
          ("len_s", J.Float len_s);
          ("drop_oldest", J.Bool drop_oldest);
        ]
  | Hot_bucket { skew; drop_oldest } ->
      J.Obj
        [
          ("kind", J.String "hot_bucket");
          ("skew", J.Float skew);
          ("drop_oldest", J.Bool drop_oldest);
        ]

let overload_of_json json =
  let* drop_oldest = field "drop_oldest" json in
  let* drop_oldest =
    match drop_oldest with
    | J.Bool b -> Ok b
    | _ -> Error "field \"drop_oldest\": expected bool"
  in
  let* kind = field "kind" json in
  match kind with
  | J.String "flash_crowd" ->
      let* at_s = float_field "at_s" json in
      let* factor = float_field "factor" json in
      let* len_s = float_field "len_s" json in
      Ok (Flash_crowd { at_s; factor; len_s; drop_oldest })
  | J.String "hot_bucket" ->
      let* skew = float_field "skew" json in
      Ok (Hot_bucket { skew; drop_oldest })
  | J.String other -> Error (Printf.sprintf "unknown overload kind %S" other)
  | _ -> Error "field \"kind\": expected string"

let to_json t =
  J.Obj
    ([
       ("seed", J.String (Int64.to_string t.seed));
       ("n", J.Int t.n);
       ("rate", J.Float t.rate);
       ("num_clients", J.Int t.num_clients);
       ("duration_s", J.Float t.duration_s);
       ("faults", J.List (List.map spec_to_json t.faults));
     ]
    (* Emitted only when present: pre-overload corpus files round-trip
       byte-identically. *)
    @ match t.overload with None -> [] | Some o -> [ ("overload", overload_to_json o) ])

let of_json json =
  let* seed = field "seed" json in
  let* seed =
    match seed with
    | J.String s -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error "field \"seed\": expected int64 string")
    | J.Int i -> Ok (Int64.of_int i)
    | _ -> Error "field \"seed\": expected string or int"
  in
  let* n = int_field "n" json in
  let* rate = float_field "rate" json in
  let* num_clients = int_field "num_clients" json in
  let* duration_s = float_field "duration_s" json in
  let* faults = field "faults" json in
  let* faults =
    match J.to_list faults with
    | None -> Error "field \"faults\": expected list"
    | Some items ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* spec = spec_of_json item in
            Ok (spec :: acc))
          items (Ok [])
  in
  let* overload =
    match J.member "overload" json with
    | None -> Ok None
    | Some o ->
        let* o = overload_of_json o in
        Ok (Some o)
  in
  let t = { seed; n; rate; num_clients; duration_s; faults; overload } in
  let* () = validate t in
  Ok t

let of_string s =
  let* json = J.of_string s in
  of_json json

let to_string t = J.to_string (to_json t)

let pp_overload fmt = function
  | Flash_crowd { at_s; factor; len_s; drop_oldest } ->
      Format.fprintf fmt "flash-crowd %gx at %g-%gs (%s)" factor at_s (at_s +. len_s)
        (if drop_oldest then "drop-oldest" else "reject-new")
  | Hot_bucket { skew; drop_oldest } ->
      Format.fprintf fmt "hot-bucket zipf %g (%s)" skew
        (if drop_oldest then "drop-oldest" else "reject-new")

let pp fmt t =
  Format.fprintf fmt "scenario %s: n=%d rate=%g clients=%d duration=%gs, %a" (name t) t.n
    t.rate t.num_clients t.duration_s Faults.pp
    (Faults.make ~name:(name t) t.faults);
  match t.overload with
  | None -> ()
  | Some o -> Format.fprintf fmt ", overload %a" pp_overload o
