(** Conformance scenarios (DESIGN.md §9).

    A scenario is the plain-data description of one fuzzed run: cluster
    size, workload shape (rate, client-pool size, submission window) and a
    fault/jitter schedule.  [of_seed] derives every choice deterministically
    from one 64-bit seed; the JSON codec round-trips exactly, so a failing
    scenario can be committed to [test/conform_corpus/] and replayed
    bit-identically. *)

type t = {
  seed : int64;  (** drives the cluster RNG and every fuzzer draw *)
  n : int;
  rate : float;  (** offered load, requests/s *)
  num_clients : int;  (** small pools stress the per-client watermark window *)
  duration_s : float;  (** submission window; runs extend to heal + grace *)
  faults : Runner.Faults.spec list;
}

val of_seed : int64 -> t
(** Deterministic fuzzer: equal seeds give equal scenarios.  Draws cluster
    size (4–7), client pool (2–8), rate (60–280 req/s), duration (4–9 s), a
    sequential fault schedule ({!Runner.Faults.random}; a quarter of seeds
    run fault-free) and an optional slow-link latency-jitter window. *)

val name : t -> string
val validate : t -> (unit, string) result

val to_json : t -> Obs.Jsonx.t
val of_json : Obs.Jsonx.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val spec_to_json : Runner.Faults.spec -> Obs.Jsonx.t
val spec_of_json : Obs.Jsonx.t -> (Runner.Faults.spec, string) result

val pp : Format.formatter -> t -> unit
