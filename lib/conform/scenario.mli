(** Conformance scenarios (DESIGN.md §9).

    A scenario is the plain-data description of one fuzzed run: cluster
    size, workload shape (rate, client-pool size, submission window) and a
    fault/jitter schedule.  [of_seed] derives every choice deterministically
    from one 64-bit seed; the JSON codec round-trips exactly, so a failing
    scenario can be committed to [test/conform_corpus/] and replayed
    bit-identically. *)

type overload =
  | Flash_crowd of { at_s : float; factor : float; len_s : float; drop_oldest : bool }
      (** offered load steps to [factor]x during [\[at_s, at_s + len_s)] *)
  | Hot_bucket of { skew : float; drop_oldest : bool }
      (** requests target a Zipf([skew])-hot bucket *)

type t = {
  seed : int64;  (** drives the cluster RNG and every fuzzer draw *)
  n : int;
  rate : float;  (** offered load, requests/s *)
  num_clients : int;  (** small pools stress the per-client watermark window *)
  duration_s : float;  (** submission window; runs extend to heal + grace *)
  faults : Runner.Faults.spec list;
  overload : overload option;
      (** when present the harness runs with flow control on (tiny buckets,
          shed policy from [drop_oldest]), the overload workload shape and a
          finite client retry budget — exercising the shed / give-up
          conformance rules *)
}

val of_seed : int64 -> t
(** Deterministic fuzzer: equal seeds give equal scenarios.  Draws cluster
    size (4–7), client pool (2–8), rate (60–280 req/s), duration (4–9 s), a
    fault schedule (a quarter of seeds run fault-free, a quarter draw an
    active-malice window via {!Runner.Faults.random_byzantine}, the rest a
    sequential benign schedule via {!Runner.Faults.random}), an optional
    slow-link latency-jitter window, and — in a fifth of the seeds — an
    overload window (flash crowd or hot bucket, drawn last so pre-overload
    seeds keep their exact scenarios). *)

val name : t -> string

val validate : ?protocol:Core.Config.protocol -> t -> (unit, string) result
(** Structural checks plus {!Runner.Faults.validate} on the schedule; pass
    [protocol] to additionally reject active-malice specs for Raft. *)

val has_byzantine : t -> bool
(** The schedule contains at least one active-malice spec — the harness
    skips Raft (crash-fault-tolerant only) for such scenarios. *)

val byzantine_nodes : t -> int list
(** Sorted, deduplicated attacker ids (see {!Runner.Faults.byzantine_nodes}). *)

val to_json : t -> Obs.Jsonx.t
val of_json : Obs.Jsonx.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val spec_to_json : Runner.Faults.spec -> Obs.Jsonx.t
val spec_of_json : Obs.Jsonx.t -> (Runner.Faults.spec, string) result

val pp : Format.formatter -> t -> unit
