(* Greedy scenario minimization.

   Given a failing scenario, repeatedly try structurally smaller variants —
   drop a fault, halve a fault window, halve the duration or the load,
   shrink the client pool or the cluster — and keep any variant that still
   fails.  The result is the smallest variant found within the re-run
   budget, which becomes the committed repro. *)

module Faults = Runner.Faults

let quant x = Float.round (x *. 1000.0) /. 1000.0

(* Halve the active window of one fault spec (recovery delay, partition /
   loss / straggle / slow-link width).  Returns None when the spec has no
   window to shrink or it is already minimal. *)
let halve_window = function
  | Faults.Crash_recover { node; at_s; down_s } when down_s > 0.5 ->
      Some (Faults.Crash_recover { node; at_s; down_s = quant (down_s /. 2.0) })
  | Faults.Isolate { node; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some (Faults.Isolate { node; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Split { minority; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some (Faults.Split { minority; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Drop { prob; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some (Faults.Drop { prob; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Straggle { node; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some (Faults.Straggle { node; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Slow_link { a; b; extra; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some
        (Faults.Slow_link
           { a; b; extra; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Equivocate { node; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some (Faults.Equivocate { node; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Censor { node; buckets; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some
        (Faults.Censor
           { node; buckets; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Corrupt_sig { node; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some
        (Faults.Corrupt_sig { node; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Replay { node; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some (Faults.Replay { node; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | Faults.Bad_checkpoint { node; from_s; until_s } when until_s -. from_s > 0.5 ->
      Some
        (Faults.Bad_checkpoint
           { node; from_s; until_s = quant (from_s +. ((until_s -. from_s) /. 2.0)) })
  | _ -> None

let spec_nodes = function
  | Faults.Crash { node; _ }
  | Faults.Recover { node; _ }
  | Faults.Crash_recover { node; _ }
  | Faults.Isolate { node; _ }
  | Faults.Straggle { node; _ }
  | Faults.Equivocate { node; _ }
  | Faults.Censor { node; _ }
  | Faults.Corrupt_sig { node; _ }
  | Faults.Replay { node; _ }
  | Faults.Bad_checkpoint { node; _ } ->
      [ node ]
  | Faults.Split { minority; _ } -> minority
  | Faults.Drop _ -> []
  | Faults.Slow_link { a; b; _ } -> [ a; b ]

(* Candidate simpler scenarios, most aggressive first: each either removes a
   whole dimension of the failure or halves one. *)
let candidates (sc : Scenario.t) : Scenario.t list =
  let drop_one =
    List.mapi
      (fun i _ ->
        { sc with Scenario.faults = List.filteri (fun j _ -> j <> i) sc.Scenario.faults })
      sc.Scenario.faults
  in
  let halve_one =
    List.concat
      (List.mapi
         (fun i spec ->
           match halve_window spec with
           | None -> []
           | Some spec' ->
               [
                 {
                   sc with
                   Scenario.faults =
                     List.mapi (fun j s -> if j = i then spec' else s) sc.Scenario.faults;
                 };
               ])
         sc.Scenario.faults)
  in
  let smaller_cluster =
    if sc.Scenario.n > 4 then
      (* Keep only faults whose nodes survive the shrink. *)
      [
        {
          sc with
          Scenario.n = 4;
          faults = List.filter (fun s -> List.for_all (fun i -> i < 4) (spec_nodes s)) sc.Scenario.faults;
        };
      ]
    else []
  in
  let shorter =
    if sc.Scenario.duration_s > 2.0 then
      [ { sc with Scenario.duration_s = quant (sc.Scenario.duration_s /. 2.0) } ]
    else []
  in
  let lighter =
    if sc.Scenario.rate > 40.0 then [ { sc with Scenario.rate = quant (sc.Scenario.rate /. 2.0) } ]
    else []
  in
  let fewer_clients =
    if sc.Scenario.num_clients > 1 then
      [ { sc with Scenario.num_clients = sc.Scenario.num_clients / 2 } ]
    else []
  in
  let no_overload =
    match sc.Scenario.overload with
    | Some _ -> [ { sc with Scenario.overload = None } ]
    | None -> []
  in
  List.filter
    (fun c -> Scenario.validate c = Ok ())
    (drop_one @ no_overload @ smaller_cluster @ shorter @ halve_one @ lighter
   @ fewer_clients)

(* Greedy descent: adopt the first candidate that still fails; stop when no
   candidate fails or the re-run budget is spent.  [still_fails] should run
   the same check that produced the original failure. *)
let minimize ?(budget = 48) (sc : Scenario.t) ~still_fails =
  let spent = ref 0 in
  let rec go sc =
    let rec try_candidates = function
      | [] -> sc
      | c :: rest ->
          if !spent >= budget then sc
          else begin
            incr spent;
            if still_fails c then go c else try_candidates rest
          end
    in
    try_candidates (candidates sc)
  in
  go sc

let minimize_failure ?budget (f : Harness.failure) =
  (* Re-run the same pair-check (instrumented + bare + fingerprint equality)
     that produced the failure, so determinism failures shrink too. *)
  let still_fails sc = Result.is_error (Harness.check_protocol sc f.Harness.protocol) in
  let sc = minimize ?budget f.Harness.scenario ~still_fails in
  match Harness.check_protocol sc f.Harness.protocol with
  | Error f' -> f'
  | Ok () ->
      (* The minimized scenario no longer fails under a fresh pair-run; the
         greedy descent never adopts such a variant, so this only happens
         when no candidate helped at all — keep the original. *)
      f
