(** Greedy scenario minimization (DESIGN.md §9).

    Shrinks a failing scenario toward the smallest variant that still fails:
    drop faults one at a time, move to a 4-node cluster, halve the duration,
    halve fault windows, halve the load, halve the client pool.  Every
    candidate is re-checked with the same instrumented + bare pair-run that
    produced the original failure, within a bounded re-run budget. *)

val candidates : Scenario.t -> Scenario.t list
(** Structurally smaller valid variants, most aggressive first. *)

val minimize : ?budget:int -> Scenario.t -> still_fails:(Scenario.t -> bool) -> Scenario.t
(** Greedy descent: adopt the first candidate for which [still_fails] holds;
    stop when none does or after [budget] (default 48) re-runs. *)

val minimize_failure : ?budget:int -> Harness.failure -> Harness.failure
(** Minimize a harness failure; the result carries the shrunk scenario and
    its (re-derived) violation message, ready for {!Harness.save_repro}. *)
