(* FIFO by arrival sequence with O(1) amortized add / remove / cut.

   The common path exploits that arrival sequence numbers are assigned from
   a per-node counter, so [add]s arrive in increasing order: a growable
   circular buffer holds the requests; removal by id tombstones the slot
   through an id -> logical-position index.  The only out-of-order inserts
   are resurrections (a request returned after an aborted proposal, rare by
   construction), kept in a small sorted side list that [cut]/[peek] merge
   by sequence number. *)

type slot = { s_seq : int; mutable s_req : Proto.Request.t option }

type t = {
  mutable buf : slot array;
  mutable head : int;  (* logical index of the oldest live slot *)
  mutable tail : int;  (* logical index one past the newest *)
  by_id : (int, slot) Hashtbl.t;  (* id key -> slot (buffer or resurrected) *)
  mutable resurrected : (int * slot) list;  (* sorted ascending by seq *)
  mutable count : int;
  mutable last_seq : int;
  (* Observability counters (DESIGN.md §8): two int stores per add, read
     only by metric snapshots. *)
  mutable total_added : int;
  mutable max_count : int;
}

let initial_capacity = 64

let create () =
  {
    buf = Array.make initial_capacity { s_seq = -1; s_req = None };
    head = 0;
    tail = 0;
    by_id = Hashtbl.create 64;
    resurrected = [];
    count = 0;
    last_seq = min_int;
    total_added = 0;
    max_count = 0;
  }

let length t = t.count
let is_empty t = t.count = 0
let total_added t = t.total_added
let max_occupancy t = t.max_count
let mem t id = Hashtbl.mem t.by_id (Proto.Request.id_key id)

let capacity t = Array.length t.buf

let slot_at t logical = t.buf.(logical land (capacity t - 1))

let set_slot t logical s = t.buf.(logical land (capacity t - 1)) <- s

(* Drop leading tombstones so [head] points at a live slot (or reaches
   [tail]). *)
let rec trim t =
  if t.head < t.tail then begin
    let s = slot_at t t.head in
    if s.s_req = None then begin
      t.head <- t.head + 1;
      trim t
    end
  end

let grow t =
  let old_cap = capacity t in
  let live = t.tail - t.head in
  if live = old_cap then begin
    let ncap = old_cap * 2 in
    let nbuf = Array.make ncap { s_seq = -1; s_req = None } in
    for i = 0 to live - 1 do
      nbuf.((t.head + i) land (ncap - 1)) <- slot_at t (t.head + i)
    done;
    t.buf <- nbuf
  end

let insert_resurrected t seq slot =
  let rec go = function
    | [] -> [ (seq, slot) ]
    | ((s, _) as hd) :: rest when s < seq -> hd :: go rest
    | rest -> (seq, slot) :: rest
  in
  t.resurrected <- go t.resurrected

let add t ~seq (r : Proto.Request.t) =
  let key = Proto.Request.id_key r.id in
  if Hashtbl.mem t.by_id key then false
  else begin
    let slot = { s_seq = seq; s_req = Some r } in
    if seq > t.last_seq then begin
      grow t;
      set_slot t t.tail slot;
      t.tail <- t.tail + 1;
      t.last_seq <- seq
    end
    else insert_resurrected t seq slot;
    Hashtbl.replace t.by_id key slot;
    t.count <- t.count + 1;
    t.total_added <- t.total_added + 1;
    if t.count > t.max_count then t.max_count <- t.count;
    true
  end

let remove t id =
  let key = Proto.Request.id_key id in
  match Hashtbl.find_opt t.by_id key with
  | None -> None
  | Some slot ->
      let r = slot.s_req in
      slot.s_req <- None;
      Hashtbl.remove t.by_id key;
      t.count <- t.count - 1;
      t.resurrected <- List.filter (fun (_, s) -> s.s_req <> None) t.resurrected;
      trim t;
      r

let resurrect t ~seq r = ignore (add t ~seq r)

let oldest_seq t =
  trim t;
  let buf_seq = if t.head < t.tail then Some (slot_at t t.head).s_seq else None in
  match (t.resurrected, buf_seq) with
  | [], None -> None
  | [], Some s -> Some s
  | (rs, _) :: _, None -> Some rs
  | (rs, _) :: _, Some s -> Some (min rs s)

let pop_oldest t =
  trim t;
  let from_buf () =
    if t.head < t.tail then begin
      let slot = slot_at t t.head in
      t.head <- t.head + 1;
      match slot.s_req with
      | Some r ->
          slot.s_req <- None;
          Hashtbl.remove t.by_id (Proto.Request.id_key r.Proto.Request.id);
          t.count <- t.count - 1;
          Some r
      | None -> None (* trim guarantees live, but stay safe *)
    end
    else None
  in
  match t.resurrected with
  | (rs, slot) :: rest ->
      let buf_seq = if t.head < t.tail then Some (slot_at t t.head).s_seq else None in
      if buf_seq = None || rs < Option.get buf_seq then begin
        t.resurrected <- rest;
        match slot.s_req with
        | Some r ->
            slot.s_req <- None;
            Hashtbl.remove t.by_id (Proto.Request.id_key r.Proto.Request.id);
            t.count <- t.count - 1;
            Some r
        | None -> from_buf ()
      end
      else from_buf ()
  | [] -> from_buf ()

let peek_oldest t =
  trim t;
  let buf_req () =
    if t.head < t.tail then (slot_at t t.head).s_req else None
  in
  match t.resurrected with
  | (rs, slot) :: _ ->
      let buf_seq = if t.head < t.tail then Some (slot_at t t.head).s_seq else None in
      if buf_seq = None || rs < Option.get buf_seq then slot.s_req else buf_req ()
  | [] -> buf_req ()

let cut t ~max =
  let out = ref [] in
  let k = ref 0 in
  let continue = ref true in
  while !continue && !k < max do
    match pop_oldest t with
    | Some r ->
        out := r :: !out;
        incr k
    | None -> continue := false
  done;
  Array.of_list (List.rev !out)

let clear t =
  (* Keep [last_seq] (arrival keys keep increasing across the clear) and the
     observability counters; only the pending contents go. *)
  t.head <- 0;
  t.tail <- 0;
  t.buf <- Array.make initial_capacity { s_seq = -1; s_req = None };
  Hashtbl.reset t.by_id;
  t.resurrected <- [];
  t.count <- 0

let iter f t =
  (* Iterate in sequence order: merge buffer and resurrected list. *)
  let res = ref t.resurrected in
  for i = t.head to t.tail - 1 do
    let s = slot_at t i in
    (match s.s_req with
    | Some _ ->
        (* Emit any resurrected entries older than this slot first. *)
        let rec drain () =
          match !res with
          | (rs, rslot) :: rest when rs < s.s_seq ->
              (match rslot.s_req with Some r -> f r | None -> ());
              res := rest;
              drain ()
          | _ -> ()
        in
        drain ();
        (match s.s_req with Some r -> f r | None -> ())
    | None -> ())
  done;
  List.iter (fun (_, s) -> match s.s_req with Some r -> f r | None -> ()) !res
