(** A bucket's pending-request queue (paper §3.2, §3.7).

    Properties the paper requires and this structure provides:
    - {b FIFO}: the oldest request is always proposed first (liveness of the
      induction in the SMR4 proof rests on this);
    - {b idempotent add}: a request is held at most once, no matter how many
      times the client retransmits it;
    - {b removal by identity}: requests leave the queue when proposed or when
      observed committed in someone else's batch;
    - {b resurrection}: a request whose proposal was aborted with ⊥ returns
      at its {e original} position in the arrival order (§3.2 "maintaining
      its reception order").

    Internally a map keyed by arrival sequence number plus an id index; all
    operations are O(log n). *)

type t

val create : unit -> t

val length : t -> int
val is_empty : t -> bool

val total_added : t -> int
(** Requests ever accepted by {!add} (observability counter). *)

val max_occupancy : t -> int
(** High-water mark of {!length} over the queue's lifetime. *)

val add : t -> seq:int -> Proto.Request.t -> bool
(** [add t ~seq r] inserts [r] with arrival-order key [seq] (assigned by the
    caller from a per-node counter).  Returns [false] — and changes
    nothing — when a request with the same id is already present.  (Whether
    the request was {e previously} delivered is tracked by the node, which
    filters such requests before calling [add].) *)

val mem : t -> Proto.Request.id -> bool

val remove : t -> Proto.Request.id -> Proto.Request.t option
(** Removes by identity; [None] when absent.  The returned request remembers
    its arrival key so it can be resurrected in place. *)

val resurrect : t -> seq:int -> Proto.Request.t -> unit
(** Re-insert a previously removed request at arrival key [seq] (its
    original one).  No-op if a request with the same id is present. *)

val peek_oldest : t -> Proto.Request.t option

val cut : t -> max:int -> Proto.Request.t array
(** Removes and returns up to [max] oldest requests — the batch-cutting
    primitive (Algorithm 2, cutBatch). *)

val oldest_seq : t -> int option
(** Arrival key of the oldest pending request (for age-based batching). *)

val clear : t -> unit
(** Drop every pending request (checkpoint jump: the queue may hold requests
    already delivered in the skipped history).  Arrival-key monotonicity and
    the observability counters survive. *)

val iter : (Proto.Request.t -> unit) -> t -> unit
