module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

type reply_quorum = [ `F_plus_one | `One ]

type pending = {
  request : Proto.Request.t;
  mutable repliers : Proto.Ids.node_id list;  (* distinct nodes that replied *)
  mutable retx : int;  (* retransmissions sent so far *)
  mutable not_before : Time_ns.t;  (* server-pushback retransmission floor *)
}

type t = {
  config : Config.t;
  id : Proto.Ids.client_id;
  engine : Engine.t;
  send : dst:int -> Proto.Message.t -> unit;
  sign : bool;
  retransmit : bool;
  retx_base : Time_ns.span;  (* first retransmission delay; doubles per try *)
  retx_max : Time_ns.span;  (* exponential-backoff ceiling *)
  jitter : float;  (* multiplicative backoff jitter amplitude, 0 = none *)
  retry_budget : int;  (* retransmissions before the client gives up *)
  on_give_up : Proto.Request.t -> unit;
  keypair : Iss_crypto.Signature.keypair;
  on_complete : Proto.Request.t -> latency:Time_ns.span -> unit;
  mutable next_ts : int;
  mutable floor : int;  (* lowest unconfirmed timestamp *)
  pending : (int, pending) Hashtbl.t;  (* ts -> *)
  mutable backlog : int;  (* requests wanted but blocked by the window *)
  mutable epoch : int;
  mutable bucket_leaders : Proto.Ids.node_id array option;
  bucket_update_votes : (int, (Proto.Ids.node_id, Proto.Ids.node_id array) Hashtbl.t) Hashtbl.t;
  rng : Sim.Rng.t;
  mutable open_loop_active : bool;
  mutable completed_count : int;
  mutable retx_count : int;
  mutable gave_up_count : int;
  mutable pushback_count : int;
}

let create ~config ~id ~engine ~send ?sign ?(retransmit = true) ?retx_base ?retx_max
    ?(jitter = 0.0) ?(retry_budget = max_int) ?(on_give_up = fun _ -> ())
    ?(on_complete = fun _ ~latency:_ -> ()) () =
  let sign = match sign with Some s -> s | None -> config.Config.client_signatures in
  (* Defaults scale with the deployment's failure-detection timeout: a reply
     can legitimately take a batch timeout plus a WAN round trip, so the
     first retry waits a sizeable fraction of the epoch-change timeout. *)
  let retx_base =
    match retx_base with
    | Some s -> s
    | None -> max (Time_ns.sec 1) (config.Config.epoch_change_timeout / 4)
  in
  let retx_max =
    match retx_max with Some s -> s | None -> 2 * config.Config.epoch_change_timeout
  in
  {
    config;
    id;
    engine;
    send;
    sign;
    retransmit;
    retx_base;
    retx_max;
    jitter;
    retry_budget = (if retry_budget < 0 then 0 else retry_budget);
    on_give_up;
    keypair = Iss_crypto.Signature.genkey ~id;
    on_complete;
    next_ts = 0;
    floor = 0;
    pending = Hashtbl.create 64;
    backlog = 0;
    epoch = 0;
    bucket_leaders = None;
    bucket_update_votes = Hashtbl.create 4;
    rng = Sim.Rng.create ~seed:(Int64.of_int ((id * 2654435761) + 17));
    open_loop_active = false;
    completed_count = 0;
    retx_count = 0;
    gave_up_count = 0;
    pushback_count = 0;
  }

let in_flight t = Hashtbl.length t.pending

let completed t = t.completed_count

let retransmissions t = t.retx_count

let gave_up t = t.gave_up_count

let pushbacks_received t = t.pushback_count

let reply_quorum t =
  match t.config.Config.protocol with
  | Config.Raft -> 1
  | Config.PBFT | Config.HotStuff -> Config.max_faulty t.config + 1

(* Targets per §4.3: the current leader of the request's bucket plus the
   projected initial owners for the next two epochs.  Before the first
   bucket update arrives, fall back to the epoch-0 projection. *)
let targets t (req : Proto.Request.t) =
  let num_buckets = Config.num_buckets t.config in
  let bucket = Proto.Request.bucket_of_id ~num_buckets req.id in
  let current =
    match t.bucket_leaders with
    | Some leaders -> leaders.(bucket)
    | None -> Node.projected_bucket_leader ~config:t.config ~epoch:t.epoch ~bucket
  in
  let next1 = Node.projected_bucket_leader ~config:t.config ~epoch:(t.epoch + 1) ~bucket in
  let next2 = Node.projected_bucket_leader ~config:t.config ~epoch:(t.epoch + 2) ~bucket in
  List.sort_uniq compare [ current; next1; next2 ]

let send_request t (req : Proto.Request.t) =
  List.iter (fun dst -> t.send ~dst (Proto.Message.Request_msg req)) (targets t req)

let window_has_room t = t.next_ts - t.floor < t.config.Config.client_watermark_window

(* Deterministic multiplicative jitter: scale a backoff delay by a uniform
   factor in [1-jitter, 1+jitter], drawn from the client's own seeded RNG.
   Clients created with identical backoff parameters therefore still
   desynchronize instead of retransmitting in lockstep storms.  With
   [jitter = 0.0] no random number is drawn at all — exact legacy timing. *)
let jittered t delay =
  if t.jitter <= 0.0 then delay
  else
    let f = 1.0 +. (t.jitter *. ((2.0 *. Sim.Rng.float t.rng 1.0) -. 1.0)) in
    Time_ns.of_sec_f (Time_ns.to_sec_f delay *. f)

(* Retransmission with jittered exponential backoff: while a request lacks
   its reply quorum, re-send it after ~[retx_base], then 2x, 4x, ... capped
   at [retx_max] (the jitter factor may overshoot the cap by its amplitude).
   The first retries go to the usual leader-detection targets (the request
   or a reply may simply have been dropped); after that the client stops
   guessing and blankets all nodes — whatever correct node currently leads
   the bucket is among them, which restores liveness even when every guessed
   target crashed.  Nodes deduplicate, so the only cost of a spurious
   retransmission is bandwidth.

   Two flow-control refinements: a [Busy] pushback raises the pending
   request's [not_before] floor, and a timer that fires early re-arms for
   the floor without consuming retry budget; once [retry_budget]
   retransmissions are spent, the client gives up the request — removing it
   from the window so later requests are not wedged behind it — and reports
   it via [on_give_up]. *)
let rec arm_retx t ts ~delay =
  ignore
    (Engine.schedule t.engine ~delay (fun () ->
         match Hashtbl.find_opt t.pending ts with
         | None -> ()  (* confirmed while the timer was pending *)
         | Some p ->
             let now = Engine.now t.engine in
             if now < p.not_before then
               (* Pushed back: honor the server-suggested floor; no send,
                  no budget spent. *)
               arm_retx t ts ~delay:(Time_ns.diff p.not_before now)
             else if p.retx >= t.retry_budget then begin
               Hashtbl.remove t.pending ts;
               t.gave_up_count <- t.gave_up_count + 1;
               t.on_give_up p.request;
               advance_floor t
             end
             else begin
               p.retx <- p.retx + 1;
               t.retx_count <- t.retx_count + 1;
               if p.retx >= 3 then
                 for dst = 0 to t.config.Config.n - 1 do
                   t.send ~dst (Proto.Message.Request_msg p.request)
                 done
               else send_request t p.request;
               arm_retx t ts ~delay:(jittered t (min (2 * delay) t.retx_max))
             end))

and submit_now t =
  let ts = t.next_ts in
  t.next_ts <- ts + 1;
  let req =
    Proto.Request.make ~client:t.id ~ts ~payload_size:t.config.Config.request_payload
      ~sig_data:(if t.sign then Proto.Request.Presumed true else Proto.Request.Unsigned)
      ~submitted_at:(Engine.now t.engine) ()
  in
  let req = if t.sign then Proto.Request.sign t.keypair req else req in
  Hashtbl.replace t.pending ts
    { request = req; repliers = []; retx = 0; not_before = Time_ns.zero };
  send_request t req;
  if t.retransmit then arm_retx t ts ~delay:(jittered t t.retx_base)

and drain_backlog t =
  while t.backlog > 0 && window_has_room t do
    t.backlog <- t.backlog - 1;
    submit_now t
  done

and advance_floor t =
  while t.floor < t.next_ts && not (Hashtbl.mem t.pending t.floor) do
    t.floor <- t.floor + 1
  done;
  drain_backlog t

let submit_next t =
  if window_has_room t then submit_now t else t.backlog <- t.backlog + 1

let handle_reply t ~src ~ts =
  match Hashtbl.find_opt t.pending ts with
  | None -> ()
  | Some p ->
      if not (List.mem src p.repliers) then begin
        p.repliers <- src :: p.repliers;
        if List.length p.repliers >= reply_quorum t then begin
          Hashtbl.remove t.pending ts;
          t.completed_count <- t.completed_count + 1;
          let latency =
            Time_ns.diff (Engine.now t.engine) p.request.Proto.Request.submitted_at
          in
          t.on_complete p.request ~latency;
          advance_floor t
        end
      end

(* Bucket updates are accepted once a quorum of nodes report the same
   assignment for an epoch (§4.3). *)
let handle_bucket_update t ~src ~epoch ~bucket_leaders =
  if epoch >= t.epoch then begin
    let votes =
      match Hashtbl.find_opt t.bucket_update_votes epoch with
      | Some v -> v
      | None ->
          let v = Hashtbl.create 8 in
          Hashtbl.replace t.bucket_update_votes epoch v;
          v
    in
    Hashtbl.replace votes src bucket_leaders;
    let matching =
      Hashtbl.fold (fun _ bl acc -> if bl = bucket_leaders then acc + 1 else acc) votes 0
    in
    if matching >= reply_quorum t && (epoch > t.epoch || t.bucket_leaders = None) then begin
      t.epoch <- epoch;
      t.bucket_leaders <- Some bucket_leaders;
      Hashtbl.remove t.bucket_update_votes epoch;
      (* Epoch transition: resubmit everything still unconfirmed (§4.3). *)
      Hashtbl.iter (fun _ p -> send_request t p.request) t.pending
    end
  end

let on_message t ~src msg =
  match msg with
  | Proto.Message.Reply { req_id; _ } ->
      if req_id.Proto.Request.client = t.id then handle_reply t ~src ~ts:req_id.Proto.Request.ts
  | Proto.Message.Busy { req_id; retry_after; shed = _ } ->
      if req_id.Proto.Request.client = t.id then begin
        match Hashtbl.find_opt t.pending req_id.Proto.Request.ts with
        | None -> ()
        | Some p ->
            t.pushback_count <- t.pushback_count + 1;
            let floor = Time_ns.add (Engine.now t.engine) retry_after in
            if floor > p.not_before then p.not_before <- floor
      end
  | Proto.Message.Bucket_update { epoch; bucket_leaders } ->
      handle_bucket_update t ~src ~epoch ~bucket_leaders
  | _ -> ()

let start_open_loop t ~rate ~until =
  assert (rate > 0.0);
  if not t.open_loop_active then begin
    t.open_loop_active <- true;
    let rec arm () =
      let gap = Sim.Rng.exponential t.rng ~mean:(1.0 /. rate) in
      ignore
        (Engine.schedule t.engine ~delay:(Time_ns.of_sec_f gap) (fun () ->
             if Engine.now t.engine <= until then begin
               submit_next t;
               arm ()
             end
             else t.open_loop_active <- false))
    in
    arm ()
  end
