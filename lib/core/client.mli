(** ISS clients (paper §4.3).

    A client submits signed requests with consecutive timestamps inside its
    watermark window.  Leader detection: it sends each request to the node
    currently leading the request's bucket — learned from quorum-confirmed
    [Bucket_update] messages — plus the two nodes projected (via the initial
    round-robin assignment) to own that bucket in the next two epochs.  At
    every epoch transition it resubmits all requests not yet confirmed by a
    reply quorum.

    Retransmission: while a request lacks its reply quorum the client
    re-sends it with exponential backoff (base doubling up to a ceiling);
    after a few unanswered tries it stops guessing bucket leaders and
    broadcasts to every node.  Nodes suppress duplicates, so retransmission
    trades bandwidth for liveness under message loss and node crashes. *)

type t

type reply_quorum = [ `F_plus_one | `One ]
(** BFT deployments need f+1 matching replies; CFT deployments accept one. *)

val create :
  config:Config.t ->
  id:Proto.Ids.client_id ->
  engine:Sim.Engine.t ->
  send:(dst:int -> Proto.Message.t -> unit) ->
  ?sign:bool ->
  ?retransmit:bool ->
  ?retx_base:Sim.Time_ns.span ->
  ?retx_max:Sim.Time_ns.span ->
  ?jitter:float ->
  ?retry_budget:int ->
  ?on_give_up:(Proto.Request.t -> unit) ->
  ?on_complete:(Proto.Request.t -> latency:Sim.Time_ns.span -> unit) ->
  unit ->
  t
(** [sign] (default from [config.client_signatures]) attaches real simulated
    signatures.  [on_complete] fires when the reply quorum is reached.
    [retransmit] (default [true]) enables exponential-backoff
    retransmission of unconfirmed requests; [retx_base] is the first retry
    delay (default: a quarter of the epoch-change timeout, at least 1 s)
    and [retx_max] the backoff ceiling (default: twice the epoch-change
    timeout).

    [jitter] scales every backoff delay by a uniform factor in
    [1-jitter, 1+jitter] drawn from the client's own seeded RNG, so clients
    with identical backoff parameters don't retransmit in lockstep (0.25 is
    a good value; overload deployments should set it).  The default 0.0
    draws no randomness and keeps exact legacy timing — existing
    deterministic schedules are pinned to it.

    [retry_budget] (default unlimited) bounds retransmissions per request:
    once spent, the client abandons the request (unblocking its watermark
    window) and reports it through [on_give_up].  A [Busy] pushback from a
    node defers the next retransmission to the server-suggested time
    without consuming budget. *)

val on_message : t -> src:int -> Proto.Message.t -> unit

val submit_next : t -> unit
(** Create and send the next request (timestamps are consecutive).  If the
    watermark window is exhausted (too many in flight), the request is
    queued locally and sent when space opens. *)

val start_open_loop : t -> rate:float -> until:Sim.Time_ns.t -> unit
(** Poisson arrivals at [rate] requests/s until the given time. *)

val in_flight : t -> int
val completed : t -> int

val retransmissions : t -> int
(** Total retransmissions sent (backoff timer firings). *)

val gave_up : t -> int
(** Requests abandoned after exhausting their retry budget. *)

val pushbacks_received : t -> int
(** [Busy] pushback messages accepted for a pending request. *)
