type protocol = PBFT | HotStuff | Raft

type leader_policy_kind =
  | Simple
  | Backoff
  | Blacklist
  | Fixed of Proto.Ids.node_id list
  | Straggler_aware

type shed_policy = Reject_new | Drop_oldest

type t = {
  protocol : protocol;
  n : int;
  leader_policy : leader_policy_kind;
  buckets_per_leader : int;
  max_batch_size : int;
  batch_rate : float option;
  min_batch_timeout : Sim.Time_ns.span;
  max_batch_timeout : Sim.Time_ns.span;
  min_epoch_length : int;
  min_segment_size : int;
  epoch_change_timeout : Sim.Time_ns.span;
  client_signatures : bool;
  request_payload : int;
  client_watermark_window : int;
  backoff_ban_period : int;
  backoff_decrease : int;
  cpu_parallelism : int;
  strict_validation : bool;
  log_retention_epochs : int;
  flow_control : bool;
  bucket_capacity : int;
  shed_policy : shed_policy;
  pushback_watermark : float;
  pushback_hint : Sim.Time_ns.span;
}

let num_buckets t = t.buckets_per_leader * t.n

let epoch_length t ~leaders = max t.min_epoch_length (leaders * t.min_segment_size)

let max_faulty t = Proto.Ids.max_faulty ~n:t.n
let strong_quorum t = Proto.Ids.quorum ~n:t.n

let base ~n ~protocol =
  {
    protocol;
    n;
    leader_policy = Blacklist;
    buckets_per_leader = 16;
    max_batch_size = 2048;
    batch_rate = Some 32.0;
    min_batch_timeout = 0;
    max_batch_timeout = Sim.Time_ns.sec 4;
    min_epoch_length = 256;
    min_segment_size = 2;
    epoch_change_timeout = Sim.Time_ns.sec 10;
    client_signatures = true;
    request_payload = 500;
    client_watermark_window = 512;
    backoff_ban_period = 4;
    backoff_decrease = 1;
    cpu_parallelism = 32;
    strict_validation = true;
    log_retention_epochs = 4;
    flow_control = false;
    bucket_capacity = 4096;
    shed_policy = Reject_new;
    pushback_watermark = 0.75;
    pushback_hint = Sim.Time_ns.ms 500;
  }

(* Table 1 presets. *)
let pbft_default ~n = base ~n ~protocol:PBFT

let hotstuff_default ~n =
  {
    (base ~n ~protocol:HotStuff) with
    max_batch_size = 4096;
    batch_rate = None;
    min_batch_timeout = 0;
    max_batch_timeout = 0;
    min_segment_size = 16;
  }

let raft_default ~n =
  {
    (base ~n ~protocol:Raft) with
    max_batch_size = 4096;
    min_segment_size = 16;
    (* Raft needs a batch timeout longer than a WAN round trip to avoid
       re-sending proposals before they are acknowledged (§6.2). *)
    min_batch_timeout = Sim.Time_ns.ms 600;
    client_signatures = false;
  }

let default_for protocol ~n =
  match protocol with
  | PBFT -> pbft_default ~n
  | HotStuff -> hotstuff_default ~n
  | Raft -> raft_default ~n

let validate t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n <= 0 then fail "n must be positive (got %d)" t.n
  else if t.protocol <> Raft && t.n < 4 && t.n <> 1 then
    fail "BFT protocols need n >= 4 (or n = 1 for local testing); got %d" t.n
  else if t.buckets_per_leader <= 0 then fail "buckets_per_leader must be positive"
  else if t.max_batch_size <= 0 then fail "max_batch_size must be positive"
  else if t.min_epoch_length <= 0 then fail "min_epoch_length must be positive"
  else if t.min_segment_size <= 0 then fail "min_segment_size must be positive"
  else if t.min_batch_timeout > t.max_batch_timeout && t.max_batch_timeout > 0 then
    fail "min_batch_timeout exceeds max_batch_timeout"
  else if t.epoch_change_timeout <= 0 then fail "epoch_change_timeout must be positive"
  else if t.client_watermark_window <= 0 then fail "client_watermark_window must be positive"
  else if t.cpu_parallelism <= 0 then fail "cpu_parallelism must be positive"
  else if t.log_retention_epochs <= 0 then fail "log_retention_epochs must be positive"
  else if (match t.batch_rate with Some r -> r <= 0.0 | None -> false) then
    fail "batch_rate must be positive when set"
  else if t.bucket_capacity <= 0 then fail "bucket_capacity must be positive"
  else if t.pushback_watermark <= 0.0 || t.pushback_watermark > 1.0 then
    fail "pushback_watermark must be in (0, 1] (got %g)" t.pushback_watermark
  else if t.pushback_hint <= 0 then fail "pushback_hint must be positive"
  else begin
    match t.leader_policy with
    | Fixed [] -> fail "Fixed leader policy needs at least one leader"
    | Fixed leaders when List.exists (fun l -> l < 0 || l >= t.n) leaders ->
        fail "Fixed leader policy contains an out-of-range node id"
    | Fixed _ | Simple | Backoff | Blacklist | Straggler_aware -> Ok ()
  end

let protocol_name = function PBFT -> "PBFT" | HotStuff -> "HotStuff" | Raft -> "Raft"

let shed_policy_name = function Reject_new -> "reject-new" | Drop_oldest -> "drop-oldest"

let policy_name = function
  | Simple -> "SIMPLE"
  | Backoff -> "BACKOFF"
  | Blacklist -> "BLACKLIST"
  | Fixed leaders -> Printf.sprintf "FIXED(%d leaders)" (List.length leaders)
  | Straggler_aware -> "STRAGGLER-AWARE"

let pp fmt t =
  Format.fprintf fmt
    "@[<v>protocol: %s@,n: %d@,policy: %s@,buckets/leader: %d@,max batch: \
     %d@,batch rate: %s@,batch timeout: [%a, %a]@,min epoch length: %d@,min \
     segment size: %d@,epoch change timeout: %a@,client signatures: %s@,flow \
     control: %s@]"
    (protocol_name t.protocol) t.n
    (policy_name t.leader_policy)
    t.buckets_per_leader t.max_batch_size
    (match t.batch_rate with Some r -> Printf.sprintf "%.0f b/s" r | None -> "unthrottled")
    Sim.Time_ns.pp t.min_batch_timeout Sim.Time_ns.pp t.max_batch_timeout t.min_epoch_length
    t.min_segment_size Sim.Time_ns.pp t.epoch_change_timeout
    (if t.client_signatures then "256-bit ECDSA (simulated)" else "none")
    (if t.flow_control then
       Printf.sprintf "on (cap=%d, %s, watermark=%.2f)" t.bucket_capacity
         (shed_policy_name t.shed_policy) t.pushback_watermark
     else "off")
