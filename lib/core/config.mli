(** ISS configuration (paper Table 1).

    One record gathers every knob the evaluation varies.  The per-protocol
    presets ({!pbft_default}, {!hotstuff_default}, {!raft_default}) encode
    the exact values of Table 1. *)

type protocol = PBFT | HotStuff | Raft

type leader_policy_kind =
  | Simple
  | Backoff
  | Blacklist
  | Fixed of Proto.Ids.node_id list
      (** Constant leader set; [Fixed [0]] turns ISS into the single-leader
          baseline protocol the paper compares against. *)
  | Straggler_aware
      (** Extension of BLACKLIST implementing the paper's §6.4.2 future-work
          suggestion: additionally ban leaders whose finished segments are
          conspicuously under-filled (mostly empty batches while other
          leaders ship full ones) — evidence that, unlike timing, is derived
          from the log and therefore identical at every correct node. *)

type shed_policy =
  | Reject_new  (** a full bucket refuses the incoming request *)
  | Drop_oldest
      (** a full bucket evicts its oldest unordered request to admit the
          incoming one (freshness over fairness) *)

type t = {
  protocol : protocol;
  n : int;  (** number of nodes *)
  leader_policy : leader_policy_kind;  (** paper default: BLACKLIST *)
  buckets_per_leader : int;  (** Table 1: 16; total buckets = 16·n *)
  max_batch_size : int;  (** requests per batch *)
  batch_rate : float option;
      (** total batches/s across all leaders (PBFT, Raft: 32);
          [None] = unthrottled (HotStuff) *)
  min_batch_timeout : Sim.Time_ns.span;
  max_batch_timeout : Sim.Time_ns.span;
      (** a leader proposes at the latest this long after its previous
          proposal, even if the batch is not full *)
  min_epoch_length : int;  (** sequence numbers per epoch, at least *)
  min_segment_size : int;
      (** per-leader floor: the epoch grows to [leaders · min_segment_size]
          when the minimum epoch length would make segments too short *)
  epoch_change_timeout : Sim.Time_ns.span;
      (** SB-level failure-detection timeout (PBFT view change /
          HotStuff pacemaker / Raft election base) *)
  client_signatures : bool;  (** Table 1: ECDSA for BFT, none for Raft *)
  request_payload : int;  (** bytes; 500 in the evaluation *)
  client_watermark_window : int;
      (** per-client in-flight request budget per epoch (§3.7) *)
  backoff_ban_period : int;  (** BACKOFF policy: initial ban, in epochs *)
  backoff_decrease : int;  (** BACKOFF: linear ban decrease per good epoch *)
  cpu_parallelism : int;
      (** effective cores for crypto work (the paper's nodes shard signature
          verification over 32 VCPUs) *)
  strict_validation : bool;
      (** When true (default), followers run the full per-request §4.2
          acceptance checks on every proposal.  Large fault-free benchmark
          runs disable it: with honest leaders the checks never fire, and
          skipping them removes the dominant per-request simulation cost
          (the {e simulated} CPU cost of verification is charged either
          way). *)
  log_retention_epochs : int;
      (** How many epochs of committed log entries a node keeps below its
          newest stable checkpoint before GC prunes them ({!Log.prune}).
          Bounds log memory in long runs; must cover the longest expected
          recovery lag, since pruned epochs can no longer be served to a
          catching-up peer via state transfer. *)
  flow_control : bool;
      (** Master switch for ingress admission control (default [false]).
          When off, every flow-control code path is skipped entirely so the
          simulation is bit-identical to a build without the feature —
          conformance fingerprints pin this. *)
  bucket_capacity : int;
      (** Maximum unordered requests a single bucket queue holds before the
          node sheds ([flow_control] only). *)
  shed_policy : shed_policy;  (** What to do when a bucket is full. *)
  pushback_watermark : float;
      (** Occupancy fraction of [bucket_capacity] at which the node starts
          sending advisory [Busy] pushback (before it actually sheds);
          in (0, 1]. *)
  pushback_hint : Sim.Time_ns.span;
      (** Base server-suggested backoff carried in [Busy] replies.  Scaled
          up with occupancy; doubled when the request was actually shed. *)
}

val num_buckets : t -> int
(** Total bucket count: [buckets_per_leader * n]. *)

val epoch_length : t -> leaders:int -> int
(** Length of an epoch led by [leaders] nodes:
    [max min_epoch_length (leaders * min_segment_size)]. *)

val max_faulty : t -> int
val strong_quorum : t -> int

val pbft_default : n:int -> t
val hotstuff_default : n:int -> t
val raft_default : n:int -> t
val default_for : protocol -> n:int -> t

val validate : t -> (unit, string) result
(** Sanity-checks parameter combinations (positive sizes, BFT resilience
    bound, etc.). *)

val pp : Format.formatter -> t -> unit
val protocol_name : protocol -> string
val policy_name : leader_policy_kind -> string
val shed_policy_name : shed_policy -> string
