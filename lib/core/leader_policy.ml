type state =
  | Simple
  | Backoff of { penalty : int array; ban_period : int; decrease : int }
  | Blacklist of { last_failure : int array; f : int }
  | Fixed of Proto.Ids.node_id array
  | Straggler_aware of { last_failure : int array; f : int }
      (** like Blacklist, but straggle evidence also counts as failure *)

type t = { n : int; state : state }

type leader_stats = {
  ls_leader : Proto.Ids.node_id;
  ls_batches : int;
  ls_empty : int;
  ls_requests : int;
}

let create (config : Config.t) =
  let n = config.Config.n in
  let state =
    match config.Config.leader_policy with
    | Config.Simple -> Simple
    | Config.Backoff ->
        Backoff
          {
            penalty = Array.make n 0;
            ban_period = config.Config.backoff_ban_period;
            decrease = config.Config.backoff_decrease;
          }
    | Config.Blacklist -> Blacklist { last_failure = Array.make n (-1); f = Config.max_faulty config }
    | Config.Fixed leaders -> Fixed (Array.of_list (List.sort_uniq compare leaders))
    | Config.Straggler_aware ->
        Straggler_aware { last_failure = Array.make n (-1); f = Config.max_faulty config }
  in
  { n; state }

(* Deterministic straggle rule: a leader straggles when the epoch's busiest
   leader shipped a substantial number of requests (so the system was under
   real load) while this leader shipped less than an eighth of that despite
   committing batches (so it was alive, just withholding). *)
let stragglers_of stats =
  let busiest = List.fold_left (fun acc s -> max acc s.ls_requests) 0 stats in
  if busiest < 256 then []
  else
    List.filter_map
      (fun s ->
        if s.ls_batches > 0 && s.ls_requests * 8 < busiest then Some s.ls_leader else None)
      stats

let epoch_finished t ~epoch ~failed ?(stats = []) () =
  match t.state with
  | Simple | Fixed _ -> ()
  | Blacklist { last_failure; _ } ->
      List.iter
        (fun (leader, sn) -> if sn > last_failure.(leader) then last_failure.(leader) <- sn)
        failed
  | Straggler_aware { last_failure; _ } ->
      (* Recency is tracked in epochs here: ⊥ evidence and straggle evidence
         land in the same scale. *)
      List.iter
        (fun (leader, _) -> if epoch > last_failure.(leader) then last_failure.(leader) <- epoch)
        failed;
      List.iter
        (fun leader -> if epoch > last_failure.(leader) then last_failure.(leader) <- epoch)
        (stragglers_of stats)
  | Backoff { penalty; ban_period; decrease } ->
      let failed_now = Array.make t.n false in
      List.iter (fun (leader, _) -> failed_now.(leader) <- true) failed;
      for i = 0 to t.n - 1 do
        if failed_now.(i) then
          (* Double an active ban; start a fresh one otherwise. *)
          penalty.(i) <- (if penalty.(i) > 0 then (penalty.(i) * 2) - 1 else ban_period)
        else if penalty.(i) > 0 then penalty.(i) <- max 0 (penalty.(i) - decrease)
      done

let leaders t ~epoch:_ =
  match t.state with
  | Simple -> Array.init t.n (fun i -> i)
  | Fixed leaders -> Array.copy leaders
  | Backoff { penalty; _ } ->
      let out = ref [] in
      for i = t.n - 1 downto 0 do
        if penalty.(i) <= 0 then out := i :: !out
      done;
      Array.of_list !out
  | Blacklist { last_failure; f } | Straggler_aware { last_failure; f } ->
      (* Ban the <= f nodes with the highest (most recent) failures. *)
      let offenders =
        List.init t.n (fun i -> i)
        |> List.filter (fun i -> last_failure.(i) >= 0)
        |> List.sort (fun a b -> compare last_failure.(b) last_failure.(a))
      in
      let banned = Array.make t.n false in
      List.iteri (fun rank i -> if rank < f then banned.(i) <- true) offenders;
      let out = ref [] in
      for i = t.n - 1 downto 0 do
        if not banned.(i) then out := i :: !out
      done;
      Array.of_list !out

(* Canonical textual snapshot of the mutable policy state.  Deterministic
   from the log at every correct node, so checkpoint signatures can cover it
   and a node adopting a checkpoint without replaying history can [restore]
   it.  Stateless policies snapshot to their kind alone. *)
let ints_to_csv a = String.concat "," (Array.to_list (Array.map string_of_int a))

let csv_to_ints s =
  if s = "" then [||]
  else Array.of_list (List.map int_of_string (String.split_on_char ',' s))

let snapshot t =
  match t.state with
  | Simple -> "simple"
  | Fixed leaders -> "fixed:" ^ ints_to_csv leaders
  | Backoff { penalty; _ } -> "backoff:" ^ ints_to_csv penalty
  | Blacklist { last_failure; _ } -> "blacklist:" ^ ints_to_csv last_failure
  | Straggler_aware { last_failure; _ } -> "straggler:" ^ ints_to_csv last_failure

let restore t s =
  let fail () = invalid_arg (Printf.sprintf "Leader_policy.restore: snapshot %S does not match the configured policy" s) in
  let payload prefix =
    let p = prefix ^ ":" in
    let pl = String.length p in
    if String.length s >= pl && String.sub s 0 pl = p then
      String.sub s pl (String.length s - pl)
    else fail ()
  in
  let restore_into dst prefix =
    let src = try csv_to_ints (payload prefix) with _ -> fail () in
    if Array.length src <> Array.length dst then fail ();
    Array.blit src 0 dst 0 (Array.length src)
  in
  match t.state with
  | Simple -> if s <> "simple" then fail ()
  | Fixed _ -> ignore (payload "fixed")  (* immutable; kind check only *)
  | Backoff { penalty; _ } -> restore_into penalty "backoff"
  | Blacklist { last_failure; _ } -> restore_into last_failure "blacklist"
  | Straggler_aware { last_failure; _ } -> restore_into last_failure "straggler"

let is_banned t node =
  match t.state with
  | Simple -> false
  | Fixed leaders -> not (Array.exists (fun l -> l = node) leaders)
  | Backoff { penalty; _ } -> penalty.(node) > 0
  | Blacklist _ | Straggler_aware _ ->
      not (Array.exists (fun l -> l = node) (leaders t ~epoch:0))
