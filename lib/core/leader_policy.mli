(** Leader selection policies (paper §3.4, Algorithm 4).

    A policy is evaluated locally and deterministically from information
    every correct node is guaranteed to share: the epoch number and the
    log contents up to the end of the previous epoch.  All nodes therefore
    compute identical leader sets without communicating.

    Failure evidence is the log itself: a ⊥ entry at a sequence number led
    by node [i] means [i]'s SB instance was aborted — [lastFailure(i)] is
    the highest such sequence number.

    - {b SIMPLE}: all nodes lead every epoch.
    - {b BACKOFF}: a suspected node is banned for a period that doubles on
      repeated failures and shrinks linearly while it behaves.
    - {b BLACKLIST} (the paper's default): ban the ≤ f most recently failed
      nodes, keeping at least 2f+1 leaders. *)

type t

type leader_stats = {
  ls_leader : Proto.Ids.node_id;
  ls_batches : int;  (** committed non-⊥ batches in the leader's segment *)
  ls_empty : int;  (** of which empty *)
  ls_requests : int;  (** requests the leader's segment shipped *)
}
(** Per-leader facts about a finished epoch, derived from the log (hence
    identical at every correct node). *)

val create : Config.t -> t

val epoch_finished :
  t ->
  epoch:int ->
  failed:(Proto.Ids.node_id * int) list ->
  ?stats:leader_stats list ->
  unit ->
  unit
(** Feed the policy the evidence of a completed epoch: [(leader, sn)] for
    every nil log entry, and (optionally) per-leader segment statistics —
    the STRAGGLER-AWARE policy bans leaders whose segments ship almost no
    requests while the epoch's busiest leaders ship full batches.  Must be
    called once per epoch, in epoch order. *)

val leaders : t -> epoch:int -> Proto.Ids.node_id array
(** Leader set for [epoch], sorted ascending.  May be empty only under
    BACKOFF (the paper: ISS skips such epochs); never empty under SIMPLE or
    BLACKLIST. *)

val snapshot : t -> string
(** Canonical textual snapshot of the policy's mutable state.  Identical at
    every correct node at the same epoch boundary (the state is a pure
    function of the log), so it can be covered by checkpoint signatures. *)

val restore : t -> string -> unit
(** Overwrite the policy state with a {!snapshot} taken at the same policy
    kind and cluster size.  Raises [Invalid_argument] on a mismatched
    snapshot.  Used when a node adopts a checkpoint without replaying the
    epochs that produced the state. *)

val is_banned : t -> Proto.Ids.node_id -> bool
(** Whether the node would be excluded from the next epoch's leader set
    (introspection for tests and metrics). *)
