type delivery = {
  request : Proto.Request.t;
  request_sn : int;
  batch_sn : int;
}

type t = {
  entries : (int, Proto.Proposal.t) Hashtbl.t;
  mutable first_undelivered : int;
  mutable total_delivered : int;
  mutable pruned_below : int;  (* lowest sn still retained; all below pruned *)
}

let create () =
  {
    entries = Hashtbl.create 1024;
    first_undelivered = 0;
    total_delivered = 0;
    pruned_below = 0;
  }

let commit t ~sn proposal =
  if sn < t.pruned_below then
    (* A late (re)commit of a position GC already pruned: the entry was
       delivered and discarded; re-inserting it would corrupt the
       committed-ahead accounting and slowly resurrect the pruned prefix. *)
    false
  else
  match Hashtbl.find_opt t.entries sn with
  | Some existing ->
      if Iss_crypto.Hash.equal (Proto.Proposal.digest existing) (Proto.Proposal.digest proposal)
      then false
      else
        invalid_arg
          (Printf.sprintf "Log.commit: conflicting proposals at sn %d (SB agreement violation)" sn)
  | None ->
      Hashtbl.replace t.entries sn proposal;
      true

let get t ~sn = Hashtbl.find_opt t.entries sn

let is_committed t ~sn = Hashtbl.mem t.entries sn

let first_undelivered t = t.first_undelivered

let total_delivered t = t.total_delivered

(* Delivery requires a contiguous committed prefix, so every retained
   position below the frontier — there are [first_undelivered -
   pruned_below] of them — is in [entries]; the difference counts positions
   committed ahead of the frontier. *)
let committed_ahead t =
  Hashtbl.length t.entries - (t.first_undelivered - t.pruned_below)

let pruned_below t = t.pruned_below

let prune t ~below_sn =
  (* Only delivered positions may go: entries at or past the frontier are
     still needed to deliver the contiguous prefix. *)
  let cut = min below_sn t.first_undelivered in
  let removed = ref 0 in
  for sn = t.pruned_below to cut - 1 do
    if Hashtbl.mem t.entries sn then begin
      Hashtbl.remove t.entries sn;
      incr removed
    end
  done;
  if cut > t.pruned_below then t.pruned_below <- cut;
  !removed

let jump t ~to_sn ~total_delivered =
  if to_sn > t.first_undelivered then begin
    (* Discard everything below the checkpoint (delivered or not — the
       quorum certificate supersedes it); entries committed ahead of the
       checkpoint stay and deliver normally once the frontier resumes. *)
    for sn = t.pruned_below to to_sn - 1 do
      Hashtbl.remove t.entries sn
    done;
    t.pruned_below <- to_sn;
    t.first_undelivered <- to_sn;
    t.total_delivered <- total_delivered
  end

let deliver_ready t ~on_batch =
  let delivered = ref 0 in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.entries t.first_undelivered with
    | None -> continue := false
    | Some proposal ->
        (match proposal with
        | Proto.Proposal.Nil -> ()
        | Proto.Proposal.Batch b ->
            let count = Proto.Batch.length b in
            if count > 0 then begin
              on_batch ~sn:t.first_undelivered ~first_request_sn:t.total_delivered b;
              t.total_delivered <- t.total_delivered + count;
              delivered := !delivered + count
            end);
        t.first_undelivered <- t.first_undelivered + 1
  done;
  !delivered

let range_complete t ~from_sn ~to_sn =
  let rec go sn = sn > to_sn || (Hashtbl.mem t.entries sn && go (sn + 1)) in
  go from_sn

let nil_entries t ~from_sn ~to_sn =
  let out = ref [] in
  for sn = to_sn downto from_sn do
    match Hashtbl.find_opt t.entries sn with
    | Some Proto.Proposal.Nil -> out := sn :: !out
    | Some (Proto.Proposal.Batch _) | None -> ()
  done;
  !out

let batch_digests t ~from_sn ~to_sn =
  Array.init
    (to_sn - from_sn + 1)
    (fun i ->
      match Hashtbl.find_opt t.entries (from_sn + i) with
      | Some p -> Proto.Proposal.digest p
      | None -> invalid_arg "Log.batch_digests: gap in range")
