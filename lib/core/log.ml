type delivery = {
  request : Proto.Request.t;
  request_sn : int;
  batch_sn : int;
}

type t = {
  entries : (int, Proto.Proposal.t) Hashtbl.t;
  mutable first_undelivered : int;
  mutable total_delivered : int;
}

let create () =
  { entries = Hashtbl.create 1024; first_undelivered = 0; total_delivered = 0 }

let commit t ~sn proposal =
  match Hashtbl.find_opt t.entries sn with
  | Some existing ->
      if Iss_crypto.Hash.equal (Proto.Proposal.digest existing) (Proto.Proposal.digest proposal)
      then false
      else
        invalid_arg
          (Printf.sprintf "Log.commit: conflicting proposals at sn %d (SB agreement violation)" sn)
  | None ->
      Hashtbl.replace t.entries sn proposal;
      true

let get t ~sn = Hashtbl.find_opt t.entries sn

let is_committed t ~sn = Hashtbl.mem t.entries sn

let first_undelivered t = t.first_undelivered

let total_delivered t = t.total_delivered

(* Entries are never removed and delivery requires a contiguous committed
   prefix, so every position below the frontier is in [entries]; the
   difference counts positions committed ahead of it. *)
let committed_ahead t = Hashtbl.length t.entries - t.first_undelivered

let deliver_ready t ~on_batch =
  let delivered = ref 0 in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.entries t.first_undelivered with
    | None -> continue := false
    | Some proposal ->
        (match proposal with
        | Proto.Proposal.Nil -> ()
        | Proto.Proposal.Batch b ->
            let count = Proto.Batch.length b in
            if count > 0 then begin
              on_batch ~sn:t.first_undelivered ~first_request_sn:t.total_delivered b;
              t.total_delivered <- t.total_delivered + count;
              delivered := !delivered + count
            end);
        t.first_undelivered <- t.first_undelivered + 1
  done;
  !delivered

let range_complete t ~from_sn ~to_sn =
  let rec go sn = sn > to_sn || (Hashtbl.mem t.entries sn && go (sn + 1)) in
  go from_sn

let nil_entries t ~from_sn ~to_sn =
  let out = ref [] in
  for sn = to_sn downto from_sn do
    match Hashtbl.find_opt t.entries sn with
    | Some Proto.Proposal.Nil -> out := sn :: !out
    | Some (Proto.Proposal.Batch _) | None -> ()
  done;
  !out

let batch_digests t ~from_sn ~to_sn =
  Array.init
    (to_sn - from_sn + 1)
    (fun i ->
      match Hashtbl.find_opt t.entries (from_sn + i) with
      | Some p -> Proto.Proposal.digest p
      | None -> invalid_arg "Log.batch_digests: gap in range")
