(** The contiguous replicated log (paper §2.3, Algorithm 1).

    Each position holds a committed proposal (batch or ⊥).  The log tracks
    the delivery frontier ([firstUndelivered]) and produces per-request
    sequence numbers per Eq. (2): request [k] of the batch at position [sn]
    is delivered with number [k + Σ_{i<sn} S_i] where [S_i] counts the
    requests committed at position [i]. *)

type t

type delivery = {
  request : Proto.Request.t;
  request_sn : int;  (** Eq. (2) global per-request sequence number *)
  batch_sn : int;  (** log position of the containing batch *)
}

val create : unit -> t

val commit : t -> sn:int -> Proto.Proposal.t -> bool
(** Record a committed proposal.  Returns [false] (no change) when the
    position is already filled — SB agreement makes double commits carry
    equal values, so dropping them is safe; disagreeing double commits
    raise [Invalid_argument] (they would mean an SB violation and tests
    want to hear about it).  Positions below {!pruned_below} are likewise
    dropped: they were delivered (or checkpoint-skipped) and GC'd, and a
    late retransmission must not resurrect them. *)

val get : t -> sn:int -> Proto.Proposal.t option

val is_committed : t -> sn:int -> bool

val first_undelivered : t -> int

val total_delivered : t -> int
(** Requests delivered so far (= next request sequence number). *)

val committed_ahead : t -> int
(** Positions committed at or beyond the delivery frontier — the commit
    queue depth the observability layer reports (batches waiting for a gap
    to fill before they can be delivered).  Robust to pruning. *)

val prune : t -> below_sn:int -> int
(** Drop entries below [below_sn] (clamped to the delivery frontier — only
    delivered positions are removable).  Returns the number of entries
    removed.  Node GC calls this for positions covered by an old-enough
    stable checkpoint, keeping long-running logs bounded; [get],
    [range_complete] and friends simply report pruned positions as absent
    (state transfer then declines to serve those epochs). *)

val pruned_below : t -> int
(** Lowest sequence number still retained; every position below it has been
    pruned (and was delivered first, or was skipped by a {!jump}). *)

val jump : t -> to_sn:int -> total_delivered:int -> unit
(** Fast-forward the delivery frontier to [to_sn] without delivering the
    skipped positions — the caller holds a quorum-signed checkpoint
    covering them.  [total_delivered] is the checkpoint's cumulative Eq. (2)
    request count, so numbering resumes exactly where the quorum left it.
    Skipped positions are discarded ([pruned_below] advances to [to_sn]);
    positions committed ahead of [to_sn] are kept and deliver normally.
    No-op when [to_sn] is not ahead of the frontier. *)

val deliver_ready :
  t -> on_batch:(sn:int -> first_request_sn:int -> Proto.Batch.t -> unit) -> int
(** Walk the frontier: deliver every committed batch at positions
    [firstUndelivered ..] until the first gap, invoking the callback once
    per non-⊥ batch in log order.  [first_request_sn] is the Eq. (2)
    sequence number of the batch's first request; request [k] of the batch
    has [first_request_sn + k].  Returns the number of {e requests}
    delivered in this call.  (Batch granularity keeps high-throughput
    simulations out of per-request callback overhead; callers needing
    per-request events iterate the batch themselves.) *)

val range_complete : t -> from_sn:int -> to_sn:int -> bool
(** All positions in [\[from_sn, to_sn\]] committed? *)

val nil_entries : t -> from_sn:int -> to_sn:int -> int list
(** Positions in the range holding ⊥ (failure evidence for the leader
    policies). *)

val batch_digests : t -> from_sn:int -> to_sn:int -> Iss_crypto.Hash.t array
(** Digests of the proposals in an (entirely committed) range — input to the
    checkpoint Merkle root.  Raises [Invalid_argument] on a gap. *)
