module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

type orderer_factory = Orderer_intf.ctx -> Segment.t -> Orderer_intf.instance

type batcher = {
  b_seg : Segment.t;
  b_interval : Time_ns.span;  (* rate-limit spacing between cuts (§4.4.1) *)
  waiting : (int * (Proto.Proposal.t -> unit)) Queue.t;
  mutable last_cut : Time_ns.t;
  mutable timer : Engine.timer_id option;
  mutable wake_at : Time_ns.t;  (* when [timer] fires; avoids re-arm churn *)
}

type epoch_state = {
  e_num : int;
  e_start : int;
  e_len : int;
  e_leaders : Proto.Ids.node_id array;
  e_segments : Segment.t list;
  e_bucket_leaders : Proto.Ids.node_id array;
  mutable e_remaining : int;  (* uncommitted sequence numbers of this epoch *)
}

type cp_vote = {
  v_max_sn : int;
  v_root : Iss_crypto.Hash.t;
  v_req_count : int;
  v_policy : string;
  v_sig : Iss_crypto.Signature.signature;
}

type cp_state = { cp_votes : (Proto.Ids.node_id, cp_vote) Hashtbl.t; mutable cp_stable : bool }

type t = {
  config : Config.t;
  id : Proto.Ids.node_id;
  engine : Engine.t;
  raw_send : dst:int -> Proto.Message.t -> unit;
  orderer_factory : orderer_factory;
  hooks : hooks;
  tracer : Obs.Tracer.t option;  (* request-lifecycle probe; None = zero cost *)
  keypair : Iss_crypto.Signature.keypair;
  threshold_group : Iss_crypto.Threshold.group;
  log : Log.t;
  buckets : Bucket_queue.t array;
  arrival_seq : (int, int) Hashtbl.t;  (* request id key -> arrival order *)
  mutable arrival_counter : int;
  seen_proposed : (int, int) Hashtbl.t;  (* id key -> sn accepted this epoch *)
  proposed : (int, Proto.Batch.t) Hashtbl.t;  (* sn -> batch I proposed *)
  watermarks : Watermarks.t;
  policy : Leader_policy.t;
  mutable epoch : epoch_state;
  orderers : (int, Orderer_intf.instance) Hashtbl.t;  (* instance id -> *)
  future_buffer : (int, (int * Proto.Message.t) list ref) Hashtbl.t;
  mutable my_batchers : batcher list;
  bucket_batcher : batcher option array;
  checkpoints : (int, cp_state) Hashtbl.t;
  stable_certs : (int, Proto.Message.checkpoint_cert) Hashtbl.t;
  epoch_bounds : (int, int * int) Hashtbl.t;  (* epoch -> (start sn, length) *)
  mutable cpu_free : Time_ns.t;
  mutable req_cum : int;
      (* requests delivered through the end of the last finished epoch —
         finish_epoch maintains it (Eq. (2) cumulative count for checkpoint
         certificates); a checkpoint jump overwrites it wholesale *)
  mutable locally_delivered : int;
      (* requests this node itself delivered — unlike Log.total_delivered it
         does not jump over state-transferred history, so it is the honest
         reading for the node.delivered metric *)
  mutable auth_failures : int;
      (* messages dropped at ingress because their authenticator failed —
         the Byzantine Corrupt_sig attack surfaces here *)
  mutable shed_count : int;
      (* requests dropped by flow-control admission (reject-new refusals
         plus drop-oldest evictions) *)
  mutable pushback_count : int;
      (* Busy pushback notifications issued, advisory and shedding alike *)
  mutable halted : bool;
  mutable straggler : bool;
  mutable st_target : int;  (* rotating state-transfer target *)
  mutable self_handler : src:int -> Proto.Message.t -> unit;  (* loopback knot *)
}

and hooks = {
  on_batch_deliver : t -> sn:int -> first_request_sn:int -> Proto.Batch.t -> unit;
  on_deliver : (t -> Log.delivery -> unit) option;
  on_duplicate : (t -> Proto.Request.t -> unit) option;
  on_epoch_start :
    t ->
    epoch:int ->
    leaders:Proto.Ids.node_id array ->
    bucket_leaders:Proto.Ids.node_id array ->
    unit;
  epoch_gate : (t -> epoch:int -> (unit -> unit) -> unit) option;
  on_pushback : (t -> Proto.Request.t -> retry_after:Time_ns.span -> shed:bool -> unit) option;
      (* Fired whenever the node would send a Busy pushback for a request:
         [shed = true] means the request was dropped (refused at admission,
         or evicted by drop-oldest), [shed = false] is the advisory
         watermark warning.  The cluster harness uses it to route pushback
         to modeled clients, which have no wire channel of their own. *)
}

let default_hooks =
  {
    on_batch_deliver = (fun _ ~sn:_ ~first_request_sn:_ _ -> ());
    on_deliver = None;
    on_duplicate = None;
    on_epoch_start = (fun _ ~epoch:_ ~leaders:_ ~bucket_leaders:_ -> ());
    epoch_gate = None;
    on_pushback = None;
  }

(* ------------------------------------------------------------------ *)
(* Accessors *)

let id t = t.id
let config t = t.config
let current_epoch t = t.epoch.e_num
let log t = t.log
let is_halted t = t.halted
let delivered_count t = t.locally_delivered
let auth_failures t = t.auth_failures
let shed_count t = t.shed_count
let pushback_count t = t.pushback_count
let epoch_leaders t = t.epoch.e_leaders
let bucket_leader t ~bucket = t.epoch.e_bucket_leaders.(bucket)
let set_straggler t b = t.straggler <- b

let projected_bucket_leader ~config ~epoch ~bucket = (bucket + epoch) mod config.Config.n

let pending_requests t = Array.fold_left (fun acc q -> acc + Bucket_queue.length q) 0 t.buckets

let active_instances t = Hashtbl.length t.orderers

let bucket_queue_added t = Array.fold_left (fun acc q -> acc + Bucket_queue.total_added q) 0 t.buckets

let bucket_queue_max_occupancy t =
  Array.fold_left (fun acc q -> Stdlib.max acc (Bucket_queue.max_occupancy q)) 0 t.buckets

let checkpoint_lag t =
  (* Epochs between the newest stable checkpoint this node holds and the
     epoch it is working in.  A caught-up node has certificates through
     epoch e-1 while in epoch e, i.e. lag 0. *)
  let best = Hashtbl.fold (fun e _ acc -> Stdlib.max e acc) t.stable_certs (-1) in
  Stdlib.max 0 (t.epoch.e_num - 1 - best)

let last_stable_checkpoint t =
  (* Deterministic by construction: reduce to the maximum epoch key, then
     look it up.  A fold picking "the" maximal value would depend on hash
     iteration order if two entries ever compared equal. *)
  let best = Hashtbl.fold (fun e _ acc -> Stdlib.max e acc) t.stable_certs (-1) in
  if best < 0 then None else Hashtbl.find_opt t.stable_certs best

(* ------------------------------------------------------------------ *)
(* Lifecycle tracing (DESIGN.md §8).

   Every site is guarded by [t.tracer]; an uninstrumented run pays one
   pointer comparison per site and allocates nothing.  SB-broadcast is
   detected on the wire — the first send of a message carrying the batch's
   proposal — so the cut -> broadcast gap reflects real leader-side work
   (CPU charges, batcher scheduling) for every ordering protocol without
   instrumenting the orderers themselves. *)

let trace_event t phase (r : Proto.Request.t) =
  match t.tracer with
  | None -> ()
  | Some tr -> Obs.Tracer.event tr ~req:(Proto.Request.id_key r.id) ~node:t.id phase

let trace_batch_once tr ~node phase batch =
  Proto.Batch.iter
    (fun (r : Proto.Request.t) ->
      Obs.Tracer.event_once tr ~req:(Proto.Request.id_key r.id) ~node phase)
    batch

let trace_proposal_send t msg =
  match t.tracer with
  | None -> ()
  | Some tr -> (
      match msg with
      | Proto.Message.Pbft
          {
            Proto.Pbft_msg.body =
              Proto.Pbft_msg.Preprepare { proposal = Proto.Proposal.Batch b; _ };
            _;
          } ->
          trace_batch_once tr ~node:t.id Obs.Tracer.Sb_broadcast b
      | Proto.Message.Hotstuff
          {
            Proto.Hotstuff_msg.body =
              Proto.Hotstuff_msg.Proposal_msg { proposal = Proto.Proposal.Batch b; _ };
            _;
          } ->
          trace_batch_once tr ~node:t.id Obs.Tracer.Sb_broadcast b
      | Proto.Message.Raft
          { Proto.Raft_msg.body = Proto.Raft_msg.Append_entries { entries; _ }; _ } ->
          List.iter
            (fun (e : Proto.Raft_msg.entry) ->
              match e.Proto.Raft_msg.proposal with
              | Proto.Proposal.Batch b ->
                  trace_batch_once tr ~node:t.id Obs.Tracer.Sb_broadcast b
              | Proto.Proposal.Nil -> ())
            entries
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Plumbing *)

let send t ~dst msg =
  trace_proposal_send t msg;
  if dst = t.id then
    (* Loopback: bypass the NIC, keep a small scheduling delay so local
       delivery stays asynchronous (as a channel to self would be). *)
    ignore
      (Engine.schedule t.engine ~delay:(Time_ns.us 10) (fun () ->
           if not t.halted then t.self_handler ~src:t.id msg))
  else t.raw_send ~dst msg

let broadcast t msg =
  for dst = 0 to t.config.Config.n - 1 do
    send t ~dst msg
  done

let charge_cpu t cost k =
  let effective = cost / t.config.Config.cpu_parallelism in
  let start = max (Engine.now t.engine) t.cpu_free in
  let done_at = Time_ns.add start effective in
  t.cpu_free <- done_at;
  ignore (Engine.schedule_at t.engine ~at:done_at (fun () -> if not t.halted then k ()))

(* Horizon-only variant for fire-and-forget CPU accounting (no event). *)
let charge_cpu_sync t cost =
  let effective = cost / t.config.Config.cpu_parallelism in
  t.cpu_free <- Time_ns.add (max (Engine.now t.engine) t.cpu_free) effective

let cp_quorum t =
  match t.config.Config.protocol with
  | Config.Raft -> Proto.Ids.majority ~n:t.config.Config.n
  | Config.PBFT | Config.HotStuff -> Proto.Ids.quorum ~n:t.config.Config.n

let epoch_of_instance t instance = instance / t.config.Config.n

(* ------------------------------------------------------------------ *)
(* Request intake (§3.7) *)

let request_acceptable t (r : Proto.Request.t) =
  (* Duplicate suppression for retransmitting clients: refuse copies of
     requests already committed (watermarks) and copies of requests already
     accepted into an in-flight proposal this epoch (seen_proposed) — a
     retransmission re-entering the queues while the original sits in an
     undecided batch would make this node cut it into a second batch, which
     honest followers must then reject wholesale. *)
  (not (Watermarks.delivered t.watermarks r.id))
  && (not (Hashtbl.mem t.seen_proposed (Proto.Request.id_key r.id)))
  && ((not t.config.Config.client_signatures) || Proto.Request.signature_valid r)
  (* Relaxed mode (large benchmarks) skips only the watermark-window
     back-pressure check; the dedup above stays on in both modes. *)
  && ((not t.config.Config.strict_validation) || Watermarks.valid t.watermarks r.id)

(* Flow-control pushback: count it, notify the harness hook.  The wire-level
   Busy reply is sent by whoever wired the node to real clients (the node
   itself has no channel back to the modeled workload). *)
let note_pushback t (r : Proto.Request.t) ~retry_after ~shed =
  if shed then t.shed_count <- t.shed_count + 1;
  t.pushback_count <- t.pushback_count + 1;
  match t.hooks.on_pushback with Some f -> f t r ~retry_after ~shed | None -> ()

(* Admission control (flow_control only).  Returns whether [r] may be added
   to [q]; sheds — the incoming request (Reject_new) or the oldest queued
   one (Drop_oldest) — when the bucket is at capacity.  A request already
   present is always "admitted": Bucket_queue.add is a no-op for it, and
   shedding a retransmission's victim would punish an unrelated request. *)
let admit_request t q (r : Proto.Request.t) =
  let cfg = t.config in
  (not cfg.Config.flow_control)
  || Bucket_queue.length q < cfg.Config.bucket_capacity
  || Bucket_queue.mem q r.Proto.Request.id
  ||
  let shed_hint = 2 * cfg.Config.pushback_hint in
  match cfg.Config.shed_policy with
  | Config.Reject_new ->
      note_pushback t r ~retry_after:shed_hint ~shed:true;
      false
  | Config.Drop_oldest ->
      Array.iter
        (fun victim -> note_pushback t victim ~retry_after:shed_hint ~shed:true)
        (Bucket_queue.cut q ~max:1);
      true

let rec submit t (r : Proto.Request.t) =
  if t.halted then ()
  else if Watermarks.delivered t.watermarks r.id then begin
    (* A retransmission of a request this node already delivered: §4.3 has
       the replica answer it from its reply cache, or the client could
       starve when every original reply was lost in transit. *)
    match t.hooks.on_duplicate with Some f -> f t r | None -> ()
  end
  else if request_acceptable t r then begin
    let key = Proto.Request.id_key r.id in
    let bucket = Proto.Request.bucket_of_id ~num_buckets:(Config.num_buckets t.config) r.id in
    let q = t.buckets.(bucket) in
    if admit_request t q r then begin
      let seq =
        match Hashtbl.find_opt t.arrival_seq key with
        | Some s -> s  (* retransmission: keep the original arrival order *)
        | None ->
            let s = t.arrival_counter in
            t.arrival_counter <- s + 1;
            Hashtbl.replace t.arrival_seq key s;
            s
      in
      if Bucket_queue.add q ~seq r then begin
        trace_event t Obs.Tracer.Enqueue r;
        if t.config.Config.client_signatures then
          charge_cpu_sync t Iss_crypto.Signature.verify_cost_ns;
        if t.config.Config.flow_control then begin
          (* Watermark backpressure: warn the client before shedding starts,
             with a hint that grows as the bucket fills. *)
          let occ = Bucket_queue.length q in
          let cap = t.config.Config.bucket_capacity in
          if float_of_int occ >= t.config.Config.pushback_watermark *. float_of_int cap
          then
            note_pushback t r
              ~retry_after:(max 1 (t.config.Config.pushback_hint * occ / cap))
              ~shed:false
        end;
        match t.bucket_batcher.(bucket) with
        | Some b -> try_cut t b
        | None -> ()
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Batching: the propose() logic of Algorithm 2 plus the paper's
   rate-limiting (§4.4.1) and the straggler behaviour of §6.4.2. *)

and segment_pending t (seg : Segment.t) =
  List.fold_left (fun acc b -> acc + Bucket_queue.length t.buckets.(b)) 0 seg.Segment.buckets

and cut_segment_batch t (seg : Segment.t) =
  (* k-way merge: repeatedly take the globally oldest request across the
     segment's bucket queues (cutBatch of Algorithm 2). *)
  let max_size = t.config.Config.max_batch_size in
  let out = ref [] in
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count < max_size do
    let best = ref None in
    List.iter
      (fun b ->
        match Bucket_queue.oldest_seq t.buckets.(b) with
        | Some s -> (
            match !best with
            | Some (s', _) when s' <= s -> ()
            | _ -> best := Some (s, b))
        | None -> ())
      seg.Segment.buckets;
    match !best with
    | None -> continue := false
    | Some (_, b) -> (
        match Bucket_queue.cut t.buckets.(b) ~max:1 with
        | [| r |] ->
            out := r :: !out;
            incr count
        | _ -> continue := false)
  done;
  Proto.Batch.make (Array.of_list (List.rev !out))

and try_cut t (b : batcher) =
  if (not t.halted) && not (Queue.is_empty b.waiting) then begin
    let now = Engine.now t.engine in
    let interval =
      if t.straggler then t.config.Config.epoch_change_timeout / 2 else b.b_interval
    in
    let ready_at = Time_ns.add b.last_cut interval in
    let pending = if t.straggler then 0 else segment_pending t b.b_seg in
    let full = pending >= t.config.Config.max_batch_size in
    let mbt = t.config.Config.max_batch_timeout in
    let deadline = Time_ns.add b.last_cut (max interval mbt) in
    (* pending = 0: nothing worth proposing; an empty keep-alive batch goes
       out only every [keepalive] (PBFT primary behaviour, §4.2.1), except
       under a zero batch timeout (HotStuff) where the pipeline must keep
       moving. *)
    let keepalive = max interval (t.config.Config.epoch_change_timeout / 2) in
    let cut_now =
      now >= ready_at
      &&
      if t.straggler then true
      else if pending = 0 then mbt = 0 || now >= Time_ns.add b.last_cut keepalive
      else mbt = 0 || full || now >= deadline
    in
    if cut_now then begin
      let sn, callback = Queue.pop b.waiting in
      let batch = if t.straggler then Proto.Batch.empty else cut_segment_batch t b.b_seg in
      (match t.tracer with
      | Some tr -> trace_batch_once tr ~node:t.id Obs.Tracer.Cut batch
      | None -> ());
      b.last_cut <- now;
      Hashtbl.replace t.proposed sn batch;
      Proto.Batch.iter
        (fun r -> Hashtbl.replace t.seen_proposed (Proto.Request.id_key r.Proto.Request.id) sn)
        batch;
      (match b.timer with
      | Some timer ->
          Engine.cancel t.engine timer;
          b.timer <- None
      | None -> ());
      callback (Proto.Proposal.Batch batch);
      try_cut t b
    end
    else begin
      let wake =
        if now < ready_at then ready_at
        else if pending = 0 && mbt > 0 then Time_ns.add b.last_cut keepalive
        else deadline
      in
      (* Re-arm only when the required wake precedes the armed one (e.g. the
         batch just became full); otherwise the pending timer re-evaluates
         anyway.  This keeps arrival-driven pokes allocation-free. *)
      let needs_rearm =
        match b.timer with Some _ -> wake < b.wake_at | None -> true
      in
      if needs_rearm then begin
        (match b.timer with Some timer -> Engine.cancel t.engine timer | None -> ());
        b.wake_at <- wake;
        b.timer <-
          Some
            (Engine.schedule t.engine ~delay:(Time_ns.diff wake now) (fun () ->
                 b.timer <- None;
                 try_cut t b))
      end
    end
  end

let request_batch t (b : batcher) ~sn callback =
  Queue.push (sn, callback) b.waiting;
  try_cut t b

(* ------------------------------------------------------------------ *)
(* Proposal validation — the follower-side checks of §4.2 (common design
   principle 3). *)

let validate_proposal t (seg : Segment.t) ~sn proposal =
  match proposal with
  | Proto.Proposal.Nil -> Orderer_intf.Accept
  | Proto.Proposal.Batch _ when not t.config.Config.strict_validation ->
      (* Relaxed mode for large fault-free benchmarks: trust the leader; the
         simulated verification CPU cost is still charged by the orderer. *)
      Orderer_intf.Accept
  | Proto.Proposal.Batch batch ->
      (* O(1) bucket-ownership check: a bucket belongs to this segment iff
         the epoch's assignment maps it to the segment's leader.  Falls back
         to the segment's own list for instances of older epochs. *)
      let owns_bucket =
        if seg.Segment.epoch = t.epoch.e_num then fun bucket ->
          t.epoch.e_bucket_leaders.(bucket) = seg.Segment.leader
        else fun bucket -> Segment.owns_bucket seg bucket
      in
      (* Single optimistic pass: check and record each request; honest
         leaders never fail, so the rollback (un-recording what this call
         added) only runs on actual violations.  Failures split into two
         classes: a bad request signature or an out-of-bucket request is
         {e provable} misbehaviour (an honest leader cannot cut either), so
         the verdict is [Reject_malicious]; duplicate/stale/overflowing
         requests could come from an honest-but-lagging leader, so they stay
         a plain [Reject]. *)
      let verdict = ref Orderer_intf.Accept in
      let recorded = ref [] in
      (try
         Proto.Batch.iter
           (fun (r : Proto.Request.t) ->
             let key = Proto.Request.id_key r.id in
             let bucket =
               Proto.Request.bucket_of_id ~num_buckets:(Config.num_buckets t.config) r.id
             in
             let seen_ok =
               match Hashtbl.find_opt t.seen_proposed key with
               | Some sn' -> sn' = sn
               | None ->
                   Hashtbl.replace t.seen_proposed key sn;
                   recorded := key :: !recorded;
                   true
             in
             (* (a) request validity: a forged client signature proves the
                leader fabricated or tampered with the request. *)
             if t.config.Config.client_signatures && not (Proto.Request.signature_valid r)
             then begin
               verdict := Orderer_intf.Reject_malicious;
               raise Exit
             end;
             (* (c) maps to one of the segment's buckets: §4.2 principle 3 —
                a request outside the segment's buckets can only appear if
                the leader ignored the epoch's bucket assignment. *)
             if not (owns_bucket bucket) then begin
               verdict := Orderer_intf.Reject_malicious;
               raise Exit
             end;
             if
               (not seen_ok)
               || not (Watermarks.valid t.watermarks r.id)
               (* (b) not committed in an earlier epoch *)
               || Watermarks.delivered t.watermarks r.id
             then begin
               verdict := Orderer_intf.Reject;
               raise Exit
             end)
           batch
       with Exit -> ());
      if !verdict <> Orderer_intf.Accept then
        List.iter (Hashtbl.remove t.seen_proposed) !recorded;
      !verdict

(* ------------------------------------------------------------------ *)
(* Commit path: SB-DELIVER -> log -> delivery -> epoch advancement *)

let resurrect t (batch : Proto.Batch.t) =
  Proto.Batch.iter
    (fun (r : Proto.Request.t) ->
      let key = Proto.Request.id_key r.id in
      if not (Watermarks.delivered t.watermarks r.id) then begin
        let bucket = Proto.Request.bucket_of_id ~num_buckets:(Config.num_buckets t.config) r.id in
        let q = t.buckets.(bucket) in
        (* Resurrection goes through the same admission gate as submit, so
           bounded occupancy stays a structural invariant even when an
           aborted batch returns while the bucket has refilled. *)
        if admit_request t q r then begin
          let seq =
            match Hashtbl.find_opt t.arrival_seq key with Some s -> s | None -> t.arrival_counter
          in
          Bucket_queue.resurrect q ~seq r;
          match t.bucket_batcher.(bucket) with Some b -> try_cut t b | None -> ()
        end
      end)
    batch

let rec process_commit t ~sn proposal ~resurrectable =
  if Log.commit t.log ~sn proposal then begin
    (match (t.tracer, proposal) with
    | Some tr, Proto.Proposal.Batch batch ->
        Proto.Batch.iter
          (fun (r : Proto.Request.t) ->
            Obs.Tracer.event tr ~req:(Proto.Request.id_key r.id) ~node:t.id Obs.Tracer.Commit)
          batch
    | _ -> ());
    (match proposal with
    | Proto.Proposal.Batch batch ->
        let strict = t.config.Config.strict_validation in
        Proto.Batch.iter
          (fun (r : Proto.Request.t) ->
            if strict then begin
              Watermarks.note_delivered t.watermarks r.id;
              Hashtbl.remove t.arrival_seq (Proto.Request.id_key r.id);
              let bucket =
                Proto.Request.bucket_of_id ~num_buckets:(Config.num_buckets t.config) r.id
              in
              ignore (Bucket_queue.remove t.buckets.(bucket) r.id)
            end
            else begin
              (* Relaxed: record delivery (cheap ring bitmap — this is what
                 rejects re-submitted copies of committed requests) and
                 evict the request if this node holds it; non-holders pay
                 one hash probe. *)
              Watermarks.note_delivered t.watermarks r.id;
              let bucket =
                Proto.Request.bucket_of_id ~num_buckets:(Config.num_buckets t.config) r.id
              in
              match Bucket_queue.remove t.buckets.(bucket) r.id with
              | Some _ -> Hashtbl.remove t.arrival_seq (Proto.Request.id_key r.id)
              | None -> ()
            end)
          batch
    | Proto.Proposal.Nil -> (
        (* If I proposed a batch for this position and ⊥ was delivered
           instead, return the requests to their queues (Algorithm 1
           line 47). *)
        if resurrectable then
          match Hashtbl.find_opt t.proposed sn with
          | Some mine -> resurrect t mine
          | None -> ()));
    (* Deliver the contiguous prefix. *)
    t.locally_delivered <-
      t.locally_delivered
      + Log.deliver_ready t.log ~on_batch:(fun ~sn ~first_request_sn batch ->
           (match t.tracer with
           | Some tr ->
               Proto.Batch.iter
                 (fun (r : Proto.Request.t) ->
                   Obs.Tracer.event tr ~req:(Proto.Request.id_key r.id) ~node:t.id
                     Obs.Tracer.Deliver)
                 batch
           | None -> ());
           t.hooks.on_batch_deliver t ~sn ~first_request_sn batch;
           match t.hooks.on_deliver with
           | Some f ->
               let reqs = Proto.Batch.requests batch in
               Array.iteri
                 (fun k request ->
                   f t { Log.request; request_sn = first_request_sn + k; batch_sn = sn })
                 reqs
           | None -> ());
    (* Epoch bookkeeping. *)
    let e = t.epoch in
    if sn >= e.e_start && sn < e.e_start + e.e_len then begin
      e.e_remaining <- e.e_remaining - 1;
      if e.e_remaining = 0 then finish_epoch t
    end
  end

(* ------------------------------------------------------------------ *)
(* Epoch lifecycle (Algorithm 1 lines 50-52, Algorithm 3) *)

and finish_epoch t =
  let e = t.epoch in
  (* Failure evidence: ⊥ entries, attributed to their segment leaders. *)
  let nils = Log.nil_entries t.log ~from_sn:e.e_start ~to_sn:(e.e_start + e.e_len - 1) in
  let num_leaders = Array.length e.e_leaders in
  let failed =
    List.map (fun sn -> (e.e_leaders.((sn - e.e_start) mod num_leaders), sn)) nils
  in
  (* Per-leader segment statistics for the STRAGGLER-AWARE policy (cheap:
     one pass over the epoch's log entries, identical at every node). *)
  let batches = Array.make num_leaders 0 in
  let empties = Array.make num_leaders 0 in
  let requests = Array.make num_leaders 0 in
  for sn = e.e_start to e.e_start + e.e_len - 1 do
    let k = (sn - e.e_start) mod num_leaders in
    match Log.get t.log ~sn with
    | Some (Proto.Proposal.Batch b) ->
        batches.(k) <- batches.(k) + 1;
        let len = Proto.Batch.length b in
        if len = 0 then empties.(k) <- empties.(k) + 1;
        requests.(k) <- requests.(k) + len
    | Some Proto.Proposal.Nil | None -> ()
  done;
  let stats =
    List.init num_leaders (fun k ->
        {
          Leader_policy.ls_leader = e.e_leaders.(k);
          ls_batches = batches.(k);
          ls_empty = empties.(k);
          ls_requests = requests.(k);
        })
  in
  Leader_policy.epoch_finished t.policy ~epoch:e.e_num ~failed ~stats ();
  (* Eq. (2) cumulative request count through this epoch's end: the epoch's
     own total is the per-leader sum just computed.  (Log.total_delivered
     can already include later epochs' requests when state transfer
     committed ahead, so it is not usable here.) *)
  t.req_cum <- t.req_cum + Array.fold_left ( + ) 0 requests;
  (* Checkpoint (§3.5): sign the Merkle root over the epoch's batches,
     together with the request count and the leader-policy state — both
     deterministic from the log, so all correct nodes sign identical
     material and a lagging node can adopt them wholesale (checkpoint
     jump) when the history itself has been pruned everywhere.  The policy
     snapshot is taken before the leaderless-epoch skip below so a restoring
     node replays the skip itself. *)
  let digests = Log.batch_digests t.log ~from_sn:e.e_start ~to_sn:(e.e_start + e.e_len - 1) in
  let root = Iss_crypto.Merkle.root digests in
  let max_sn = e.e_start + e.e_len - 1 in
  let req_count = t.req_cum in
  let policy = Leader_policy.snapshot t.policy in
  let material = Proto.Message.checkpoint_material ~epoch:e.e_num ~max_sn ~root ~req_count ~policy in
  let sig_ = Iss_crypto.Signature.sign t.keypair material in
  charge_cpu t Iss_crypto.Signature.sign_cost_ns (fun () -> ());
  broadcast t
    (Proto.Message.Checkpoint_msg
       { epoch = e.e_num; max_sn; root; req_count; policy; signer = t.id; sig_ });
  advance_epoch t ~finished:e.e_num ~start_sn:(e.e_start + e.e_len)

and advance_epoch t ~finished ~start_sn =
  (* Find the next epoch with a non-empty leader set (BACKOFF can produce
     leaderless epochs; the paper skips them), then enter it.  Also the
     re-entry point after a checkpoint jump. *)
  let next = ref (finished + 1) in
  let leaders = ref (Leader_policy.leaders t.policy ~epoch:!next) in
  let guard = ref 0 in
  while Array.length !leaders = 0 do
    incr guard;
    if !guard > 100_000 then failwith "Node: leader policy yields no leaders indefinitely";
    Leader_policy.epoch_finished t.policy ~epoch:!next ~failed:[] ();
    Hashtbl.replace t.epoch_bounds !next (start_sn, 0);
    incr next;
    leaders := Leader_policy.leaders t.policy ~epoch:!next
  done;
  let next = !next and leaders = !leaders in
  let proceed () = start_epoch t ~epoch:next ~start_sn ~leaders in
  match t.hooks.epoch_gate with
  | Some gate -> gate t ~epoch:next proceed
  | None -> proceed ()

and start_epoch t ~epoch ~start_sn ~leaders =
  if not t.halted then begin
    let segments = Segment.make_epoch ~config:t.config ~epoch ~start_sn ~leaders in
    let len = Config.epoch_length t.config ~leaders:(Array.length leaders) in
    let bucket_leaders =
      Bucket_assignment.assign ~n:t.config.Config.n
        ~num_buckets:(Config.num_buckets t.config)
        ~epoch ~leaders
    in
    Hashtbl.replace t.epoch_bounds epoch (start_sn, len);
    Hashtbl.reset t.seen_proposed;
    (* Some positions may already be committed (state transfer outran the
       epoch machinery); count only the genuinely open ones. *)
    let remaining = ref 0 in
    for sn = start_sn to start_sn + len - 1 do
      if not (Log.is_committed t.log ~sn) then incr remaining
    done;
    t.epoch <-
      {
        e_num = epoch;
        e_start = start_sn;
        e_len = len;
        e_leaders = leaders;
        e_segments = segments;
        e_bucket_leaders = bucket_leaders;
        e_remaining = !remaining;
      };
    (* Tear down batchers of the previous epoch. *)
    List.iter
      (fun b -> match b.timer with Some timer -> Engine.cancel t.engine timer | None -> ())
      t.my_batchers;
    t.my_batchers <- [];
    Array.fill t.bucket_batcher 0 (Array.length t.bucket_batcher) None;
    (* Instantiate one SB orderer per segment; set up batchers for mine. *)
    let num_leaders = Array.length leaders in
    let interval =
      match t.config.Config.batch_rate with
      | Some rate ->
          max t.config.Config.min_batch_timeout
            (Time_ns.of_sec_f (float_of_int num_leaders /. rate))
      | None -> t.config.Config.min_batch_timeout
    in
    List.iter
      (fun (seg : Segment.t) ->
        if seg.Segment.leader = t.id then begin
          let b =
            {
              b_seg = seg;
              b_interval = interval;
              waiting = Queue.create ();
              last_cut = Engine.now t.engine;
              timer = None;
              wake_at = Time_ns.zero;
            }
          in
          t.my_batchers <- b :: t.my_batchers;
          List.iter (fun bucket -> t.bucket_batcher.(bucket) <- Some b) seg.Segment.buckets
        end)
      segments;
    List.iter
      (fun (seg : Segment.t) ->
        let ctx = make_ctx t seg in
        let instance = t.orderer_factory ctx seg in
        Hashtbl.replace t.orderers seg.Segment.instance instance;
        Orderer_intf.start instance)
      segments;
    t.hooks.on_epoch_start t ~epoch ~leaders ~bucket_leaders;
    if t.epoch.e_remaining = 0 then finish_epoch t;
    (* GC instances of epochs whose checkpoint stabilized while we were
       still catching up. *)
    gc_stable t;
    (* Replay messages that arrived before we entered this epoch. *)
    (match Hashtbl.find_opt t.future_buffer epoch with
    | Some msgs ->
        let replay = List.rev !msgs in
        Hashtbl.remove t.future_buffer epoch;
        List.iter (fun (src, msg) -> handle_message t ~src msg) replay
    | None -> ());
    arm_lag_check t
  end

and make_ctx t (seg : Segment.t) : Orderer_intf.ctx =
  let batcher =
    if seg.Segment.leader = t.id then
      List.find_opt (fun b -> b.b_seg.Segment.instance = seg.Segment.instance) t.my_batchers
    else None
  in
  {
    Orderer_intf.node = t.id;
    config = t.config;
    engine = t.engine;
    send = (fun ~dst msg -> send t ~dst msg);
    broadcast = (fun msg -> broadcast t msg);
    announce = (fun ~sn proposal -> process_commit t ~sn proposal ~resurrectable:true);
    request_batch =
      (fun ~sn callback ->
        match batcher with
        | Some b -> request_batch t b ~sn callback
        | None -> invalid_arg "Orderer requested a batch on a non-leader node");
    charge_cpu = (fun cost k -> charge_cpu t cost k);
    keypair = t.keypair;
    threshold_group = t.threshold_group;
    report_suspect = (fun _ -> ());
    validate_proposal = (fun seg ~sn proposal -> validate_proposal t seg ~sn proposal);
  }

(* ------------------------------------------------------------------ *)
(* Checkpoints (§3.5) *)

and handle_checkpoint t ~epoch ~max_sn ~root ~req_count ~policy ~signer ~sig_ =
  let material = Proto.Message.checkpoint_material ~epoch ~max_sn ~root ~req_count ~policy in
  if Iss_crypto.Signature.verify (Iss_crypto.Signature.public_of_id signer) material sig_ then begin
    let cp =
      match Hashtbl.find_opt t.checkpoints epoch with
      | Some cp -> cp
      | None ->
          let cp = { cp_votes = Hashtbl.create 8; cp_stable = false } in
          Hashtbl.replace t.checkpoints epoch cp;
          cp
    in
    if not (Hashtbl.mem cp.cp_votes signer) then begin
      Hashtbl.replace cp.cp_votes signer
        { v_max_sn = max_sn; v_root = root; v_req_count = req_count; v_policy = policy; v_sig = sig_ };
      if not cp.cp_stable then begin
        let matching =
          Hashtbl.fold
            (fun node v acc ->
              if
                v.v_max_sn = max_sn
                && Iss_crypto.Hash.equal v.v_root root
                && v.v_req_count = req_count && v.v_policy = policy
              then (node, v.v_sig) :: acc
              else acc)
            cp.cp_votes []
        in
        if List.length matching >= cp_quorum t then begin
          cp.cp_stable <- true;
          (* Sort the certificate's signer list by node id: [matching] came
             out of a Hashtbl fold whose order reflects each node's own
             vote-arrival history, and the certificate travels (state
             transfer) — downstream choices such as {!pick_st_target} must
             not inherit a per-node-history order. *)
          let matching = List.sort (fun (a, _) (b, _) -> compare a b) matching in
          Hashtbl.replace t.stable_certs epoch
            {
              Proto.Message.cc_epoch = epoch;
              cc_max_sn = max_sn;
              cc_root = root;
              cc_req_count = req_count;
              cc_policy = policy;
              cc_sigs = matching;
            };
          gc_stable t
        end
      end
    end
  end

and gc_stable t =
  (* Garbage-collect orderer instances of epochs that are both behind us and
     covered by a stable checkpoint. *)
  let current = t.epoch.e_num in
  let to_remove = ref [] in
  Hashtbl.iter
    (fun instance _ ->
      let e = epoch_of_instance t instance in
      if e < current && Hashtbl.mem t.stable_certs e then to_remove := instance :: !to_remove)
    t.orderers;
  List.iter
    (fun instance ->
      (match Hashtbl.find_opt t.orderers instance with
      | Some inst -> Orderer_intf.stop inst
      | None -> ());
      Hashtbl.remove t.orderers instance)
    !to_remove;
  prune_log t

and prune_log t =
  (* Prune committed entries of epochs at least [log_retention_epochs]
     behind the newest stable checkpoint: a quorum signed off on them long
     ago and recent peers have moved past them, so retaining the full
     history would grow memory without bound in long runs.  The retained
     window is what this node can still serve via state transfer; a peer
     that lagged further behind simply asks the next target.  Proposer-side
     batch copies ([proposed]) and checkpoint vote accumulators of the
     pruned epochs go with them. *)
  let best = Hashtbl.fold (fun e _ acc -> Stdlib.max e acc) t.stable_certs (-1) in
  let horizon = best - t.config.Config.log_retention_epochs in
  if horizon >= 0 then begin
    (* Newest stable certificate at or below the horizon bounds the cut. *)
    let cut_epoch =
      Hashtbl.fold
        (fun e _ acc -> if e <= horizon then Stdlib.max e acc else acc)
        t.stable_certs (-1)
    in
    if cut_epoch >= 0 then begin
      let cert = Hashtbl.find t.stable_certs cut_epoch in
      (* Never prune into the current epoch: [finish_epoch] still reads the
         whole range for statistics and the checkpoint Merkle root, and a
         lagging node can hold stable certificates for epochs at or ahead
         of the one it is working in ([Log.prune] additionally clamps to
         the delivery frontier). *)
      let cut_sn = min (cert.Proto.Message.cc_max_sn + 1) t.epoch.e_start in
      if Log.pruned_below t.log < min cut_sn (Log.first_undelivered t.log) then begin
        ignore (Log.prune t.log ~below_sn:cut_sn);
        let cut_sn = Log.pruned_below t.log in
        let stale_sns =
          Hashtbl.fold (fun sn _ acc -> if sn < cut_sn then sn :: acc else acc) t.proposed []
        in
        List.iter (Hashtbl.remove t.proposed) stale_sns;
        let stale_epochs =
          Hashtbl.fold
            (fun e _ acc -> if e <= cut_epoch then e :: acc else acc)
            t.checkpoints []
        in
        List.iter (Hashtbl.remove t.checkpoints) stale_epochs
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* State transfer (§3.5) *)

and arm_lag_check t =
  let epoch_at_arm = t.epoch.e_num in
  ignore
    (Engine.schedule t.engine ~delay:(2 * t.config.Config.epoch_change_timeout) (fun () ->
         if (not t.halted) && t.epoch.e_num = epoch_at_arm then begin
           (* Still in the same epoch after two epoch-change timeouts; if
              the rest of the system has moved on — evidenced by a stable
              checkpoint for our epoch or any later one (nodes rebroadcast
              nothing for long-finished epochs, so a laggard typically only
              collects certificates of newer epochs) — fetch the log
              instead of waiting. *)
           let best =
             Hashtbl.fold
               (fun e _ acc -> if e >= epoch_at_arm then Stdlib.max e acc else acc)
               t.stable_certs (-1)
           in
           let evidence = if best < 0 then None else Hashtbl.find_opt t.stable_certs best in
           match evidence with
           | Some cert ->
               let target = pick_st_target t cert in
               send t ~dst:target (Proto.Message.State_request { from_sn = t.epoch.e_start });
               arm_lag_check t
           | None -> arm_lag_check t
         end))

and pick_st_target t (cert : Proto.Message.checkpoint_cert) =
  (* Explicitly sort by node id: certificates built before signer lists were
     canonicalized (or received from such a node) carry fold-ordered
     signers, and the rotation below must not depend on that history. *)
  let signers =
    List.sort_uniq compare (List.filter (fun s -> s <> t.id) (List.map fst cert.cc_sigs))
  in
  let signers = Array.of_list signers in
  if Array.length signers = 0 then (t.id + 1) mod t.config.Config.n
  else begin
    t.st_target <- t.st_target + 1;
    signers.(t.st_target mod Array.length signers)
  end

and handle_state_request t ~src ~from_sn =
  (* Answer with every stable epoch that covers [from_sn] onwards, each as a
     self-contained (entries, certificate) pair, in epoch order — iterating
     the Hashtbl directly would put replies on the wire in an
     insertion-history order that differs across nodes.  Epochs pruned from
     the log ({!Log.prune}) fail [range_complete] and are skipped. *)
  let epochs = Hashtbl.fold (fun e _ acc -> e :: acc) t.stable_certs [] in
  (* When GC already pruned part of what the requester asks for, no amount
     of target rotation can recover it once every peer has pruned too.
     Offer a checkpoint snapshot first (an entry-less reply): the oldest
     stable certificate whose successor position we still retain, so the
     requester loses as little history as possible and the entry replies
     below connect seamlessly.  Sent before the entries so the requester
     jumps, then fills in from there. *)
  let pruned = Log.pruned_below t.log in
  if from_sn < pruned then begin
    let jump_cert =
      List.fold_left
        (fun acc e ->
          let cert = Hashtbl.find t.stable_certs e in
          if cert.Proto.Message.cc_max_sn + 1 >= pruned then
            match acc with
            | Some (best : Proto.Message.checkpoint_cert) when best.cc_max_sn <= cert.cc_max_sn ->
                acc
            | Some _ | None -> Some cert
          else acc)
        None (List.sort compare epochs)
    in
    match jump_cert with
    | Some cert -> send t ~dst:src (Proto.Message.State_reply { entries = []; cert })
    | None -> ()
  end;
  List.iter
    (fun epoch ->
      let cert = Hashtbl.find t.stable_certs epoch in
      match Hashtbl.find_opt t.epoch_bounds epoch with
      | Some (start, len) when len > 0 && start + len - 1 >= from_sn ->
          if Log.range_complete t.log ~from_sn:start ~to_sn:(start + len - 1) then begin
            let entries =
              List.init len (fun i ->
                  let sn = start + i in
                  match Log.get t.log ~sn with
                  | Some p -> (sn, p)
                  | None -> assert false)
            in
            send t ~dst:src (Proto.Message.State_reply { entries; cert })
          end
      | Some _ | None -> ())
    (List.sort compare epochs)

and handle_state_reply t ~entries ~(cert : Proto.Message.checkpoint_cert) =
  (* Verify the certificate: a quorum of valid signatures over the announced
     root, and the entries actually hash to that root. *)
  let material =
    Proto.Message.checkpoint_material ~epoch:cert.cc_epoch ~max_sn:cert.cc_max_sn
      ~root:cert.cc_root ~req_count:cert.cc_req_count ~policy:cert.cc_policy
  in
  let valid_sigs =
    List.filter
      (fun (node, s) ->
        Iss_crypto.Signature.verify (Iss_crypto.Signature.public_of_id node) material s)
      cert.cc_sigs
  in
  let distinct = List.sort_uniq compare (List.map fst valid_sigs) in
  if List.length distinct >= cp_quorum t then begin
    match entries with
    | [] -> jump_to_checkpoint t cert
    | _ :: _ ->
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) entries in
    let digests = Array.of_list (List.map (fun (_, p) -> Proto.Proposal.digest p) sorted) in
    let contiguous =
      match sorted with
      | [] -> false
      | (first, _) :: _ ->
          List.for_all2
            (fun (sn, _) i -> sn = first + i)
            sorted
            (List.init (List.length sorted) (fun i -> i))
          && first + List.length sorted - 1 = cert.cc_max_sn
    in
    if contiguous && Iss_crypto.Hash.equal (Iss_crypto.Merkle.root digests) cert.cc_root then begin
      (* Adopt the certificate (so we can serve it onwards) and commit. *)
      if not (Hashtbl.mem t.stable_certs cert.cc_epoch) then begin
        Hashtbl.replace t.stable_certs cert.cc_epoch cert;
        (match sorted with
        | (first, _) :: _ ->
            Hashtbl.replace t.epoch_bounds cert.cc_epoch (first, List.length sorted)
        | [] -> ())
      end;
      List.iter (fun (sn, p) -> process_commit t ~sn p ~resurrectable:false) sorted
    end
  end

and jump_to_checkpoint t (cert : Proto.Message.checkpoint_cert) =
  (* Adopt a quorum-signed checkpoint without the history behind it: the
     serving peer (and, transitively, everyone) pruned those epochs, so
     replay is impossible.  Fast-forward everything the skipped epochs
     would have produced: log frontier, Eq. (2) request numbering and the
     leader-policy state (all covered by the certificate's signatures),
     then re-enter the epoch machinery right after the checkpoint.

     The caller verified the quorum.  Per-client watermark floors cannot be
     reconstructed (the skipped requests are gone); they self-heal through
     the ring-overflow degrade path as post-jump deliveries arrive, which
     only makes this node temporarily stricter/looser as a validator —
     never a source of double delivery (the log positions themselves stay
     exactly-once). *)
  let to_sn = cert.Proto.Message.cc_max_sn + 1 in
  if to_sn > Log.first_undelivered t.log then begin
    Log.jump t.log ~to_sn ~total_delivered:cert.cc_req_count;
    t.req_cum <- cert.cc_req_count;
    Leader_policy.restore t.policy cert.cc_policy;
    Hashtbl.replace t.stable_certs cert.cc_epoch cert;
    (* Everything buffered before the jump refers to skipped history:
       in-flight proposals, per-epoch vote accumulators and the orderer
       instances of abandoned epochs (all instances are from epochs <= the
       certificate's — later ones cannot have started yet).  Queued client
       requests may include ones delivered in the skipped range; clients
       whose requests reached their reply quorum stop retransmitting, so
       dropping the queues loses nothing that retransmission or another
       leader does not recover. *)
    Hashtbl.iter (fun _ inst -> Orderer_intf.stop inst) t.orderers;
    Hashtbl.reset t.orderers;
    Hashtbl.reset t.proposed;
    Hashtbl.reset t.seen_proposed;
    Hashtbl.reset t.arrival_seq;
    Array.iter Bucket_queue.clear t.buckets;
    let stale_epochs =
      Hashtbl.fold
        (fun e _ acc -> if e <= cert.cc_epoch then e :: acc else acc)
        t.checkpoints []
    in
    List.iter (Hashtbl.remove t.checkpoints) stale_epochs;
    List.iter
      (fun b -> match b.timer with Some timer -> Engine.cancel t.engine timer | None -> ())
      t.my_batchers;
    t.my_batchers <- [];
    advance_epoch t ~finished:cert.cc_epoch ~start_sn:to_sn
  end

(* ------------------------------------------------------------------ *)
(* Message dispatch *)

and handle_message t ~src msg =
  if not t.halted then begin
    match msg with
    | Proto.Message.Request_msg r -> submit t r
    | Proto.Message.Checkpoint_msg { epoch; max_sn; root; req_count; policy; signer; sig_ } ->
        handle_checkpoint t ~epoch ~max_sn ~root ~req_count ~policy ~signer ~sig_
    | Proto.Message.State_request { from_sn } -> handle_state_request t ~src ~from_sn
    | Proto.Message.State_reply { entries; cert } -> handle_state_reply t ~entries ~cert
    | Proto.Message.Pbft { instance; _ }
    | Proto.Message.Hotstuff { instance; _ }
    | Proto.Message.Raft { instance; _ } ->
        route_instance t ~src ~instance msg
    | Proto.Message.Garbled _ ->
        (* Ingress authentication (SB's authenticated channels): a message
           whose authenticator fails verification is dropped before any
           protocol handler sees it.  The sender — necessarily faulty, since
           honest nodes sign correctly — thereby silences itself: its
           instances stop making progress, view changes fill its slots with
           ⊥, and the leader policy bans it on that log evidence. *)
        t.auth_failures <- t.auth_failures + 1
    | Proto.Message.Reply _ | Proto.Message.Busy _ | Proto.Message.Bucket_update _
    | Proto.Message.Fd_heartbeat | Proto.Message.Mir_epoch_change _ ->
        ()
  end

and route_instance t ~src ~instance msg =
  let msg_epoch = epoch_of_instance t instance in
  if msg_epoch > t.epoch.e_num then begin
    let buf =
      match Hashtbl.find_opt t.future_buffer msg_epoch with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.replace t.future_buffer msg_epoch b;
          b
    in
    buf := (src, msg) :: !buf
  end
  else begin
    match Hashtbl.find_opt t.orderers instance with
    | Some inst -> Orderer_intf.on_message inst ~src msg
    | None -> ()  (* instance already garbage-collected; late message *)
  end

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ~config ~id ~engine ~send:raw_send ~orderer_factory ?(hooks = default_hooks) ?tracer
    () =
  (match Config.validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Node.create: " ^ e));
  let num_buckets = Config.num_buckets config in
  let n = config.Config.n in
  let f = Config.max_faulty config in
  let t =
    {
      config;
      id;
      engine;
      raw_send;
      orderer_factory;
      hooks;
      tracer;
      keypair = Iss_crypto.Signature.genkey ~id;
      threshold_group = Iss_crypto.Threshold.setup ~n ~t:(min n ((2 * f) + 1));
      log = Log.create ();
      buckets = Array.init num_buckets (fun _ -> Bucket_queue.create ());
      arrival_seq = Hashtbl.create 65536;
      arrival_counter = 0;
      seen_proposed = Hashtbl.create 65536;
      proposed = Hashtbl.create 64;
      watermarks = Watermarks.create ~window:config.Config.client_watermark_window;
      policy = Leader_policy.create config;
      epoch =
        {
          e_num = -1;
          e_start = 0;
          e_len = 0;
          e_leaders = [||];
          e_segments = [];
          e_bucket_leaders = [||];
          e_remaining = max_int;
        };
      orderers = Hashtbl.create 64;
      future_buffer = Hashtbl.create 8;
      my_batchers = [];
      bucket_batcher = Array.make num_buckets None;
      checkpoints = Hashtbl.create 16;
      stable_certs = Hashtbl.create 16;
      epoch_bounds = Hashtbl.create 16;
      cpu_free = Time_ns.zero;
      req_cum = 0;
      locally_delivered = 0;
      auth_failures = 0;
      shed_count = 0;
      pushback_count = 0;
      halted = false;
      straggler = false;
      st_target = 0;
      self_handler = (fun ~src:_ _ -> ());
    }
  in
  t.self_handler <- (fun ~src msg -> handle_message t ~src msg);
  t

let start t =
  let leaders = Leader_policy.leaders t.policy ~epoch:0 in
  if Array.length leaders = 0 then invalid_arg "Node.start: no leaders for epoch 0";
  start_epoch t ~epoch:0 ~start_sn:0 ~leaders

let on_message t ~src msg = handle_message t ~src msg

let halt t =
  t.halted <- true;
  List.iter
    (fun b -> match b.timer with Some timer -> Engine.cancel t.engine timer | None -> ())
    t.my_batchers

let recover t =
  if t.halted then begin
    t.halted <- false;
    let now = Engine.now t.engine in
    (* The CPU backlog died with the process. *)
    t.cpu_free <- now;
    (* Restart batching for the segments this node leads in its current
       epoch: halt cancelled the timers, and pending cut requests from the
       orderers are still queued in [b.waiting]. *)
    List.iter
      (fun b ->
        b.last_cut <- now;
        b.timer <- None;
        try_cut t b)
      t.my_batchers;
    (* Catch up proactively: ask f+1 distinct peers for everything that
       stabilized while we were down (at least one of them is correct and
       has it).  Epochs arrive as self-contained (entries, certificate)
       replies and are committed through the normal state-transfer path,
       which re-runs the epoch machinery so the node rejoins its segments.
       The lag check keeps firing until the node draws level. *)
    let n = t.config.Config.n in
    let peers = min (n - 1) (Config.max_faulty t.config + 1) in
    for k = 1 to peers do
      send t
        ~dst:((t.id + k) mod n)
        (Proto.Message.State_request { from_sn = Log.first_undelivered t.log })
    done;
    arm_lag_check t
  end
