(** An ISS replica: the Manager/Orderer assembly of paper §4.1.

    The node owns the log, the bucket queues, epoch advancement, leader
    selection, batching (with rate limiting), checkpointing and state
    transfer.  Ordering itself is delegated to per-segment SB instances
    created through an {!orderer_factory} — this is where PBFT, HotStuff or
    Raft plug in.

    The node is transport-agnostic: it receives a [send] function and
    exposes {!on_message}; the runner wires both to the simulated network
    (or a test can call them directly). *)

type t

type orderer_factory = Orderer_intf.ctx -> Segment.t -> Orderer_intf.instance

type hooks = {
  on_batch_deliver : t -> sn:int -> first_request_sn:int -> Proto.Batch.t -> unit;
      (** Fired once per non-empty batch as the delivery frontier passes it,
          in log order.  Request [k] of the batch has global request
          sequence number [first_request_sn + k] (Eq. 2).  This is the
          high-throughput measurement hook. *)
  on_deliver : (t -> Log.delivery -> unit) option;
      (** Optional per-request delivery events, derived from the batch hook
          (reply to a client, execute against an application state machine).
          [None] skips the per-request iteration entirely. *)
  on_duplicate : (t -> Proto.Request.t -> unit) option;
      (** Fired when a submitted request is refused because this node already
          delivered it — a client retransmission whose replies were lost.
          §4.3 replicas answer from their reply cache here; a deployment
          that sends replies from [on_deliver] should re-send one. *)
  on_epoch_start :
    t -> epoch:int -> leaders:Proto.Ids.node_id array -> bucket_leaders:Proto.Ids.node_id array -> unit;
      (** Fired when the node enters an epoch; [bucket_leaders.(b)] is the
          leader bucket [b] is assigned to (what §4.3 broadcasts to
          clients). *)
  epoch_gate : (t -> epoch:int -> (unit -> unit) -> unit) option;
      (** When set, epoch [e > 0] only starts once the gate invokes the
          continuation — the hook the Mir-BFT model uses to stall epoch
          transitions behind an epoch primary.  [None]: start immediately. *)
  on_pushback :
    (t -> Proto.Request.t -> retry_after:Sim.Time_ns.span -> shed:bool -> unit) option;
      (** Fired when flow control pushes back on a request ([Busy] on the
          wire): [shed = true] means the request was dropped at admission
          (or evicted by the drop-oldest policy), [shed = false] is the
          advisory watermark warning — the request is still queued.
          [retry_after] is the server-suggested backoff floor.  The runner
          routes this to modeled clients, which have no wire channel. *)
}

val default_hooks : hooks

val create :
  config:Config.t ->
  id:Proto.Ids.node_id ->
  engine:Sim.Engine.t ->
  send:(dst:int -> Proto.Message.t -> unit) ->
  orderer_factory:orderer_factory ->
  ?hooks:hooks ->
  ?tracer:Obs.Tracer.t ->
  unit ->
  t
(** [tracer] installs the request-lifecycle probe (DESIGN.md §8): the node
    records enqueue / cut / SB-broadcast / commit / deliver events for
    sampled requests.  Omitted (the default), every instrumentation site
    reduces to one pointer comparison and the run is bit-identical to an
    untraced one. *)

val start : t -> unit
(** Enter epoch 0 and begin ordering. *)

val on_message : t -> src:int -> Proto.Message.t -> unit

val submit : t -> Proto.Request.t -> unit
(** Local request injection — what a [Request_msg] arrival does, minus the
    network.  The runner's modeled clients use this; the full client path
    goes through {!on_message}. *)

val halt : t -> unit
(** Crash the node: it stops reacting to messages and timers.  (The runner
    additionally severs its network endpoint.) *)

val recover : t -> unit
(** Crash-recovery: un-halt the node and rejoin the cluster.  The node keeps
    its pre-crash durable state (log, checkpoints, queues — the crash model
    is fail-recover with stable storage), restarts its batchers, and
    catches up on everything it missed by requesting state transfer from
    f+1 peers; the standard lag check then keeps pulling stabilized epochs
    until it draws level and participates normally again.  No-op when not
    halted.  (The runner must also {!Sim.Network.recover} its endpoint.) *)

val is_halted : t -> bool

val set_straggler : t -> bool -> unit
(** Byzantine straggler mode (§6.4.2): the node delays its proposals to just
    under the suspicion timeout and proposes empty batches, while following
    the protocol otherwise. *)

(** {2 Introspection} *)

val id : t -> Proto.Ids.node_id
val config : t -> Config.t
val current_epoch : t -> int
val log : t -> Log.t
val pending_requests : t -> int
(** Requests currently queued in this node's buckets. *)

val active_instances : t -> int
(** Live SB orderer instances (not yet garbage-collected by a stable
    checkpoint) — the obs instance-count gauge. *)

val bucket_queue_added : t -> int
(** Requests ever accepted into this node's bucket queues. *)

val bucket_queue_max_occupancy : t -> int
(** Highest occupancy any single bucket queue of this node has reached. *)

val checkpoint_lag : t -> int
(** Epochs between the newest stable checkpoint this node holds and the
    epoch it is working in; 0 when fully caught up. *)

val delivered_count : t -> int
(** Requests this node itself delivered.  Not [Log.total_delivered]: a
    checkpoint jump fast-forwards the log's cumulative count over
    state-transferred history this node never executed, which must not be
    reported as the node's own deliveries. *)

val auth_failures : t -> int
(** Messages dropped at ingress because their authenticator failed
    verification ({!Proto.Message.Garbled}) — evidence of a Byzantine
    sender on an authenticated channel. *)

val shed_count : t -> int
(** Requests this node's flow control dropped (reject-new refusals plus
    drop-oldest evictions).  Always 0 when [flow_control] is off. *)

val pushback_count : t -> int
(** [Busy] pushback notifications this node issued, advisory and shedding
    alike.  Always 0 when [flow_control] is off. *)

val last_stable_checkpoint : t -> Proto.Message.checkpoint_cert option
val epoch_leaders : t -> Proto.Ids.node_id array
(** Leaders of the node's current epoch. *)

val bucket_leader : t -> bucket:int -> Proto.Ids.node_id
(** Current owner of a bucket (for client leader detection). *)

val projected_bucket_leader : config:Config.t -> epoch:int -> bucket:int -> Proto.Ids.node_id
(** The initial-assignment owner of [bucket] in [epoch] (Eq. 1), used by
    clients to guess the next epochs' leaders without knowing the leader
    set (§4.3: requests are also sent to the projected owners of the next
    two epochs). *)
