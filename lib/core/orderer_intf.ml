(** The interface between ISS and its Sequenced-Broadcast implementations
    (paper §4.1: the [Segment(s)] / [Announce(b, sn)] contract).

    The Manager hands an orderer a {!Segment.t}; from then on the orderer's
    single obligation is to call [announce] {e exactly once} for every
    sequence number of the segment, each time with either a batch drawn
    from the segment's buckets or ⊥.  Everything else — networking, timers,
    batching, CPU accounting — is provided through the {!ctx} record, which
    keeps protocol implementations free of simulator plumbing and, equally,
    keeps ISS free of protocol specifics. *)

(** Outcome of follower-side proposal validation.  [Reject_malicious] is
    reserved for {e provable} leader misbehaviour — a request whose signature
    fails verification, or a request outside the segment's buckets — which an
    honest leader can never produce.  Everything an honest-but-stale leader
    could plausibly send (an already-delivered request after a lost
    checkpoint, a watermark overflow, a duplicate in-flight proposal) is a
    plain [Reject]: the proposal is refused but the leader is given the
    benefit of the doubt. *)
type verdict = Accept | Reject | Reject_malicious

type ctx = {
  node : Proto.Ids.node_id;
  config : Config.t;
  engine : Sim.Engine.t;
  send : dst:Proto.Ids.node_id -> Proto.Message.t -> unit;
      (** Point-to-point send; [dst = node] loops back locally (cheaply). *)
  broadcast : Proto.Message.t -> unit;
      (** Send to every node, including self (via loopback). *)
  announce : sn:int -> Proto.Proposal.t -> unit;
      (** SB-DELIVER: commit a proposal at a global sequence number. *)
  request_batch : sn:int -> (Proto.Proposal.t -> unit) -> unit;
      (** Leader side: ask ISS to cut the next batch for this segment.  The
          callback fires once the batching policy allows (batch full, batch
          timeout, or rate-limit slot — §3.2, §4.4.1) and receives a batch
          of requests from the segment's buckets (possibly empty under low
          load, never ⊥). *)
  charge_cpu : Sim.Time_ns.span -> (unit -> unit) -> unit;
      (** Model CPU work (signature checks, QC assembly): the continuation
          runs once the node's (parallelism-adjusted) CPU horizon passes. *)
  keypair : Iss_crypto.Signature.keypair;  (** this node's signing key *)
  threshold_group : Iss_crypto.Threshold.group;
      (** (2f+1, n) group shared by all nodes (HotStuff QCs) *)
  report_suspect : Proto.Ids.node_id -> unit;
      (** Failure-detector output towards ISS diagnostics/metrics (the
          leader policies themselves read suspicion from ⊥ log entries). *)
  validate_proposal : Segment.t -> sn:int -> Proto.Proposal.t -> verdict;
      (** Follower-side acceptance checks (§4.2 principle 3): request
          validity, no duplicate proposal in the epoch, no re-proposal of
          committed requests, bucket membership.  Recording is included: an
          [Accept] result registers the batch's requests as proposed at [sn],
          so re-validation of the same (sn, batch) stays [Accept] while a
          different sn with the same requests becomes a rejection.  A
          [Reject_malicious] verdict means the proposal proves its sender
          faulty; orderers react by demanding a leader change eagerly
          instead of waiting out their timers. *)
}

(** What a protocol must provide to serve as an SB implementation. *)
module type ORDERER = sig
  type t

  val create : ctx -> Segment.t -> t

  val start : t -> unit
  (** SB-INIT: begin ordering.  Called when the node enters the segment's
      epoch. *)

  val on_message : t -> src:Proto.Ids.node_id -> Proto.Message.t -> unit
  (** Deliver a protocol message routed to this instance.  Messages of
      foreign types must be ignored, not crash. *)

  val stop : t -> unit
  (** Garbage collection after the epoch's stable checkpoint: cancel timers,
      drop state.  No [announce] may follow. *)
end

(** Existential wrapper so a node can hold instances of different orderers
    (it cannot happen in one run today, but the manager code stays agnostic
    and tests mix protocols freely). *)
type instance = Instance : (module ORDERER with type t = 'a) * 'a -> instance

let start (Instance ((module O), o)) = O.start o
let on_message (Instance ((module O), o)) ~src msg = O.on_message o ~src msg
let stop (Instance ((module O), o)) = O.stop o
