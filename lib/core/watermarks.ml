(* Per-client delivery tracking with an allocation-free ring bitmap.

   For each client we keep [floor] (length of the contiguously delivered
   timestamp prefix) and a ring of bits for timestamps in
   [floor, floor + capacity).  The watermark validity check bounds accepted
   timestamps to [floor + window), and floors across nodes diverge by at
   most the in-flight window, so [capacity = 4 * window] comfortably covers
   every timestamp that can be delivered while its bit is still in range.
   The rare overflow advances the floor to keep the triggering timestamp in
   range, clearing the ring slots whose timestamps fell below the new floor
   (stale bits would alias fresh timestamps and answer false-positive
   [delivered], silently suppressing live requests).  Timestamps forced
   below the floor read as delivered, which only risks suppressing a
   duplicate proposal attempt — never a double delivery. *)

type client_state = {
  mutable floor : int;
  bits : Bytes.t;  (* ring bitmap over [floor, floor + capacity) *)
}

type t = { window : int; capacity : int; clients : (int, client_state) Hashtbl.t }

let create ~window =
  assert (window > 0);
  { window; capacity = 4 * window; clients = Hashtbl.create 64 }

let state t client =
  match Hashtbl.find_opt t.clients client with
  | Some s -> s
  | None ->
      let s = { floor = 0; bits = Bytes.make ((t.capacity + 7) / 8) '\000' } in
      Hashtbl.replace t.clients client s;
      s

let get_bit t s ts =
  let i = ts mod t.capacity in
  Char.code (Bytes.unsafe_get s.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t s ts v =
  let i = ts mod t.capacity in
  let byte = Char.code (Bytes.unsafe_get s.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set s.bits (i lsr 3) (Char.unsafe_chr byte)

let valid t (id : Proto.Request.id) =
  let s = state t id.client in
  id.ts >= s.floor && id.ts < s.floor + t.window

let note_delivered t (id : Proto.Request.id) =
  let s = state t id.client in
  if id.ts >= s.floor then
    if id.ts < s.floor + t.capacity then begin
      set_bit t s id.ts true;
      (* Advance the floor over the contiguous delivered prefix, clearing
         bits as they leave the window. *)
      while get_bit t s s.floor do
        set_bit t s s.floor false;
        s.floor <- s.floor + 1
      done
    end
    else begin
      (* Out of ring range (cannot happen while acceptance windows hold);
         degrade safely by advancing the floor — everything below the new
         floor is forced delivered, which can only suppress, never
         duplicate.  Bits for timestamps that fall below the new floor are
         stale: their ring slots now alias timestamps of the new window, so
         a leftover bit would answer a false-positive [delivered] for a
         fresh timestamp and silently suppress it forever.  Clear exactly
         those slots; bits in the surviving overlap keep denoting the same
         timestamp and stay. *)
      let new_floor = id.ts + 1 - t.capacity in
      let stale = new_floor - s.floor in
      if stale >= t.capacity then Bytes.fill s.bits 0 (Bytes.length s.bits) '\000'
      else
        for ts = s.floor to s.floor + stale - 1 do
          set_bit t s ts false
        done;
      s.floor <- new_floor;
      (* Record the delivery that triggered the degrade (the old code lost
         it: the new floor sits below [id.ts], so without its bit the id
         would read as not-delivered and could be delivered twice). *)
      set_bit t s id.ts true;
      while get_bit t s s.floor do
        set_bit t s s.floor false;
        s.floor <- s.floor + 1
      done
    end

let delivered t (id : Proto.Request.id) =
  match Hashtbl.find_opt t.clients id.client with
  | None -> false
  | Some s ->
      id.ts < s.floor || (id.ts < s.floor + t.capacity && get_bit t s id.ts)

let floor t client = (state t client).floor
let window t = t.window
