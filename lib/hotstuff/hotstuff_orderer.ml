module Time_ns = Sim.Time_ns
module Engine = Sim.Engine
module Msg = Proto.Hotstuff_msg
module Proposal = Proto.Proposal
module Hash = Iss_crypto.Hash

module Orderer = struct
  type t = {
    ctx : Core.Orderer_intf.ctx;
    seg : Core.Segment.t;
    n : int;
    quorum : int;
    chain : (string, Msg.chain_node) Hashtbl.t;  (* node digest (raw) -> node *)
    qcs : (int, Msg.qc) Hashtbl.t;  (* view -> QC *)
    shares : (int * string, (int, Iss_crypto.Threshold.share) Hashtbl.t) Hashtbl.t;
        (* leader: (view, digest) -> voter -> share *)
    new_views : (int, (int, int * Msg.qc option) Hashtbl.t) Hashtbl.t;
        (* leader-designate: rotation -> sender -> (nv view, justify) *)
    nv_rotations : (int, int) Hashtbl.t;
        (* pacemaker sync: sender -> highest rotation it announced *)
    decided : (int, Proposal.t) Hashtbl.t;  (* sn -> decided value (fill answers) *)
    fills : (int, (int, Proposal.t) Hashtbl.t) Hashtbl.t;  (* sn -> src -> value *)
    mutable high_qc : Msg.qc option;
    mutable locked_view : int;
    mutable last_voted_view : int;
    mutable rotations : int;  (* pacemaker leader rotations *)
    mutable complained_view : int;  (* last view eagerly rotated for a provably-bad proposal *)
    mutable i_am_leader : bool;
    mutable to_propose : int list;  (* sns still to put on the chain (leader) *)
    mutable dummies_left : int;
    mutable last_proposed : (int * Hash.t) option;  (* (view, digest) awaiting QC *)
    mutable active : bool;
    mutable timer : Engine.timer_id option;
    mutable rec_timer : Engine.timer_id option;  (* slot-recovery NACK timer *)
    mutable last_announce : Time_ns.t;
    missing : (string, unit) Hashtbl.t;  (* ancestor digests being fetched *)
    pending_decide : (string, Msg.chain_node) Hashtbl.t;
        (* committed tips whose branch walk stalled on a missing ancestor *)
    mutable sync_timer : Engine.timer_id option;  (* fetch retransmission *)
  }

  let genesis_parent t =
    Hash.of_string (Printf.sprintf "hs-genesis:%d" t.seg.Core.Segment.instance)

  let create ctx seg =
    let n = ctx.Core.Orderer_intf.config.Core.Config.n in
    {
      ctx;
      seg;
      n;
      quorum = Proto.Ids.quorum ~n;
      chain = Hashtbl.create 64;
      qcs = Hashtbl.create 64;
      shares = Hashtbl.create 16;
      new_views = Hashtbl.create 8;
      nv_rotations = Hashtbl.create 8;
      decided = Hashtbl.create 32;
      fills = Hashtbl.create 4;
      high_qc = None;
      locked_view = -1;
      last_voted_view = -1;
      rotations = 0;
      complained_view = -1;
      i_am_leader = false;
      to_propose = Array.to_list seg.Core.Segment.seq_nrs;
      dummies_left = 3;
      last_proposed = None;
      active = false;
      timer = None;
      rec_timer = None;
      last_announce = Time_ns.zero;
      missing = Hashtbl.create 4;
      pending_decide = Hashtbl.create 4;
      sync_timer = None;
    }

  let current_leader t = (t.seg.Core.Segment.leader + t.rotations) mod t.n

  let me t = t.ctx.Core.Orderer_intf.node

  let done_ t = Hashtbl.length t.decided >= Core.Segment.seq_count t.seg

  let broadcast_hs t body =
    t.ctx.Core.Orderer_intf.broadcast
      (Proto.Message.Hotstuff { Msg.instance = t.seg.Core.Segment.instance; body })

  let send_hs t ~dst body =
    t.ctx.Core.Orderer_intf.send ~dst
      (Proto.Message.Hotstuff { Msg.instance = t.seg.Core.Segment.instance; body })

  let cancel_timer t =
    match t.timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.timer <- None
    | None -> ()

  (* ---- Decide pipeline ---------------------------------------------- *)

  (* Block sync.  A replica may commit a branch whose ancestors it never
     received (their proposal messages were dropped).  The same sequence
     number can legitimately appear twice on a branch — a batch, then a ⊥
     re-proposal after a rotation — and [decide_branch] relies on walking
     oldest-first to announce the earlier (committed) occurrence; skipping a
     missing ancestor would announce the ⊥ duplicate instead and diverge
     from replicas that hold the full branch.  So a gap suspends the decide
     and fetches the ancestor by digest from peers, retrying on a timer
     until the branch is whole (standard chained-HotStuff block sync). *)
  let rec request_block t digest =
    if not (Hashtbl.mem t.missing (Hash.raw digest)) then begin
      Hashtbl.replace t.missing (Hash.raw digest) ();
      broadcast_hs t (Msg.Fetch { digest })
    end;
    arm_sync_timer t

  and arm_sync_timer t =
    if t.sync_timer = None && t.active && Hashtbl.length t.missing > 0 then begin
      let delay = t.ctx.Core.Orderer_intf.config.Core.Config.epoch_change_timeout in
      t.sync_timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay (fun () ->
               t.sync_timer <- None;
               if t.active then begin
                 Hashtbl.iter
                   (fun raw () -> broadcast_hs t (Msg.Fetch { digest = Hash.of_raw raw }))
                   t.missing;
                 arm_sync_timer t
               end))
    end

  let cancel_sync_timer t =
    match t.sync_timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.sync_timer <- None
    | None -> ()

  let cancel_rec_timer t =
    match t.rec_timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.rec_timer <- None
    | None -> ()

  (* Slot recovery (the PBFT orderer's NACK, ported).  Replicas whose
     instance is already done ignore the pacemaker, so when fewer than a
     quorum of replicas are stuck no rotation can ever assemble — and with
     fewer than 2f+1 finishers no stable checkpoint (hence no state
     transfer) forms either.  A replica making no progress for a whole
     epoch-change timeout asks everyone for the slots it has not decided;
     f+1 matching answers are adopted (at least one is from a correct
     replica, and correct replicas only report committed values). *)
  let rec arm_rec_timer t =
    cancel_rec_timer t;
    if t.active && not (done_ t) then begin
      let period = t.ctx.Core.Orderer_intf.config.Core.Config.epoch_change_timeout in
      t.rec_timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay:period (fun () ->
               t.rec_timer <- None;
               let now = Engine.now t.ctx.Core.Orderer_intf.engine in
               if t.active && (not (done_ t)) && now - t.last_announce >= period then begin
                 let missing =
                   Array.to_list t.seg.Core.Segment.seq_nrs
                   |> List.filter (fun sn -> not (Hashtbl.mem t.decided sn))
                 in
                 if missing <> [] then broadcast_hs t (Msg.Fill_request { sns = missing })
               end;
               arm_rec_timer t))
    end

  (* Announce a chain node and all its undecided ancestors, oldest first.
     Returns [false] — and starts fetching — when an ancestor is missing;
     nothing on the branch is announced until it is whole. *)
  let rec decide_branch t (node : Msg.chain_node) =
    let ancestors_ok =
      Hash.equal node.Msg.parent (genesis_parent t)
      ||
      match Hashtbl.find_opt t.chain (Hash.raw node.Msg.parent) with
      | Some parent -> decide_branch t parent
      | None ->
          request_block t node.Msg.parent;
          false
    in
    if ancestors_ok && node.Msg.sn >= 0 && not (Hashtbl.mem t.decided node.Msg.sn) then begin
      Hashtbl.replace t.decided node.Msg.sn node.Msg.proposal;
      t.last_announce <- Engine.now t.ctx.Core.Orderer_intf.engine;
      t.ctx.Core.Orderer_intf.announce ~sn:node.Msg.sn node.Msg.proposal;
      if done_ t then begin
        cancel_timer t;
        cancel_rec_timer t
      end
    end;
    ancestors_ok

  let decide_or_suspend t (node : Msg.chain_node) =
    if decide_branch t node then
      Hashtbl.remove t.pending_decide (Hash.raw (Msg.node_digest node))
    else Hashtbl.replace t.pending_decide (Hash.raw (Msg.node_digest node)) node

  (* Three-chain commit rule over consecutive views (paper Fig. 4). *)
  let try_decide t (qc : Msg.qc) =
    match Hashtbl.find_opt t.chain (Hash.raw qc.Msg.qc_digest) with
    | None -> ()
    | Some n2 -> (
        match Hashtbl.find_opt t.chain (Hash.raw n2.Msg.parent) with
        | Some n1 when n1.Msg.view = n2.Msg.view - 1 && Hashtbl.mem t.qcs n1.Msg.view -> (
            match Hashtbl.find_opt t.chain (Hash.raw n1.Msg.parent) with
            | Some n0 when n0.Msg.view = n1.Msg.view - 1 && Hashtbl.mem t.qcs n0.Msg.view ->
                decide_or_suspend t n0
            | Some _ | None -> ())
        | Some _ | None -> ())

  let register_qc t (qc : Msg.qc) =
    if not (Hashtbl.mem t.qcs qc.Msg.qc_view) then begin
      Hashtbl.replace t.qcs qc.Msg.qc_view qc;
      (match t.high_qc with
      | Some h when h.Msg.qc_view >= qc.Msg.qc_view -> ()
      | Some _ | None -> t.high_qc <- Some qc);
      t.locked_view <- max t.locked_view (qc.Msg.qc_view - 1);
      try_decide t qc
    end

  (* ---- Leader side ---------------------------------------------------- *)

  (* Note: proposing must NOT stop when [done_ t] — the leader typically
     decides the whole segment while replicas still need the trailing dummy
     proposals to learn the final QCs (the pipeline flush of Fig. 4). *)
  let rec propose_next t ~view ~parent ~justify =
    if t.active && t.i_am_leader then begin
      let make_and_send sn proposal =
        let node = { Msg.view; sn; parent; proposal; justify } in
        Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
        t.last_proposed <- Some (view, Msg.node_digest node);
        broadcast_hs t (Msg.Proposal_msg node)
      in
      match t.to_propose with
      | sn :: rest ->
          t.to_propose <- rest;
          if me t = t.seg.Core.Segment.leader then
            (* Original leader: cut a real batch (asynchronous: the ISS
               batcher paces us). *)
            t.ctx.Core.Orderer_intf.request_batch ~sn (fun proposal ->
                if t.active && t.i_am_leader then make_and_send sn proposal)
          else
            (* Rotated leader: design principle 2 — only ⊥. *)
            make_and_send sn Proposal.Nil
      | [] ->
          if t.dummies_left > 0 then begin
            t.dummies_left <- t.dummies_left - 1;
            make_and_send (-1) Proposal.Nil
          end
    end

  and on_qc_formed t (qc : Msg.qc) =
    register_qc t qc;
    propose_next t ~view:(qc.Msg.qc_view + 1) ~parent:qc.Msg.qc_digest ~justify:(Some qc)

  let handle_vote t ~src ~view ~digest share =
    if t.active && t.i_am_leader then begin
      match t.last_proposed with
      | Some (v, d) when v = view && Hash.equal d digest ->
          let key = (view, Hash.raw digest) in
          let tbl =
            match Hashtbl.find_opt t.shares key with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 8 in
                Hashtbl.replace t.shares key tbl;
                tbl
          in
          if not (Hashtbl.mem tbl src) then begin
            Hashtbl.replace tbl src share;
            if Hashtbl.length tbl >= t.quorum then begin
              let material =
                Msg.vote_material ~instance:t.seg.Core.Segment.instance ~view digest
              in
              let shares = Hashtbl.fold (fun _ s acc -> s :: acc) tbl [] in
              match
                Iss_crypto.Threshold.combine t.ctx.Core.Orderer_intf.threshold_group material
                  shares
              with
              | Some combined ->
                  Hashtbl.remove t.shares key;
                  t.last_proposed <- None;
                  let qc = { Msg.qc_view = view; qc_digest = digest; qc_sig = combined } in
                  let cost =
                    Iss_crypto.Threshold.combine_cost_ns ~t:t.quorum
                  in
                  t.ctx.Core.Orderer_intf.charge_cpu cost (fun () ->
                      if t.active then on_qc_formed t qc)
              | None -> ()
            end
          end
      | Some _ | None -> ()
    end

  (* ---- Replica side --------------------------------------------------- *)

  let qc_valid t (qc : Msg.qc) =
    let material =
      Msg.vote_material ~instance:t.seg.Core.Segment.instance ~view:qc.Msg.qc_view
        qc.Msg.qc_digest
    in
    Iss_crypto.Threshold.verify t.ctx.Core.Orderer_intf.threshold_group material qc.Msg.qc_sig

  let rec handle_proposal t ~src (node : Msg.chain_node) =
    if t.active && src = current_leader t && node.Msg.view > t.last_voted_view then begin
      let justify_ok =
        match node.Msg.justify with
        | None ->
            (* Genesis acts as an implicit QC at view -1: a justify-free
               proposal is valid at ANY view while this replica holds no
               lock, not just view 0.  A rotated leader must be able to
               restart from genesis when no QC ever formed (first proposal
               or its votes lost) — with the view-0-only rule every
               post-rotation proposal of such a segment is rejected forever.
               Safe: a committed value implies 2f+1 replicas locked >= 0,
               and any QC for a genesis restart would need 2f+1 votes, which
               intersect them in a correct replica that refuses this arm. *)
            Hash.equal node.Msg.parent (genesis_parent t) && t.locked_view < 0
        | Some qc ->
            qc.Msg.qc_view < node.Msg.view
            && Hash.equal node.Msg.parent qc.Msg.qc_digest
            && qc.Msg.qc_view >= t.locked_view
            && qc_valid t qc
      in
      let content =
        match node.Msg.proposal with
        | Proposal.Nil -> Core.Orderer_intf.Accept  (* dummies and ⊥ fills are always safe *)
        | Proposal.Batch _ ->
            if
              node.Msg.sn >= 0
              && Core.Segment.contains_sn t.seg node.Msg.sn
              && src = t.seg.Core.Segment.leader
            then
              t.ctx.Core.Orderer_intf.validate_proposal t.seg ~sn:node.Msg.sn
                node.Msg.proposal
            else Core.Orderer_intf.Reject
      in
      (match content with
      | Core.Orderer_intf.Reject_malicious when node.Msg.view > t.complained_view ->
          (* The proposal proves the leader faulty (forged request signature
             or out-of-bucket request).  Rotate away from it now instead of
             letting the pacemaker time out — once per proposal view, so a
             spamming leader cannot drive the rotation counter by itself. *)
          t.complained_view <- node.Msg.view;
          on_timeout t
      | _ -> ());
      let content_ok = content = Core.Orderer_intf.Accept in
      if justify_ok && content_ok then begin
        (match node.Msg.justify with Some qc -> register_qc t qc | None -> ());
        Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
        t.last_voted_view <- node.Msg.view;
        let digest = Msg.node_digest node in
        let material =
          Msg.vote_material ~instance:t.seg.Core.Segment.instance ~view:node.Msg.view digest
        in
        let share =
          Iss_crypto.Threshold.sign_share t.ctx.Core.Orderer_intf.threshold_group ~signer:(me t)
            material
        in
        let verify_cost =
          (match node.Msg.proposal with
          | Proposal.Batch b when t.ctx.Core.Orderer_intf.config.Core.Config.client_signatures
            ->
              Proto.Batch.length b * Iss_crypto.Signature.verify_cost_ns
          | Proposal.Batch _ | Proposal.Nil -> 0)
          + Iss_crypto.Threshold.share_sign_cost_ns
        in
        t.ctx.Core.Orderer_intf.charge_cpu verify_cost (fun () ->
            if t.active then
              send_hs t ~dst:(current_leader t)
                (Msg.Vote { view = node.Msg.view; digest; share }))
      end
    end

  (* ---- Pacemaker ------------------------------------------------------ *)

  and arm_timer t =
    cancel_timer t;
    if t.active && not (done_ t) then begin
      let base = t.ctx.Core.Orderer_intf.config.Core.Config.epoch_change_timeout in
      let timeout = base * (1 lsl min t.rotations 16) in
      t.timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay:timeout (fun () ->
               t.timer <- None;
               on_timeout t))
    end

  and on_timeout t =
    if t.active && not (done_ t) then begin
      t.ctx.Core.Orderer_intf.report_suspect (current_leader t);
      t.rotations <- t.rotations + 1;
      t.i_am_leader <- false;
      broadcast_new_view t;
      arm_timer t
    end

  (* Broadcast (not just to the leader-designate): every replica tracks the
     rotations its peers announce, which is what lets loss-diverged
     rotation counters re-converge (see fast_forward below). *)
  and broadcast_new_view t =
    broadcast_hs t
      (Msg.New_view
         { view = t.last_voted_view + 1; rotation = t.rotations; justify = t.high_qc })

  let leader_of_rotation t rotation = (t.seg.Core.Segment.leader + rotation) mod t.n

  let rec become_rotated_leader t ~rotation ~views =
    t.rotations <- rotation;
    t.i_am_leader <- true;
    (* Re-propose ⊥ for everything not yet decided, then flush with
       dummies, starting above every view a quorum member voted in. *)
    let undecided =
      Array.to_list t.seg.Core.Segment.seq_nrs
      |> List.filter (fun sn -> not (Hashtbl.mem t.decided sn))
    in
    t.to_propose <- undecided;
    t.dummies_left <- 3;
    let start_view =
      let nv = List.fold_left max 0 views in
      let hq = match t.high_qc with Some qc -> qc.Msg.qc_view + 1 | None -> 0 in
      max (max nv hq) (t.last_voted_view + 1)
    in
    let parent, justify =
      match t.high_qc with
      | Some qc -> (qc.Msg.qc_digest, Some qc)
      | None -> (genesis_parent t, None)
    in
    (* A rotated leader's first proposal may legitimately carry a justify
       that is not view-1; replicas accept it because the justify is their
       locked view or higher. *)
    propose_next_rotated t ~view:start_view ~parent ~justify

  and handle_new_view t ~src ~view ~rotation ~justify =
    if t.active && not (done_ t) then begin
      (match justify with
      | Some qc when qc_valid t qc -> register_qc t qc
      | Some _ | None -> ());
      (* Pacemaker sync: when f+1 peers announce a higher rotation than
         mine, they cannot all be faulty — fast-forward and join them
         (otherwise counters diverged by uneven message loss may never meet
         at one leader again). *)
      (match Hashtbl.find_opt t.nv_rotations src with
      | Some r when r >= rotation -> ()
      | Some _ | None -> Hashtbl.replace t.nv_rotations src rotation);
      let f1 = Proto.Ids.max_faulty ~n:t.n + 1 in
      let announced =
        Hashtbl.fold (fun _ r acc -> r :: acc) t.nv_rotations []
        |> List.sort (fun a b -> compare b a)
      in
      (match List.nth_opt announced (f1 - 1) with
      | Some r_star when r_star > t.rotations ->
          t.rotations <- r_star;
          t.i_am_leader <- false;
          broadcast_new_view t;
          arm_timer t
      | Some _ | None -> ());
      (* Leader-designate of [rotation]: collect a quorum of New_views
         carrying exactly that rotation, then take over the segment. *)
      if
        leader_of_rotation t rotation = me t
        && rotation >= t.rotations
        && not (t.i_am_leader && t.rotations = rotation)
      then begin
        let tbl =
          match Hashtbl.find_opt t.new_views rotation with
          | Some tbl -> tbl
          | None ->
              let tbl = Hashtbl.create 8 in
              Hashtbl.replace t.new_views rotation tbl;
              tbl
        in
        Hashtbl.replace tbl src (view, justify);
        if Hashtbl.length tbl >= t.quorum then begin
          let views = Hashtbl.fold (fun _ (v, _) acc -> v :: acc) tbl [] in
          become_rotated_leader t ~rotation ~views;
          arm_timer t
        end
      end
    end

  and propose_next_rotated t ~view ~parent ~justify =
    (* Same as [propose_next] but usable for the first post-rotation view
       (non-consecutive with the justify). *)
    if t.active && t.i_am_leader then begin
      match t.to_propose with
      | sn :: rest ->
          t.to_propose <- rest;
          let node = { Msg.view; sn; parent; proposal = Proposal.Nil; justify } in
          Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
          t.last_proposed <- Some (view, Msg.node_digest node);
          broadcast_hs t (Msg.Proposal_msg node)
      | [] ->
          if t.dummies_left > 0 then begin
            t.dummies_left <- t.dummies_left - 1;
            let node = { Msg.view; sn = -1; parent; proposal = Proposal.Nil; justify } in
            Hashtbl.replace t.chain (Hash.raw (Msg.node_digest node)) node;
            t.last_proposed <- Some (view, Msg.node_digest node);
            broadcast_hs t (Msg.Proposal_msg node)
          end
    end

  (* ---- ORDERER interface ---------------------------------------------- *)

  let start t =
    t.active <- true;
    t.last_announce <- Engine.now t.ctx.Core.Orderer_intf.engine;
    arm_timer t;
    arm_rec_timer t;
    if t.seg.Core.Segment.leader = me t then begin
      t.i_am_leader <- true;
      propose_next t ~view:0 ~parent:(genesis_parent t) ~justify:None
    end

  let on_message t ~src msg =
    match msg with
    | Proto.Message.Hotstuff { Msg.instance; body }
      when instance = t.seg.Core.Segment.instance && t.active -> (
        match body with
        | Msg.Proposal_msg node ->
            handle_proposal t ~src node;
            (* Progress resets the pacemaker. *)
            if src = current_leader t then arm_timer t
        | Msg.Vote { view; digest; share } -> handle_vote t ~src ~view ~digest share
        | Msg.New_view { view; rotation; justify } ->
            handle_new_view t ~src ~view ~rotation ~justify
        | Msg.Fetch { digest } -> (
            match Hashtbl.find_opt t.chain (Hash.raw digest) with
            | Some node -> send_hs t ~dst:src (Msg.Fetch_resp { node })
            | None -> ())
        | Msg.Fetch_resp { node } ->
            (* Self-certifying: key the node under its recomputed digest and
               only accept it if we actually asked for that digest. *)
            let raw = Hash.raw (Msg.node_digest node) in
            if Hashtbl.mem t.missing raw then begin
              Hashtbl.remove t.missing raw;
              Hashtbl.replace t.chain raw node;
              if Hashtbl.length t.missing = 0 then cancel_sync_timer t;
              (* Retry every suspended decide; branches still gapped re-add
                 themselves (and re-fetch the next missing ancestor). *)
              let tips = Hashtbl.fold (fun _ n acc -> n :: acc) t.pending_decide [] in
              List.iter (fun n -> decide_or_suspend t n) tips
            end
        | Msg.Fill_request { sns } ->
            List.iter
              (fun sn ->
                match Hashtbl.find_opt t.decided sn with
                | Some proposal -> send_hs t ~dst:src (Msg.Fill { sn; proposal })
                | None -> ())
              sns
        | Msg.Fill { sn; proposal } ->
            if Core.Segment.contains_sn t.seg sn && not (Hashtbl.mem t.decided sn) then begin
              let tbl =
                match Hashtbl.find_opt t.fills sn with
                | Some tbl -> tbl
                | None ->
                    let tbl = Hashtbl.create 4 in
                    Hashtbl.replace t.fills sn tbl;
                    tbl
              in
              Hashtbl.replace tbl src proposal;
              let digest = Proposal.digest proposal in
              let matching =
                Hashtbl.fold
                  (fun _ p acc -> if Hash.equal (Proposal.digest p) digest then acc + 1 else acc)
                  tbl 0
              in
              if matching >= Proto.Ids.max_faulty ~n:t.n + 1 then begin
                Hashtbl.replace t.decided sn proposal;
                t.last_announce <- Engine.now t.ctx.Core.Orderer_intf.engine;
                t.ctx.Core.Orderer_intf.announce ~sn proposal;
                if done_ t then begin
                  cancel_timer t;
                  cancel_rec_timer t;
                  cancel_sync_timer t
                end
              end
            end)
    | _ -> ()

  let stop t =
    t.active <- false;
    cancel_timer t;
    cancel_rec_timer t;
    cancel_sync_timer t
end

let factory ctx seg =
  Core.Orderer_intf.Instance ((module Orderer), Orderer.create ctx seg)
