(* Minimal JSON values: enough for the observability exporters without
   pulling a JSON dependency into the build.  Printing always produces
   RFC 8259-valid text (non-finite floats degrade to null); the parser
   accepts exactly the grammar the printer emits plus whitespace, which is
   all the tests and the CI smoke check need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then begin
        (* %.17g roundtrips but is noisy; prefer %.12g when it still reads
           back as the same float. *)
        let s = Printf.sprintf "%.12g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        Buffer.add_string buf s
        (* "1e+06" is valid JSON; bare "1" for 1.0 is too (a JSON number). *)
      end
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent) *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.text then error c "bad \\u escape";
            let hex = String.sub c.text c.pos 4 in
            c.pos <- c.pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            (* Only BMP codepoints below 0x80 are emitted by the printer. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_raw c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> error c "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields ((k, v) :: acc)
          | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
          | _ -> error c "expected ',' or '}'"
        in
        fields []
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | _ -> error c "unexpected character"

let of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors for tests *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
