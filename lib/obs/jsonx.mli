(** Minimal JSON values for the observability exporters.

    Printing always yields RFC 8259-valid text (non-finite floats degrade to
    [null]); the bundled parser handles everything the printer emits, so
    tests can round-trip exporter output without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parses one complete JSON value (surrounding whitespace allowed). *)

(** {2 Lookup helpers (tests, report generation)} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for other constructors or missing keys. *)

val to_list : t -> t list option
val to_float : t -> float option
(** [Int] widens to float. *)
