(* Per-node metric registry.

   Metrics are registered once at cluster construction and polled only when
   a snapshot is taken, so registration changes nothing about a run:
   counters and gauges are thunks over state the simulation maintains
   anyway, histograms are references to live Sim.Metrics.Histogram values.
   No metric updates happen on the hot path — the registry reads, it never
   writes. *)

type kind =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Sim.Metrics.Histogram.t

type entry = { name : string; node : int option; kind : kind }

type t = { mutable entries : entry list }

let create () = { entries = [] }

let register t ?node ~name kind = t.entries <- { name; node; kind } :: t.entries

let counter t ?node ~name f = register t ?node ~name (Counter f)
let gauge t ?node ~name f = register t ?node ~name (Gauge f)
let histogram t ?node ~name h = register t ?node ~name (Histogram h)

let num_metrics t = List.length t.entries

let entry_json e =
  let base = [ ("name", Jsonx.String e.name) ] in
  let base =
    match e.node with Some n -> base @ [ ("node", Jsonx.Int n) ] | None -> base
  in
  let value =
    match e.kind with
    | Counter f -> [ ("kind", Jsonx.String "counter"); ("value", Jsonx.Int (f ())) ]
    | Gauge f -> [ ("kind", Jsonx.String "gauge"); ("value", Jsonx.Float (f ())) ]
    | Histogram h ->
        [
          ("kind", Jsonx.String "histogram");
          ("count", Jsonx.Int (Sim.Metrics.Histogram.count h));
          ("mean", Jsonx.Float (Sim.Metrics.Histogram.mean h));
          ("p50", Jsonx.Float (Sim.Metrics.Histogram.percentile h 50.0));
          ("p95", Jsonx.Float (Sim.Metrics.Histogram.percentile h 95.0));
          ("p99", Jsonx.Float (Sim.Metrics.Histogram.percentile h 99.0));
          ("max", Jsonx.Float (Sim.Metrics.Histogram.max h));
        ]
  in
  Jsonx.Obj (base @ value)

let snapshot t ~at =
  Jsonx.Obj
    [
      ("t", Jsonx.Float (Sim.Time_ns.to_sec_f at));
      ("metrics", Jsonx.List (List.rev_map entry_json t.entries));
    ]
