(** Per-node metric registry (DESIGN.md §8).

    Named counters, gauges, and histograms, optionally attributed to a node,
    snapshotable at any simulated time.  Counters and gauges are thunks
    polled only at snapshot time; histograms are references to live
    {!Sim.Metrics.Histogram} values.  Registering metrics therefore never
    perturbs a run: the registry reads simulation state, it does not add
    work to the hot path. *)

type kind =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Sim.Metrics.Histogram.t

type t

val create : unit -> t

val register : t -> ?node:int -> name:string -> kind -> unit

val counter : t -> ?node:int -> name:string -> (unit -> int) -> unit
val gauge : t -> ?node:int -> name:string -> (unit -> float) -> unit
val histogram : t -> ?node:int -> name:string -> Sim.Metrics.Histogram.t -> unit

val num_metrics : t -> int

val snapshot : t -> at:Sim.Time_ns.t -> Jsonx.t
(** [{"t": <seconds>, "metrics": [{"name", "node"?, "kind", ...}, ...]}] in
    registration order.  Histogram entries carry count/mean/p50/p95/p99/max. *)
