(* Sink constructors for Sim.Trace — the obs-side face of the trace
   refactor.  Sim.Trace owns the (single) installation point; this module
   builds the sinks worth installing. *)

let stderr ~min_level = Sim.Trace.stderr_sink ~min_level

let buffer buf ~min_level = Sim.Trace.buffer_sink buf ~min_level

let jsonl buf ~min_level : Sim.Trace.sink =
  {
    Sim.Trace.min_level;
    write =
      (fun ~at ~level msg ->
        Jsonx.to_buffer buf
          (Jsonx.Obj
             [
               ("t", Jsonx.Float (Sim.Time_ns.to_sec_f at));
               ( "level",
                 Jsonx.String
                   (match level with
                   | Sim.Trace.Debug -> "debug"
                   | Sim.Trace.Info -> "info"
                   | Sim.Trace.Warn -> "warn") );
               ("msg", Jsonx.String msg);
             ]);
        Buffer.add_char buf '\n');
  }

let with_sink sink f =
  let saved = Sim.Trace.sink () in
  Sim.Trace.set_sink (Some sink);
  let finish () = Sim.Trace.set_sink saved in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e
