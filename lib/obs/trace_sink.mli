(** Sink constructors for {!Sim.Trace}.

    Sim.Trace holds the single sink installation point (it cannot depend on
    this library); obs provides the sinks: plain text to stderr or a
    buffer, or machine-readable JSONL for post-processing alongside the
    request-lifecycle trace. *)

val stderr : min_level:Sim.Trace.level -> Sim.Trace.sink
val buffer : Buffer.t -> min_level:Sim.Trace.level -> Sim.Trace.sink

val jsonl : Buffer.t -> min_level:Sim.Trace.level -> Sim.Trace.sink
(** One [{"t":..,"level":..,"msg":..}] object per trace line. *)

val with_sink : Sim.Trace.sink -> (unit -> 'a) -> 'a
(** Runs the thunk with the sink installed; restores the previous sink. *)
