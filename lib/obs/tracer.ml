(* Request-lifecycle tracer.

   Records (request, phase, node, virtual time) events against the
   simulation clock.  Discipline (DESIGN.md §8):

   - instrumentation sites hold an [t option]; with no tracer installed the
     hot path pays one pointer comparison and allocates nothing;
   - sampling is deterministic — request [r] is traced iff
     [r mod sample = 0] — so traced runs of the same seed always sample the
     same requests;
   - memory is bounded: at most [max_events] events are kept, later ones
     are counted in [dropped] instead of stored.  Events live in parallel
     int arrays (no per-event boxing). *)

type phase = Submit | Enqueue | Cut | Sb_broadcast | Commit | Deliver | Reply

let phase_index = function
  | Submit -> 0
  | Enqueue -> 1
  | Cut -> 2
  | Sb_broadcast -> 3
  | Commit -> 4
  | Deliver -> 5
  | Reply -> 6

let num_phases = 7

let phase_of_index = function
  | 0 -> Submit
  | 1 -> Enqueue
  | 2 -> Cut
  | 3 -> Sb_broadcast
  | 4 -> Commit
  | 5 -> Deliver
  | 6 -> Reply
  | i -> invalid_arg (Printf.sprintf "Tracer.phase_of_index: %d" i)

let phase_name = function
  | Submit -> "submit"
  | Enqueue -> "enqueue"
  | Cut -> "cut"
  | Sb_broadcast -> "sb_broadcast"
  | Commit -> "commit"
  | Deliver -> "deliver"
  | Reply -> "reply"

let all_phases = [ Submit; Enqueue; Cut; Sb_broadcast; Commit; Deliver; Reply ]

type t = {
  engine : Sim.Engine.t;
  sample : int;
  max_events : int;
  (* Parallel arrays; [size] live entries. *)
  mutable e_req : int array;
  mutable e_node : int array;
  mutable e_phase : int array;
  mutable e_at : int array;
  mutable size : int;
  mutable dropped : int;
  once : (int, unit) Hashtbl.t;  (* (req * num_phases + phase) recorded via event_once *)
}

let create ?(sample = 1) ?(max_events = 262_144) ~engine () =
  if sample < 1 then invalid_arg "Tracer.create: sample must be >= 1";
  {
    engine;
    sample;
    max_events;
    e_req = [||];
    e_node = [||];
    e_phase = [||];
    e_at = [||];
    size = 0;
    dropped = 0;
    once = Hashtbl.create 4096;
  }

let sampled t ~req = req mod t.sample = 0

let num_events t = t.size
let dropped t = t.dropped

let grow t =
  let cap = Array.length t.e_req in
  if t.size = cap then begin
    let ncap = Stdlib.min t.max_events (Stdlib.max 1024 (cap * 2)) in
    let extend a = let n = Array.make ncap 0 in Array.blit a 0 n 0 t.size; n in
    t.e_req <- extend t.e_req;
    t.e_node <- extend t.e_node;
    t.e_phase <- extend t.e_phase;
    t.e_at <- extend t.e_at
  end

let record t ~req ~node ~at phase =
  if req mod t.sample = 0 then begin
    if t.size >= t.max_events then t.dropped <- t.dropped + 1
    else begin
      grow t;
      t.e_req.(t.size) <- req;
      t.e_node.(t.size) <- node;
      t.e_phase.(t.size) <- phase_index phase;
      t.e_at.(t.size) <- at;
      t.size <- t.size + 1
    end
  end

let event t ~req ~node phase = record t ~req ~node ~at:(Sim.Engine.now t.engine) phase

let event_once t ~req ~node phase =
  if req mod t.sample = 0 then begin
    let key = (req * num_phases) + phase_index phase in
    if not (Hashtbl.mem t.once key) then begin
      Hashtbl.replace t.once key ();
      event t ~req ~node phase
    end
  end

let iter t f =
  for i = 0 to t.size - 1 do
    f ~req:t.e_req.(i) ~node:t.e_node.(i) ~at:t.e_at.(i) (phase_of_index t.e_phase.(i))
  done

(* ------------------------------------------------------------------ *)
(* JSONL export: one event per line, in recording order. *)

let jsonl_to_buffer t buf =
  iter t (fun ~req ~node ~at phase ->
      Jsonx.to_buffer buf
        (Jsonx.Obj
           [
             ("req", Jsonx.Int req);
             ("phase", Jsonx.String (phase_name phase));
             ("node", Jsonx.Int node);
             ("t", Jsonx.Float (Sim.Time_ns.to_sec_f at));
           ]);
      Buffer.add_char buf '\n');
  if t.dropped > 0 then begin
    Jsonx.to_buffer buf (Jsonx.Obj [ ("dropped_events", Jsonx.Int t.dropped) ]);
    Buffer.add_char buf '\n'
  end

let to_jsonl_string t =
  let buf = Buffer.create (64 * (t.size + 1)) in
  jsonl_to_buffer t buf;
  Buffer.contents buf

let write_jsonl t oc =
  let buf = Buffer.create (64 * (t.size + 1)) in
  jsonl_to_buffer t buf;
  Buffer.output_buffer oc buf

(* ------------------------------------------------------------------ *)
(* Per-phase latency breakdown.

   For each traced request, the time of the FIRST occurrence of each phase
   is kept (commit/deliver fire once per node; the earliest is the
   protocol-level event).  Adjacent present phases then contribute one
   sample to the corresponding transition histogram, and submit -> reply
   contributes to the end-to-end histogram. *)

let breakdown t =
  let firsts : (int, int array) Hashtbl.t = Hashtbl.create 4096 in
  iter t (fun ~req ~node:_ ~at phase ->
      let arr =
        match Hashtbl.find_opt firsts req with
        | Some a -> a
        | None ->
            let a = Array.make num_phases min_int in
            Hashtbl.replace firsts req a;
            a
      in
      let p = phase_index phase in
      if arr.(p) = min_int || at < arr.(p) then arr.(p) <- at);
  let transitions =
    List.map
      (fun (a, b) ->
        ( Printf.sprintf "%s -> %s" (phase_name a) (phase_name b),
          phase_index a,
          phase_index b,
          Sim.Metrics.Histogram.create () ))
      [
        (Submit, Enqueue);
        (Enqueue, Cut);
        (Cut, Sb_broadcast);
        (Sb_broadcast, Commit);
        (Commit, Deliver);
        (Deliver, Reply);
        (Submit, Reply);
      ]
  in
  Hashtbl.iter
    (fun _req arr ->
      List.iter
        (fun (_, a, b, hist) ->
          if arr.(a) <> min_int && arr.(b) <> min_int && arr.(b) >= arr.(a) then
            Sim.Metrics.Histogram.add hist (Sim.Time_ns.to_sec_f (arr.(b) - arr.(a))))
        transitions)
    firsts;
  List.map (fun (label, _, _, hist) -> (label, hist)) transitions

let pp_breakdown fmt t =
  Format.fprintf fmt "per-phase latency breakdown (traced requests: %d events, %d dropped)@."
    t.size t.dropped;
  Format.fprintf fmt "  %-26s %8s %10s %10s %10s %10s@." "transition" "samples" "mean" "p50"
    "p95" "p99";
  List.iter
    (fun (label, hist) ->
      let n = Sim.Metrics.Histogram.count hist in
      if n > 0 then
        Format.fprintf fmt "  %-26s %8d %9.4fs %9.4fs %9.4fs %9.4fs@." label n
          (Sim.Metrics.Histogram.mean hist)
          (Sim.Metrics.Histogram.percentile hist 50.0)
          (Sim.Metrics.Histogram.percentile hist 95.0)
          (Sim.Metrics.Histogram.percentile hist 99.0)
      else Format.fprintf fmt "  %-26s %8d@." label n)
    (breakdown t)
