(** Request-lifecycle tracer (DESIGN.md §8).

    Records (request, phase, node, virtual time) events against the
    simulation clock as a request moves through the seven lifecycle phases:

    {v submit -> enqueue -> cut -> sb_broadcast -> commit -> deliver -> reply v}

    Overhead discipline: instrumentation sites hold a [t option]; with no
    tracer installed a site costs one pointer comparison and never
    allocates.  Sampling is deterministic ([req mod sample = 0]) and memory
    is bounded ([max_events]; excess events are counted, not stored), so a
    traced run of a given seed is reproducible and cannot exhaust the
    host. *)

type phase = Submit | Enqueue | Cut | Sb_broadcast | Commit | Deliver | Reply

val phase_name : phase -> string
val all_phases : phase list

type t

val create : ?sample:int -> ?max_events:int -> engine:Sim.Engine.t -> unit -> t
(** [sample] keeps one request in [sample] (default 1: all); [max_events]
    bounds stored events (default 262144). *)

val sampled : t -> req:int -> bool
(** Whether events for this request key would be recorded; lets callers
    skip building event arguments for unsampled requests. *)

val event : t -> req:int -> node:int -> phase -> unit
(** Record a phase event at the current virtual time.  [node] is the
    observing node id (-1 for the client/workload side). *)

val event_once : t -> req:int -> node:int -> phase -> unit
(** Like {!event} but records only the first occurrence of (req, phase) —
    used for phases that retransmissions can repeat (cut, SB broadcast). *)

val record : t -> req:int -> node:int -> at:Sim.Time_ns.t -> phase -> unit
(** Explicit-timestamp variant (e.g. the reply phase is recorded at
    delivery time + reply propagation). *)

val num_events : t -> int
val dropped : t -> int

val iter : t -> (req:int -> node:int -> at:Sim.Time_ns.t -> phase -> unit) -> unit
(** In recording order. *)

val write_jsonl : t -> out_channel -> unit
(** One JSON object per line: {["{"req":..,"phase":..,"node":..,"t":..}"]},
    with a final [{"dropped_events":n}] line if the event cap was hit. *)

val to_jsonl_string : t -> string

val breakdown : t -> (string * Sim.Metrics.Histogram.t) list
(** Per-transition latency histograms (seconds), one per adjacent phase
    pair plus end-to-end [submit -> reply], using each request's first
    occurrence of each phase. *)

val pp_breakdown : Format.formatter -> t -> unit
