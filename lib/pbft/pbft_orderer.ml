module Time_ns = Sim.Time_ns
module Engine = Sim.Engine
module Msg = Proto.Pbft_msg
module Proposal = Proto.Proposal

module Orderer = struct
  type slot = {
    sn : int;
    mutable accepted : (int * Proposal.t) option;  (* (view, proposal) pre-prepared here *)
    prepares : (int * int, Iss_crypto.Hash.t) Hashtbl.t;  (* (view, node) -> digest *)
    commits : (int * int, Iss_crypto.Hash.t) Hashtbl.t;
    mutable prepared : (int * Proposal.t) option;  (* highest view prepared cert *)
    mutable announced : bool;
    fills : (int, int * Proposal.t) Hashtbl.t;  (* src -> (view, committed value) *)
  }

  type t = {
    ctx : Core.Orderer_intf.ctx;
    seg : Core.Segment.t;
    n : int;
    quorum : int;
    slots : (int, slot) Hashtbl.t;  (* sn -> *)
    mutable view : int;
    mutable active : bool;  (* between start and stop *)
    mutable vc_timer : Engine.timer_id option;
    mutable rec_timer : Engine.timer_id option;  (* slot-recovery (fill) pacing *)
    mutable last_announce : Time_ns.t;  (* progress marker for slot recovery *)
    mutable completed : int;  (* announced count *)
    view_changes : (int, (int, Msg.view_change) Hashtbl.t) Hashtbl.t;
        (* new_view -> sender -> vc *)
    mutable highest_vc_sent : int;
    mutable last_nv : (int * Msg.body) option;
        (* NEW-VIEW already broadcast for this view: late view changes
           trigger an identical re-send, never a recomputed one.  A primary
           that recomputed could equivocate against itself — certificates
           that surface after the first broadcast would flip ⊥-filled slots
           to a value half the cluster already voted ⊥ on. *)
  }

  let primary t view = (t.seg.Core.Segment.leader + view) mod t.n

  let slot t sn =
    match Hashtbl.find_opt t.slots sn with
    | Some s -> s
    | None ->
        let s =
          {
            sn;
            accepted = None;
            prepares = Hashtbl.create 8;
            commits = Hashtbl.create 8;
            prepared = None;
            announced = false;
            fills = Hashtbl.create 1;
          }
        in
        Hashtbl.replace t.slots sn s;
        s

  let create ctx seg =
    let n = ctx.Core.Orderer_intf.config.Core.Config.n in
    {
      ctx;
      seg;
      n;
      quorum = Proto.Ids.quorum ~n;
      slots = Hashtbl.create (Core.Segment.seq_count seg * 2);
      view = 0;
      active = false;
      vc_timer = None;
      rec_timer = None;
      last_announce = Time_ns.zero;
      completed = 0;
      view_changes = Hashtbl.create 4;
      highest_vc_sent = 0;
      last_nv = None;
    }

  let broadcast_pbft t body =
    t.ctx.Core.Orderer_intf.broadcast
      (Proto.Message.Pbft { Msg.instance = t.seg.Core.Segment.instance; body })

  let done_ t = t.completed >= Core.Segment.seq_count t.seg

  let cancel_vc_timer t =
    match t.vc_timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.vc_timer <- None
    | None -> ()

  (* The view-change timeout doubles with the view number so that, after
     GST, it eventually exceeds the network delay (◇S(bz) completeness,
     §4.2.4). *)
  let rec arm_vc_timer t =
    cancel_vc_timer t;
    if t.active && not (done_ t) then begin
      let base = t.ctx.Core.Orderer_intf.config.Core.Config.epoch_change_timeout in
      let timeout = base * (1 lsl min t.view 16) in
      t.vc_timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay:timeout (fun () ->
               t.vc_timer <- None;
               start_view_change t (t.view + 1)))
    end

  (* Slot recovery (negative acknowledgment).  A view change only repairs a
     slot when a quorum of replicas still cares about it: once enough peers
     have committed the whole segment (done_), they stop joining view
     changes and a stuck minority can never assemble one.  So, orthogonally
     to view changes, a replica that has seen no announce for a full timeout
     asks everyone to FILL its missing slots and adopts any value confirmed
     by f+1 distinct peers.  The period stays constant — re-asking is
     idempotent — and the timer is progress-gated on [last_announce] so it
     stays quiet while the segment drains normally. *)
  and cancel_rec_timer t =
    match t.rec_timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.rec_timer <- None
    | None -> ()

  and arm_rec_timer t =
    cancel_rec_timer t;
    if t.active && not (done_ t) then begin
      let period = t.ctx.Core.Orderer_intf.config.Core.Config.epoch_change_timeout in
      t.rec_timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay:period (fun () ->
               t.rec_timer <- None;
               let now = Engine.now t.ctx.Core.Orderer_intf.engine in
               if t.active && (not (done_ t)) && now - t.last_announce >= period then begin
                 let missing =
                   Array.to_list t.seg.Core.Segment.seq_nrs
                   |> List.filter (fun sn -> not (slot t sn).announced)
                 in
                 if missing <> [] then broadcast_pbft t (Msg.Fill_request { sns = missing })
               end;
               arm_rec_timer t))
    end

  and start_view_change t new_view =
    if t.active && (not (done_ t)) && new_view > t.highest_vc_sent then begin
      t.highest_vc_sent <- new_view;
      t.ctx.Core.Orderer_intf.report_suspect (primary t t.view);
      (* Gather prepared certificates for the open sequence numbers —
         including slots already committed here.  Hiding committed slots
         would let a new primary that never saw their quorum fill them with
         ⊥ (divergence) or skip them entirely, leaving peers that missed a
         commit vote wedged; a committed value is prepared by definition, so
         reporting it is always safe. *)
      let prepared =
        Hashtbl.fold
          (fun sn s acc ->
            let cert =
              match (s.prepared, s.accepted) with
              | Some (view, proposal), _ -> Some (view, proposal)
              | None, Some (view, proposal) when s.announced -> Some (view, proposal)
              | None, _ -> None
            in
            match cert with
            | Some (view, proposal) -> { Msg.sn; view; proposal } :: acc
            | None -> acc)
          t.slots []
      in
      let vc =
        {
          Msg.new_view;
          prepared;
          vc_signer = t.ctx.Core.Orderer_intf.node;
          vc_sig = Iss_crypto.Signature.forged ();
        }
      in
      let material = Msg.view_change_material ~instance:t.seg.Core.Segment.instance vc in
      let vc =
        { vc with Msg.vc_sig = Iss_crypto.Signature.sign t.ctx.Core.Orderer_intf.keypair material }
      in
      t.view <- new_view;
      broadcast_pbft t (Msg.View_change vc);
      arm_vc_timer t
    end

  let verify_vc t (vc : Msg.view_change) =
    let material = Msg.view_change_material ~instance:t.seg.Core.Segment.instance vc in
    Iss_crypto.Signature.verify
      (Iss_crypto.Signature.public_of_id vc.Msg.vc_signer)
      material vc.Msg.vc_sig

  (* --- Commit pipeline ------------------------------------------------ *)

  let try_announce t s =
    match s.accepted with
    (* Same view gate as [try_commit]: commit votes of a view this replica
       abandoned must not reach an announce quorum here while the rest of
       the cluster commits the new view's replacement value. *)
    | Some (view, proposal) when view = t.view && not s.announced ->
        let digest = Proposal.digest proposal in
        let commits =
          Hashtbl.fold
            (fun (v, _) d acc -> if v = view && Iss_crypto.Hash.equal d digest then acc + 1 else acc)
            s.commits 0
        in
        if commits >= t.quorum then begin
          s.announced <- true;
          t.completed <- t.completed + 1;
          t.last_announce <- Engine.now t.ctx.Core.Orderer_intf.engine;
          t.ctx.Core.Orderer_intf.announce ~sn:s.sn proposal;
          if done_ t then begin
            cancel_vc_timer t;
            cancel_rec_timer t
          end
          else arm_vc_timer t
        end
    | Some _ | None -> ()

  (* Adopt a value learned through slot recovery: f+1 matching FILLs mean at
     least one correct replica committed it, so announcing is safe. *)
  let force_commit t s ~view proposal =
    if not s.announced then begin
      s.accepted <- Some (view, proposal);
      s.prepared <- Some (view, proposal);
      s.announced <- true;
      t.completed <- t.completed + 1;
      t.last_announce <- Engine.now t.ctx.Core.Orderer_intf.engine;
      t.ctx.Core.Orderer_intf.announce ~sn:s.sn proposal;
      if done_ t then begin
        cancel_vc_timer t;
        cancel_rec_timer t
      end
      else arm_vc_timer t
    end

  let try_commit t s =
    match s.accepted with
    (* [view = t.view]: once this replica demanded a view change it must
       stop forming prepared certificates in the abandoned view — its
       VIEW-CHANGE message already told the next primary it had prepared
       nothing here, and a certificate formed after that fact is invisible
       to the new-view quorum intersection (the classic split-brain:
       old-view commits racing a ⊥-filling NEW-VIEW). *)
    | Some (view, proposal)
      when view = t.view && (s.prepared = None || fst (Option.get s.prepared) < view) ->
        let digest = Proposal.digest proposal in
        let prepares =
          Hashtbl.fold
            (fun (v, _) d acc -> if v = view && Iss_crypto.Hash.equal d digest then acc + 1 else acc)
            s.prepares 0
        in
        if prepares >= t.quorum then begin
          s.prepared <- Some (view, proposal);
          Hashtbl.replace s.commits (view, t.ctx.Core.Orderer_intf.node) digest;
          broadcast_pbft t (Msg.Commit { view; sn = s.sn; digest });
          try_announce t s
        end
    | Some _ | None -> ()

  (* Accept a pre-prepare (from the live primary or replayed out of a
     NEW-VIEW) and respond with a PREPARE vote. *)
  let accept_preprepare t ~view ~sn proposal =
    let s = slot t sn in
    if s.announced && Core.Segment.contains_sn t.seg sn then begin
      (* Already committed here; a later view may re-propose the value for
         peers that missed the original quorum (e.g. under message loss).
         Vote PREPARE and COMMIT straight away — a quorum already committed
         this exact value, so the votes are safe — but never announce
         twice. *)
      match s.accepted with
      | Some (v, committed)
        when v < view
             && Iss_crypto.Hash.equal (Proposal.digest committed) (Proposal.digest proposal)
        ->
          s.accepted <- Some (view, committed);
          let digest = Proposal.digest committed in
          Hashtbl.replace s.prepares (view, t.ctx.Core.Orderer_intf.node) digest;
          Hashtbl.replace s.commits (view, t.ctx.Core.Orderer_intf.node) digest;
          broadcast_pbft t (Msg.Prepare { view; sn; digest });
          broadcast_pbft t (Msg.Commit { view; sn; digest })
      | Some _ | None -> ()
    end
    else if (not s.announced) && Core.Segment.contains_sn t.seg sn then begin
      let fresh =
        match s.accepted with Some (v, _) -> v < view | None -> true
      in
      (* Design principle 3(d): a non-⊥ proposal is acceptable only when the
         segment leader originally sb-cast it.  In view 0 that is the
         sender; in later views, non-⊥ values are only replayed from
         prepared certificates, which themselves originate in view 0. *)
      let verdict =
        match proposal with
        | Proposal.Nil ->
            if view > 0 then Core.Orderer_intf.Accept else Core.Orderer_intf.Reject
        | Proposal.Batch _ ->
            t.ctx.Core.Orderer_intf.validate_proposal t.seg ~sn proposal
      in
      match verdict with
      | Core.Orderer_intf.Accept when fresh ->
          s.accepted <- Some (view, proposal);
          let digest = Proposal.digest proposal in
          let verify_cost =
            match proposal with
            | Proposal.Batch b when t.ctx.Core.Orderer_intf.config.Core.Config.client_signatures
              ->
                Proto.Batch.length b * Iss_crypto.Signature.verify_cost_ns
            | Proposal.Batch _ | Proposal.Nil -> 0
          in
          let vote () =
            Hashtbl.replace s.prepares (view, t.ctx.Core.Orderer_intf.node) digest;
            broadcast_pbft t (Msg.Prepare { view; sn; digest });
            try_commit t s
          in
          if verify_cost > 0 then t.ctx.Core.Orderer_intf.charge_cpu verify_cost vote
          else vote ()
      | Core.Orderer_intf.Reject_malicious ->
          (* The proposal {e proves} its sender faulty (forged request
             signature or out-of-bucket request — things an honest leader
             cannot cut).  Don't wait out the view-change timer: demand the
             next view immediately so the segment's slots get ⊥-filled and
             the leader policy collects the evidence this epoch. *)
          start_view_change t (view + 1)
      | Core.Orderer_intf.Accept | Core.Orderer_intf.Reject -> ()
    end

  (* --- Leader side ---------------------------------------------------- *)

  let propose_all t =
    (* Queue a batch request for every sequence number; ISS's batcher paces
       the callbacks (rate limiting, §4.4.1), so proposals flow in parallel
       but never faster than the configured wire rate. *)
    Array.iter
      (fun sn ->
        t.ctx.Core.Orderer_intf.request_batch ~sn (fun proposal ->
            if t.active && t.view = 0 then begin
              broadcast_pbft t (Msg.Preprepare { view = 0; sn; proposal })
            end))
      t.seg.Core.Segment.seq_nrs

  (* --- View change handling ------------------------------------------ *)

  let process_new_view t ~view ~view_changes ~preprepares =
    if view >= t.view && t.active then begin
      let valid = List.filter (verify_vc t) view_changes in
      let distinct = List.sort_uniq compare (List.map (fun vc -> vc.Msg.vc_signer) valid) in
      if List.length distinct >= t.quorum then begin
        t.view <- view;
        t.highest_vc_sent <- max t.highest_vc_sent view;
        List.iter (fun (sn, proposal) -> accept_preprepare t ~view ~sn proposal) preprepares;
        arm_vc_timer t
      end
    end

  let maybe_become_leader t new_view =
    if primary t new_view = t.ctx.Core.Orderer_intf.node && t.active then begin
      match t.last_nv with
      | Some (v, body) when v = new_view ->
          (* Re-send the cached NEW-VIEW verbatim for stragglers whose view
             changes arrived after the quorum formed. *)
          broadcast_pbft t body
      | Some _ | None -> (
      match Hashtbl.find_opt t.view_changes new_view with
      | None -> ()
      | Some senders ->
          if Hashtbl.length senders >= t.quorum && new_view >= t.view then begin
            let vcs = Hashtbl.fold (fun _ vc acc -> vc :: acc) senders [] in
            (* Choose, per open sequence number, the prepared value of the
               highest view reported by any view change; ⊥ otherwise. *)
            let best = Hashtbl.create 16 in
            List.iter
              (fun vc ->
                List.iter
                  (fun (pc : Msg.prepared_cert) ->
                    match Hashtbl.find_opt best pc.Msg.sn with
                    | Some (v, _) when v >= pc.Msg.view -> ()
                    | _ -> Hashtbl.replace best pc.Msg.sn (pc.Msg.view, pc.Msg.proposal))
                  vc.Msg.prepared)
              vcs;
            (* Re-propose EVERY sequence number, merging the certificates
               from the view changes with this node's own state — including
               slots already committed locally.  Peers that committed a slot
               ignore (but re-vote on) its replay; peers that missed the
               original quorum need it to make progress. *)
            let preprepares =
              Array.to_list t.seg.Core.Segment.seq_nrs
              |> List.map (fun sn ->
                     let s = slot t sn in
                     let local =
                       match (s.prepared, s.accepted) with
                       | (Some _ as p), _ -> p
                       | None, Some (v, p) when s.announced -> Some (v, p)
                       | None, _ -> None
                     in
                     let cand =
                       match (Hashtbl.find_opt best sn, local) with
                       | Some (v1, p1), Some (v2, p2) ->
                           Some (if v2 > v1 then p2 else p1)
                       | Some (_, p), None | None, Some (_, p) -> Some p
                       | None, None -> None
                     in
                     match cand with
                     | Some proposal -> (sn, proposal)
                     | None -> (sn, Proposal.Nil))
            in
            t.view <- new_view;
            let body = Msg.New_view { view = new_view; view_changes = vcs; preprepares } in
            t.last_nv <- Some (new_view, body);
            broadcast_pbft t body;
            arm_vc_timer t
          end)
    end

  let handle_view_change t ~src vc =
    if t.active && vc.Msg.new_view > 0 && verify_vc t vc && vc.Msg.vc_signer = src then begin
      let senders =
        match Hashtbl.find_opt t.view_changes vc.Msg.new_view with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 8 in
            Hashtbl.replace t.view_changes vc.Msg.new_view s;
            s
      in
      if not (Hashtbl.mem senders src) then begin
        Hashtbl.replace senders src vc;
        (* Join the view change once f+1 nodes demand it (we may not have
           timed out ourselves yet). *)
        let f = (t.n - 1) / 3 in
        if Hashtbl.length senders > f && vc.Msg.new_view > t.highest_vc_sent then
          start_view_change t vc.Msg.new_view;
        maybe_become_leader t vc.Msg.new_view
      end
    end

  (* --- ORDERER interface ---------------------------------------------- *)

  let start t =
    t.active <- true;
    t.last_announce <- Engine.now t.ctx.Core.Orderer_intf.engine;
    arm_vc_timer t;
    arm_rec_timer t;
    if t.seg.Core.Segment.leader = t.ctx.Core.Orderer_intf.node then propose_all t

  let on_message t ~src msg =
    match msg with
    | Proto.Message.Pbft { Msg.instance; body }
      when instance = t.seg.Core.Segment.instance && t.active -> (
        match body with
        | Msg.Preprepare { view; sn; proposal } ->
            (* Only the primary of the view may propose. *)
            if src = primary t view && view = t.view then
              accept_preprepare t ~view ~sn proposal
        | Msg.Prepare { view; sn; digest } ->
            let s = slot t sn in
            if not (Hashtbl.mem s.prepares (view, src)) then begin
              Hashtbl.replace s.prepares (view, src) digest;
              try_commit t s
            end
        | Msg.Commit { view; sn; digest } ->
            let s = slot t sn in
            if not (Hashtbl.mem s.commits (view, src)) then begin
              Hashtbl.replace s.commits (view, src) digest;
              try_announce t s
            end
        | Msg.View_change vc -> handle_view_change t ~src vc
        | Msg.New_view { view; view_changes; preprepares } ->
            if src = primary t view then process_new_view t ~view ~view_changes ~preprepares
        | Msg.Fill_request { sns } ->
            List.iter
              (fun sn ->
                match Hashtbl.find_opt t.slots sn with
                | Some { announced = true; accepted = Some (view, proposal); _ } ->
                    t.ctx.Core.Orderer_intf.send ~dst:src
                      (Proto.Message.Pbft
                         {
                           Msg.instance = t.seg.Core.Segment.instance;
                           body = Msg.Fill { sn; view; proposal };
                         })
                | Some _ | None -> ())
              sns
        | Msg.Fill { sn; view; proposal } ->
            let s = slot t sn in
            if (not s.announced) && Core.Segment.contains_sn t.seg sn then begin
              Hashtbl.replace s.fills src (view, proposal);
              let digest = Proposal.digest proposal in
              let matching =
                Hashtbl.fold
                  (fun _ (_, p) acc ->
                    if Iss_crypto.Hash.equal (Proposal.digest p) digest then acc + 1 else acc)
                  s.fills 0
              in
              if matching >= Proto.Ids.max_faulty ~n:t.n + 1 then
                force_commit t s ~view proposal
            end)
    | _ -> ()

  let stop t =
    t.active <- false;
    cancel_vc_timer t;
    cancel_rec_timer t
end

let factory ctx seg =
  Core.Orderer_intf.Instance ((module Orderer), Orderer.create ctx seg)
