type qc = {
  qc_view : int;
  qc_digest : Iss_crypto.Hash.t;
  qc_sig : Iss_crypto.Threshold.combined;
}

type chain_node = {
  view : int;
  sn : int;
  parent : Iss_crypto.Hash.t;
  proposal : Proposal.t;
  justify : qc option;
}

let node_digest n =
  Iss_crypto.Hash.of_string
    (Printf.sprintf "hs-node:%d:%d:%s:%s" n.view n.sn
       (Iss_crypto.Hash.to_hex n.parent)
       (Iss_crypto.Hash.to_hex (Proposal.digest n.proposal)))

let vote_material ~instance ~view digest =
  Printf.sprintf "hs-vote:%d:%d:%s" instance view (Iss_crypto.Hash.to_hex digest)

type body =
  | Proposal_msg of chain_node
  | Vote of { view : int; digest : Iss_crypto.Hash.t; share : Iss_crypto.Threshold.share }
  | New_view of { view : int; rotation : int; justify : qc option }
  | Fetch of { digest : Iss_crypto.Hash.t }
  | Fetch_resp of { node : chain_node }
  | Fill_request of { sns : int list }
  | Fill of { sn : int; proposal : Proposal.t }

type t = { instance : int; body : body }

let header = 24
let qc_size = 8 + Iss_crypto.Hash.size + Iss_crypto.Threshold.combined_wire_size

let wire_size t =
  match t.body with
  | Proposal_msg n ->
      header + Iss_crypto.Hash.size + Proposal.wire_size n.proposal
      + (match n.justify with Some _ -> qc_size | None -> 0)
  | Vote _ -> header + Iss_crypto.Hash.size + Iss_crypto.Threshold.share_wire_size
  | New_view { justify; _ } ->
      header + 8 + (match justify with Some _ -> qc_size | None -> 0)
  | Fetch _ -> header + Iss_crypto.Hash.size
  | Fetch_resp { node } ->
      header + Iss_crypto.Hash.size + Proposal.wire_size node.proposal
      + (match node.justify with Some _ -> qc_size | None -> 0)
  | Fill_request { sns } -> header + (8 * List.length sns)
  | Fill { proposal; _ } -> header + Proposal.wire_size proposal

let pp fmt t =
  let s =
    match t.body with
    | Proposal_msg n -> Printf.sprintf "proposal(v%d)" n.view
    | Vote { view; _ } -> Printf.sprintf "vote(v%d)" view
    | New_view { view; rotation; _ } -> Printf.sprintf "new-view(v%d,r%d)" view rotation
    | Fetch { digest } -> Printf.sprintf "fetch(%s)" (Iss_crypto.Hash.short digest)
    | Fetch_resp { node } -> Printf.sprintf "fetch-resp(v%d,sn%d)" node.view node.sn
    | Fill_request { sns } -> Printf.sprintf "fill-request(%d sns)" (List.length sns)
    | Fill { sn; _ } -> Printf.sprintf "fill(sn%d)" sn
  in
  Format.fprintf fmt "hotstuff[i%d].%s" t.instance s
