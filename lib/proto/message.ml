type checkpoint_cert = {
  cc_epoch : int;
  cc_max_sn : int;
  cc_root : Iss_crypto.Hash.t;
  cc_req_count : int;
      (** requests delivered through [cc_max_sn] (Eq. (2) cumulative count) —
          lets a node that adopts the checkpoint without replaying history
          resume per-request sequence numbering where the quorum left it *)
  cc_policy : string;
      (** leader-policy snapshot ({!Core.Leader_policy.snapshot}) as of the
          end of [cc_epoch] — identical at every correct node, so it is part
          of the signed material and a catching-up node can restore it *)
  cc_sigs : (Ids.node_id * Iss_crypto.Signature.signature) list;
}

type t =
  | Request_msg of Request.t
  | Reply of { req_id : Request.id; sn : int; replier : Ids.node_id }
  | Busy of { req_id : Request.id; retry_after : Sim.Time_ns.span; shed : bool }
  | Bucket_update of { epoch : int; bucket_leaders : Ids.node_id array }
  | Checkpoint_msg of {
      epoch : int;
      max_sn : int;
      root : Iss_crypto.Hash.t;
      req_count : int;
      policy : string;
      signer : Ids.node_id;
      sig_ : Iss_crypto.Signature.signature;
    }
  | State_request of { from_sn : int }
  | State_reply of { entries : (int * Proposal.t) list; cert : checkpoint_cert }
  | Fd_heartbeat
  | Pbft of Pbft_msg.t
  | Hotstuff of Hotstuff_msg.t
  | Raft of Raft_msg.t
  | Mir_epoch_change of { epoch : int; primary : Ids.node_id }
  | Garbled of t

let checkpoint_material ~epoch ~max_sn ~root ~req_count ~policy =
  Printf.sprintf "checkpoint:%d:%d:%s:%d:%s" epoch max_sn (Iss_crypto.Hash.to_hex root)
    req_count policy

let cert_size cert =
  32 + Iss_crypto.Hash.size + String.length cert.cc_policy
  + (List.length cert.cc_sigs * (8 + Iss_crypto.Signature.wire_size))

let rec wire_size = function
  | Request_msg r -> Request.wire_size r
  | Reply _ -> 32
  | Busy _ -> 32
  | Bucket_update { bucket_leaders; _ } -> 16 + (Array.length bucket_leaders * 4)
  | Checkpoint_msg { policy; _ } ->
      32 + Iss_crypto.Hash.size + String.length policy + Iss_crypto.Signature.wire_size
  | State_request _ -> 16
  | State_reply { entries; cert } ->
      cert_size cert
      + List.fold_left (fun acc (_, p) -> acc + 8 + Proposal.wire_size p) 0 entries
  | Fd_heartbeat -> 16
  | Pbft m -> Pbft_msg.wire_size m
  | Hotstuff m -> Hotstuff_msg.wire_size m
  | Raft m -> Raft_msg.wire_size m
  | Mir_epoch_change _ -> 24
  | Garbled inner -> wire_size inner

let rec pp fmt = function
  | Request_msg r -> Format.fprintf fmt "request%a" Request.pp_id r.id
  | Reply { req_id; sn; replier } ->
      Format.fprintf fmt "reply%a@sn%d from n%d" Request.pp_id req_id sn replier
  | Busy { req_id; retry_after; shed } ->
      Format.fprintf fmt "busy%a retry-after %a%s" Request.pp_id req_id Sim.Time_ns.pp
        retry_after
        (if shed then " (shed)" else "")
  | Bucket_update { epoch; _ } -> Format.fprintf fmt "bucket-update(e%d)" epoch
  | Checkpoint_msg { epoch; max_sn; signer; _ } ->
      Format.fprintf fmt "checkpoint(e%d,sn%d) from n%d" epoch max_sn signer
  | State_request { from_sn } -> Format.fprintf fmt "state-request(sn%d..)" from_sn
  | State_reply { entries = []; cert } ->
      Format.fprintf fmt "state-snapshot(e%d,sn%d)" cert.cc_epoch cert.cc_max_sn
  | State_reply { entries; _ } -> Format.fprintf fmt "state-reply(%d entries)" (List.length entries)
  | Fd_heartbeat -> Format.pp_print_string fmt "heartbeat"
  | Pbft m -> Pbft_msg.pp fmt m
  | Hotstuff m -> Hotstuff_msg.pp fmt m
  | Raft m -> Raft_msg.pp fmt m
  | Mir_epoch_change { epoch; primary } ->
      Format.fprintf fmt "mir-epoch-change(e%d,primary n%d)" epoch primary
  | Garbled inner -> Format.fprintf fmt "garbled(%a)" pp inner
