(** The top-level wire message: everything any process sends to any other.

    One closed variant keeps message-size accounting, tracing and test
    inspection trivial; each ordering protocol contributes its own payload
    module ({!Pbft_msg}, {!Hotstuff_msg}, {!Raft_msg}). *)

type checkpoint_cert = {
  cc_epoch : int;
  cc_max_sn : int;
  cc_root : Iss_crypto.Hash.t;
  cc_req_count : int;
      (** requests delivered through [cc_max_sn] — the Eq. (2) cumulative
          count, so a node adopting the checkpoint without replaying the
          pruned history resumes per-request numbering where the quorum
          left it *)
  cc_policy : string;
      (** leader-policy snapshot ({!Core.Leader_policy.snapshot}) as of the
          end of [cc_epoch]; deterministic from the log, hence identical at
          every correct node and safely part of the signed material *)
  cc_sigs : (Ids.node_id * Iss_crypto.Signature.signature) list;
      (** 2f+1 matching CHECKPOINT signatures (paper §3.5) *)
}

type t =
  | Request_msg of Request.t  (** client → node *)
  | Reply of { req_id : Request.id; sn : int; replier : Ids.node_id }
      (** node → client; the client waits for f+1 matching replies *)
  | Busy of { req_id : Request.id; retry_after : Sim.Time_ns.span; shed : bool }
      (** node → client pushback: the node's ingress is saturated.
          [retry_after] is a server-suggested backoff floor; [shed] tells
          the client whether the request was actually dropped (it must
          retransmit to be ordered) or merely advised to slow down (the
          request is still queued). *)
  | Bucket_update of { epoch : int; bucket_leaders : Ids.node_id array }
      (** node → client at epoch transitions: who leads each bucket
          (paper §4.3 leader detection) *)
  | Checkpoint_msg of {
      epoch : int;
      max_sn : int;
      root : Iss_crypto.Hash.t;
      req_count : int;
      policy : string;
      signer : Ids.node_id;
      sig_ : Iss_crypto.Signature.signature;
    }
  | State_request of { from_sn : int }
      (** lagging node → any node: fetch missing log entries *)
  | State_reply of { entries : (int * Proposal.t) list; cert : checkpoint_cert }
      (** [entries = \[\]] is a {e checkpoint snapshot}: the server no longer
          retains the requested history (log GC pruned it), so instead of
          entries it offers the quorum-signed certificate; the requester
          fast-forwards its log frontier, request numbering and leader
          policy to the checkpoint and rejoins from there *)
  | Fd_heartbeat  (** failure-detector liveness beacon *)
  | Pbft of Pbft_msg.t
  | Hotstuff of Hotstuff_msg.t
  | Raft of Raft_msg.t
  | Mir_epoch_change of { epoch : int; primary : Ids.node_id }
      (** Mir-BFT model: epoch-primary configuration announcement *)
  | Garbled of t
      (** A message whose authenticator (channel MAC / signature) fails
          verification — produced only by the Byzantine adversary proxy
          ({!Runner.Adversary}), never by honest code.  Receivers must drop
          it at ingress; the payload is kept so wire-size accounting and
          traces still reflect what was physically transmitted. *)

val checkpoint_material :
  epoch:int -> max_sn:int -> root:Iss_crypto.Hash.t -> req_count:int -> policy:string -> string
(** Canonical bytes a CHECKPOINT signature covers. *)

val wire_size : t -> int
val pp : Format.formatter -> t -> unit
