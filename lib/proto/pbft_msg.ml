type prepared_cert = { sn : int; view : int; proposal : Proposal.t }

type view_change = {
  new_view : int;
  prepared : prepared_cert list;
  vc_signer : Ids.node_id;
  vc_sig : Iss_crypto.Signature.signature;
}

type body =
  | Preprepare of { view : int; sn : int; proposal : Proposal.t }
  | Prepare of { view : int; sn : int; digest : Iss_crypto.Hash.t }
  | Commit of { view : int; sn : int; digest : Iss_crypto.Hash.t }
  | View_change of view_change
  | New_view of {
      view : int;
      view_changes : view_change list;
      preprepares : (int * Proposal.t) list;
    }
  | Fill_request of { sns : int list }
  | Fill of { sn : int; view : int; proposal : Proposal.t }

type t = { instance : int; body : body }

let view_change_material ~instance vc =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "pbft-vc:%d:%d:%d:" instance vc.new_view vc.vc_signer);
  List.iter
    (fun pc ->
      Buffer.add_string buf
        (Printf.sprintf "%d/%d/%s;" pc.sn pc.view
           (Iss_crypto.Hash.to_hex (Proposal.digest pc.proposal))))
    vc.prepared;
  Buffer.contents buf

let header = 24 (* instance + view + sn + type tag *)

let view_change_size vc =
  header
  + Iss_crypto.Signature.wire_size
  + List.fold_left (fun acc pc -> acc + 16 + Proposal.wire_size pc.proposal) 0 vc.prepared

let wire_size t =
  match t.body with
  | Preprepare { proposal; _ } -> header + Proposal.wire_size proposal
  | Prepare _ | Commit _ -> header + Iss_crypto.Hash.size
  | View_change vc -> view_change_size vc
  | New_view { view_changes; preprepares; _ } ->
      header
      + List.fold_left (fun acc vc -> acc + view_change_size vc) 0 view_changes
      + List.fold_left (fun acc (_, p) -> acc + 8 + Proposal.wire_size p) 0 preprepares
  | Fill_request { sns } -> header + (8 * List.length sns)
  | Fill { proposal; _ } -> header + Proposal.wire_size proposal

let pp fmt t =
  let s =
    match t.body with
    | Preprepare { view; sn; _ } -> Printf.sprintf "preprepare(v%d,sn%d)" view sn
    | Prepare { view; sn; _ } -> Printf.sprintf "prepare(v%d,sn%d)" view sn
    | Commit { view; sn; _ } -> Printf.sprintf "commit(v%d,sn%d)" view sn
    | View_change vc -> Printf.sprintf "view-change(v%d)" vc.new_view
    | New_view { view; _ } -> Printf.sprintf "new-view(v%d)" view
    | Fill_request { sns } -> Printf.sprintf "fill-request(%d sns)" (List.length sns)
    | Fill { sn; _ } -> Printf.sprintf "fill(sn%d)" sn
  in
  Format.fprintf fmt "pbft[i%d].%s" t.instance s
