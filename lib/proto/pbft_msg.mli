(** PBFT wire messages (Castro–Liskov), adapted to SB segments (paper §4.2.1).

    Every message carries the SB [instance] it belongs to; one PBFT instance
    runs per segment.  View changes are signed (the paper follows the
    signature-based variant of PBFT's view change for simplicity). *)

type prepared_cert = {
  sn : int;
  view : int;
  proposal : Proposal.t;
      (** The full proposal is included so a new leader can re-propose it;
          the real protocol ships the batch or fetches it by digest —
          equivalent bytes either way. *)
}

type view_change = {
  new_view : int;
  prepared : prepared_cert list;  (** entries prepared by the sender *)
  vc_signer : Ids.node_id;
  vc_sig : Iss_crypto.Signature.signature;
}

type body =
  | Preprepare of { view : int; sn : int; proposal : Proposal.t }
  | Prepare of { view : int; sn : int; digest : Iss_crypto.Hash.t }
  | Commit of { view : int; sn : int; digest : Iss_crypto.Hash.t }
  | View_change of view_change
  | New_view of {
      view : int;
      view_changes : view_change list;  (** quorum justifying the new view *)
      preprepares : (int * Proposal.t) list;
          (** what the new leader (re-)proposes: prepared values, ⊥ elsewhere *)
    }
  | Fill_request of { sns : int list }
      (** Slot recovery (negative acknowledgment): sent by a replica whose
          instance has stalled with these sequence numbers uncommitted, e.g.
          because commit votes were lost and too few peers remain unfinished
          to drive a view change. *)
  | Fill of { sn : int; view : int; proposal : Proposal.t }
      (** Answer to {!Fill_request}: the value the sender committed at [sn].
          The asker adopts it once f+1 distinct peers report the same value
          (at least one of them is correct, so the value really committed). *)

type t = { instance : int; body : body }

val view_change_material : instance:int -> view_change -> string
(** Canonical byte string a view-change signature covers. *)

val wire_size : t -> int
val pp : Format.formatter -> t -> unit
