module Time_ns = Sim.Time_ns
module Engine = Sim.Engine
module Msg = Proto.Raft_msg
module Proposal = Proto.Proposal

module Orderer = struct
  type role = Leader | Follower | Candidate

  type t = {
    ctx : Core.Orderer_intf.ctx;
    seg : Core.Segment.t;
    n : int;
    majority : int;
    len : int;  (* entries in the segment *)
    entries : Msg.entry option array;  (* my log, by segment index *)
    mutable term : int;
    mutable role : role;
    mutable voted_for : int option;  (* per current term *)
    mutable commit_idx : int;  (* highest committed index, -1 if none *)
    mutable announced_upto : int;  (* highest announced index, -1 if none *)
    (* Leader state *)
    next_idx : int array;  (* per follower *)
    match_idx : int array;
    mutable appended : int;  (* entries appended to my log so far *)
    votes : (int, unit) Hashtbl.t;  (* candidates: granted votes *)
    mutable election_round : int;  (* doubles the timer window *)
    mutable hb_timer : Engine.timer_id option;
    mutable election_timer : Engine.timer_id option;
    rng : Sim.Rng.t;
    mutable active : bool;
  }

  let me t = t.ctx.Core.Orderer_intf.node

  let create ctx seg =
    let n = ctx.Core.Orderer_intf.config.Core.Config.n in
    let len = Core.Segment.seq_count seg in
    {
      ctx;
      seg;
      n;
      majority = Proto.Ids.majority ~n;
      len;
      entries = Array.make len None;
      term = 0;
      role = (if ctx.Core.Orderer_intf.node = seg.Core.Segment.leader then Leader else Follower);
      voted_for = Some seg.Core.Segment.leader;
      commit_idx = -1;
      announced_upto = -1;
      next_idx = Array.make n 0;
      match_idx = Array.make n (-1);
      appended = 0;
      votes = Hashtbl.create 8;
      election_round = 0;
      hb_timer = None;
      election_timer = None;
      rng =
        Sim.Rng.create
          ~seed:
            (Int64.of_int
               ((seg.Core.Segment.instance * 1_000_003) + ctx.Core.Orderer_intf.node + 1));
      active = false;
    }

  let send_raft t ~dst body =
    t.ctx.Core.Orderer_intf.send ~dst
      (Proto.Message.Raft { Msg.instance = t.seg.Core.Segment.instance; body })

  let cancel_hb t =
    match t.hb_timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.hb_timer <- None
    | None -> ()

  let cancel_election t =
    match t.election_timer with
    | Some timer ->
        Engine.cancel t.ctx.Core.Orderer_intf.engine timer;
        t.election_timer <- None
    | None -> ()

  let done_ t = t.announced_upto >= t.len - 1

  (* Last index of the contiguous prefix (and its term).  Elections compare
     logs by this — not by the highest filled index — because entries beyond
     a gap are unacknowledged and carry no weight in the up-to-date check. *)
  let contiguous_last t =
    let m = ref (-1) in
    (try
       for i = 0 to t.len - 1 do
         if t.entries.(i) = None then raise Exit else m := i
       done
     with Exit -> ());
    let term =
      if !m >= 0 then match t.entries.(!m) with Some e -> e.Msg.term | None -> 0 else 0
    in
    (!m, term)

  let announce_ready t =
    while t.announced_upto < t.commit_idx do
      let idx = t.announced_upto + 1 in
      match t.entries.(idx) with
      | Some e ->
          t.announced_upto <- idx;
          t.ctx.Core.Orderer_intf.announce ~sn:t.seg.Core.Segment.seq_nrs.(idx)
            e.Msg.proposal
      | None -> t.announced_upto <- t.commit_idx (* unreachable: gap below commit *)
    done

  (* ---- Election timer (follower / candidate) ------------------------- *)

  let rec arm_election t =
    cancel_election t;
    if t.active && t.role <> Leader && not (done_ t) then begin
      let base = t.ctx.Core.Orderer_intf.config.Core.Config.epoch_change_timeout in
      (* Random timer in [T, 2T), both bounds doubling with each failed
         election round (§4.2.3). *)
      let scale = 1 lsl min t.election_round 16 in
      let lo = base * scale in
      let delay = lo + Sim.Rng.int t.rng lo in
      t.election_timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay (fun () ->
               t.election_timer <- None;
               start_election t))
    end

  and start_election t =
    if t.active && t.role <> Leader && not (done_ t) then begin
      t.ctx.Core.Orderer_intf.report_suspect t.seg.Core.Segment.leader;
      t.term <- t.term + 1;
      t.election_round <- t.election_round + 1;
      t.role <- Candidate;
      t.voted_for <- Some (me t);
      Hashtbl.reset t.votes;
      Hashtbl.replace t.votes (me t) ();
      let last_idx, last_term = contiguous_last t in
      for dst = 0 to t.n - 1 do
        if dst <> me t then
          send_raft t ~dst (Msg.Request_vote { term = t.term; last_idx; last_term })
      done;
      arm_election t
    end

  (* ---- Leader side ---------------------------------------------------- *)

  and replicate_to t ~dst =
    let from = t.next_idx.(dst) in
    let prev_idx = from - 1 in
    let prev_term =
      if prev_idx >= 0 then match t.entries.(prev_idx) with Some e -> e.Msg.term | None -> 0
      else 0
    in
    let rec collect i acc =
      if i >= t.len then List.rev acc
      else
        match t.entries.(i) with
        | Some e -> collect (i + 1) (e :: acc)
        | None -> List.rev acc
    in
    let entries = collect from [] in
    send_raft t ~dst
      (Msg.Append_entries
         { term = t.term; prev_idx; prev_term; entries; leader_commit = t.commit_idx })

  and replicate_all t =
    for dst = 0 to t.n - 1 do
      if dst <> me t then replicate_to t ~dst
    done

  and arm_heartbeat t =
    cancel_hb t;
    if t.active && t.role = Leader then begin
      let interval =
        max (t.ctx.Core.Orderer_intf.config.Core.Config.min_batch_timeout) (Time_ns.ms 200)
      in
      t.hb_timer <-
        Some
          (Engine.schedule t.ctx.Core.Orderer_intf.engine ~delay:interval (fun () ->
               t.hb_timer <- None;
               if t.active && t.role = Leader then begin
                 (* Re-send everything unacknowledged — the redundant
                    re-proposal behaviour the paper calls out. *)
                 replicate_all t;
                 arm_heartbeat t
               end))
    end

  and append_local t ~idx proposal =
    if t.entries.(idx) = None then begin
      t.entries.(idx) <- Some { Msg.idx; term = t.term; proposal };
      t.match_idx.(me t) <- max t.match_idx.(me t) idx;
      t.appended <- max t.appended (idx + 1)
    end

  and leader_advance_commit t =
    (* Raft's commit rule (§5.4.2): an entry commits when it is replicated
       on a majority AND carries the leader's current term; entries from
       earlier terms are never committed by counting — they commit
       implicitly, as the prefix of a current-term commit.  Counting
       prior-term entries is the classic Figure-8 unsafety: a healed
       ex-leader's stale entry can sit on a majority and still be
       overwritten by a later leader. *)
    let counts idx =
      let c = ref 0 in
      for i = 0 to t.n - 1 do
        if t.match_idx.(i) >= idx then incr c
      done;
      !c
    in
    let target = ref t.commit_idx in
    for idx = t.commit_idx + 1 to t.len - 1 do
      match t.entries.(idx) with
      | Some e when e.Msg.term = t.term && counts idx >= t.majority -> target := idx
      | Some _ | None -> ()
    done;
    if !target > t.commit_idx then begin
      t.commit_idx <- !target;
      announce_ready t
    end

  and become_leader t =
    t.role <- Leader;
    t.election_round <- 0;
    cancel_election t;
    (* Re-stamp the whole segment log with the new term, preserving the
       values (⊥ in the holes — design principle 2: a takeover leader never
       proposes client batches).  A fixed-length log has no room for Raft's
       no-op entry, and the commit rule only counts current-term entries, so
       without the re-stamp a takeover leader holding a full log could never
       commit anything again.  Committed values survive: leader election's
       up-to-date check guarantees this log contains every committed entry,
       and the re-stamp changes terms only. *)
    for idx = 0 to t.len - 1 do
      let proposal =
        match t.entries.(idx) with Some e -> e.Msg.proposal | None -> Proposal.Nil
      in
      t.entries.(idx) <- Some { Msg.idx; term = t.term; proposal }
    done;
    t.appended <- t.len;
    for i = 0 to t.n - 1 do
      t.next_idx.(i) <- t.len;
      if i <> me t then t.match_idx.(i) <- -1
    done;
    t.match_idx.(me t) <- t.len - 1;
    replicate_all t;
    arm_heartbeat t

  (* ---- Initial leader proposal flow ----------------------------------- *)

  let propose_all t =
    Array.iteri
      (fun idx sn ->
        t.ctx.Core.Orderer_intf.request_batch ~sn (fun proposal ->
            if t.active && t.role = Leader then begin
              append_local t ~idx proposal;
              replicate_all t;
              leader_advance_commit t
            end))
      t.seg.Core.Segment.seq_nrs

  (* ---- Follower side --------------------------------------------------- *)

  let handle_append t ~src ~term ~prev_idx ~prev_term ~entries ~leader_commit =
    if term >= t.term && not (src = me t) then begin
      if term > t.term then begin
        t.term <- term;
        t.voted_for <- None
      end;
      if t.role <> Follower && src <> me t then t.role <- Follower;
      t.election_round <- 0;
      arm_election t;
      (* Consistency check on the previous entry.  Same index and term imply
         the same value (one leader per term writes each index exactly
         once), so a term match anchors the rest of the exchange. *)
      let consistent =
        prev_idx < 0
        ||
        match t.entries.(prev_idx) with
        | Some e -> e.Msg.term = prev_term
        | None -> false
      in
      if consistent then begin
        List.iter
          (fun (e : Msg.entry) ->
            if e.Msg.idx >= 0 && e.Msg.idx < t.len then
              match t.entries.(e.Msg.idx) with
              | None -> t.entries.(e.Msg.idx) <- Some e
              | Some old when old.Msg.term <> e.Msg.term ->
                  (* Conflict: the current leader's entry wins (Raft's log
                     repair).  An index already delivered can only be
                     re-stamped, never re-valued — leader completeness
                     guarantees the values agree, and checking keeps a
                     divergent entry from silently replacing a delivery. *)
                  if
                    e.Msg.idx > t.announced_upto
                    || Iss_crypto.Hash.equal
                         (Proposal.digest old.Msg.proposal)
                         (Proposal.digest e.Msg.proposal)
                  then t.entries.(e.Msg.idx) <- Some e
              | Some _ -> ())
          entries;
        (* Ack only the verified prefix: what the consistency check plus
           this append actually pinned down.  Acking the raw contiguous
           prefix would vouch for stale pre-conflict entries beyond the
           window and let the leader count (and commit) them. *)
        let m = ref (-1) in
        (try
           for i = 0 to t.len - 1 do
             if t.entries.(i) = None then begin
               m := i - 1;
               raise Exit
             end
           done;
           m := t.len - 1
         with Exit -> ());
        let ack = min !m (prev_idx + List.length entries) in
        if min leader_commit ack > t.commit_idx then begin
          t.commit_idx <- min leader_commit ack;
          announce_ready t
        end;
        send_raft t ~dst:src (Msg.Append_reply { term = t.term; success = true; match_idx = ack })
      end
      else
        send_raft t ~dst:src
          (Msg.Append_reply { term = t.term; success = false; match_idx = prev_idx - 1 })
    end

  let handle_append_reply t ~src ~term ~success ~match_idx =
    if t.active && t.role = Leader && term = t.term then
      if success then begin
        if match_idx > t.match_idx.(src) then begin
          t.match_idx.(src) <- match_idx;
          t.next_idx.(src) <- match_idx + 1;
          leader_advance_commit t
        end
      end
      else begin
        (* Walk back one step and retry immediately — waiting for the next
           heartbeat would make log repair crawl at the heartbeat period. *)
        t.next_idx.(src) <- min (max 0 match_idx) (max 0 (t.next_idx.(src) - 1));
        replicate_to t ~dst:src
      end

  let handle_request_vote t ~src ~term ~last_idx ~last_term =
    if term > t.term then begin
      t.term <- term;
      t.voted_for <- None;
      if t.role = Leader then cancel_hb t;
      t.role <- Follower
    end;
    let my_last = ref (-1) in
    Array.iteri (fun i e -> if e <> None then my_last := i) t.entries;
    let my_last_term =
      if !my_last >= 0 then match t.entries.(!my_last) with Some e -> e.Msg.term | None -> 0
      else 0
    in
    let up_to_date =
      last_term > my_last_term || (last_term = my_last_term && last_idx >= !my_last)
    in
    let grant = term = t.term && t.voted_for = None && up_to_date in
    if grant then begin
      t.voted_for <- Some src;
      arm_election t
    end;
    send_raft t ~dst:src (Msg.Vote_reply { term = t.term; granted = grant })

  let handle_vote_reply t ~src ~term ~granted =
    if t.active && t.role = Candidate && term = t.term && granted then begin
      Hashtbl.replace t.votes src ();
      if Hashtbl.length t.votes >= t.majority then become_leader t
    end

  (* ---- ORDERER interface ---------------------------------------------- *)

  let start t =
    t.active <- true;
    if t.role = Leader then begin
      arm_heartbeat t;
      propose_all t
    end
    else arm_election t

  let on_message t ~src msg =
    match msg with
    | Proto.Message.Raft { Msg.instance; body }
      when instance = t.seg.Core.Segment.instance && t.active -> (
        match body with
        | Msg.Append_entries { term; prev_idx; prev_term; entries; leader_commit } ->
            handle_append t ~src ~term ~prev_idx ~prev_term ~entries ~leader_commit
        | Msg.Append_reply { term; success; match_idx } ->
            handle_append_reply t ~src ~term ~success ~match_idx
        | Msg.Request_vote { term; last_idx; last_term } ->
            handle_request_vote t ~src ~term ~last_idx ~last_term
        | Msg.Vote_reply { term; granted } -> handle_vote_reply t ~src ~term ~granted)
    | _ -> ()

  let stop t =
    t.active <- false;
    cancel_hb t;
    cancel_election t
end

let factory ctx seg =
  Core.Orderer_intf.Instance ((module Orderer), Orderer.create ctx seg)
