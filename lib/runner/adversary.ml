(* The Byzantine adversary proxy: a man-in-the-middle on each node's raw
   send path.

   The proxy owns NO honest-path code: Cluster only consults it when a
   schedule configured it (the [adversary] field stays [None] otherwise, and
   the send closure reduces to the pre-existing direct [Sim.Network.send]).
   When active for a source node, [route] rewrites that node's outgoing
   traffic according to the attack — the node itself keeps running the
   honest protocol code, which is exactly the point: the defenses under test
   are at the *receivers*, and the attacker's local state evolves the way a
   real equivocator's would (it believes its own original messages).

   All attacks are deterministic functions of the message stream: no RNG, so
   a Byzantine run is exactly reproducible from its scenario. *)

module Msg = Proto.Message

type attack =
  | Equivocate
  | Censor of { buckets : int list }
  | Corrupt_sig
  | Replay
  | Bad_checkpoint

let attack_name = function
  | Equivocate -> "equivocate"
  | Censor _ -> "censor"
  | Corrupt_sig -> "corrupt-sig"
  | Replay -> "replay"
  | Bad_checkpoint -> "bad-checkpoint"

(* Per-source-node adversary state. *)
type node_state = {
  mutable active : attack option;
  mutable ever_active : bool;
  (* Replay attack: a bounded ring of this node's past outgoing protocol
     messages, and past batched client requests, re-injected verbatim while
     the window is open. *)
  ring : (int * Msg.t) option array;
  mutable ring_next : int;  (* next write slot *)
  mutable replay_cursor : int;  (* next slot to replay from *)
  req_ring : Proto.Request.t option array;
  mutable req_next : int;
  mutable req_cursor : int;
}

type t = {
  n : int;
  config : Core.Config.t;
  states : node_state array;
}

let ring_capacity = 64

let create ~n ~config =
  {
    n;
    config;
    states =
      Array.init n (fun _ ->
          {
            active = None;
            ever_active = false;
            ring = Array.make ring_capacity None;
            ring_next = 0;
            replay_cursor = 0;
            req_ring = Array.make ring_capacity None;
            req_next = 0;
            req_cursor = 0;
          });
  }

let set_attack t ~node attack =
  let st = t.states.(node) in
  st.active <- attack;
  if attack <> None then st.ever_active <- true

let active t ~node = t.states.(node).active
let ever_byzantine t ~node = t.states.(node).ever_active

(* ------------------------------------------------------------------ *)
(* Equivocation: disjoint receiver subsets, neither of which can reach a
   quorum together with the attacker.

   Receivers are ranked by their position among the non-attacker ids (a pure
   function of (src, dst) — no state).  The first q-2 receivers get the
   original proposal, the next q-2 get a conflicting one, the rest get
   nothing.  Counting the attacker's own vote, each side holds at most
   (q-2) + 1 = q-1 < q matching votes, so neither conflicting value can
   prepare or commit: the slot stalls, the view change ⊥-fills it, and the
   epoch-end ⊥ evidence points at the attacker's segment. *)

let rank ~src ~dst = if dst > src then dst - 1 else dst

type side = Original | Conflicting | Silence

let equivocation_side t ~src ~dst =
  let q = Proto.Ids.quorum ~n:t.n in
  let width = max 1 (q - 2) in
  let r = rank ~src ~dst in
  if r < width then Original else if r < 2 * width then Conflicting else Silence

(* The conflicting value: drop the first request of the batch when it has
   one (a strictly valid sub-batch — this side tests pure quorum
   intersection), or substitute a fabricated request when the batch is empty
   (the fabricated request carries a failing signature and lands in a bucket
   the segment does not own, so receivers additionally exercise the
   Reject_malicious ingress path). *)
let fabricated_request ~sn =
  Proto.Request.make ~client:999_983 ~ts:(sn + 1)
    ~payload_size:64
    ~sig_data:(Proto.Request.Presumed false)
    ~submitted_at:Sim.Time_ns.zero ()

let conflicting_batch ~sn (batch : Proto.Batch.t) =
  let reqs = Proto.Batch.requests batch in
  if Array.length reqs > 0 then
    Proto.Batch.make (Array.sub reqs 1 (Array.length reqs - 1))
  else Proto.Batch.make [| fabricated_request ~sn |]

let equivocate_proposal ~sn = function
  | Proto.Proposal.Nil -> Proto.Proposal.Nil
  | Proto.Proposal.Batch b -> Proto.Proposal.Batch (conflicting_batch ~sn b)

(* ------------------------------------------------------------------ *)
(* Censorship: filter chosen buckets (or, with [buckets = []], every
   request) out of the leader's outgoing proposals.  The attacker's local
   copy keeps the full batch — real censors believe their own lies — so its
   accepted digest diverges from what followers commit and it later repairs
   itself through the Fill/state-transfer path. *)

let censored t ~buckets (r : Proto.Request.t) =
  buckets = []
  ||
  let b =
    Proto.Request.bucket_of_id ~num_buckets:(Core.Config.num_buckets t.config) r.Proto.Request.id
  in
  List.mem b buckets

let censor_batch t ~buckets (batch : Proto.Batch.t) =
  let keep =
    Array.of_list
      (List.filter
         (fun r -> not (censored t ~buckets r))
         (Array.to_list (Proto.Batch.requests batch)))
  in
  Proto.Batch.make keep

let censor_proposal t ~buckets = function
  | Proto.Proposal.Nil -> Proto.Proposal.Nil
  | Proto.Proposal.Batch b -> Proto.Proposal.Batch (censor_batch t ~buckets b)

(* ------------------------------------------------------------------ *)
(* Bad checkpoints: corrupt the state root and re-sign the corrupted
   material with the attacker's own (valid) key.  Individual signature
   checks pass — the attacker is allowed to sign whatever it likes — but the
   vote can never join the honest quorum's matching set, and a state-
   transfer certificate rebuilt this way fails quorum verification at the
   receiver. *)

let corrupt_root root =
  Iss_crypto.Hash.of_string ("corrupt:" ^ Iss_crypto.Hash.to_hex root)

let corrupt_checkpoint ~signer ~epoch ~max_sn ~root ~req_count ~policy =
  let root = corrupt_root root in
  let material = Msg.checkpoint_material ~epoch ~max_sn ~root ~req_count ~policy in
  let kp = Iss_crypto.Signature.genkey ~id:signer in
  let sig_ = Iss_crypto.Signature.sign kp material in
  Msg.Checkpoint_msg { epoch; max_sn; root; req_count; policy; signer; sig_ }

let corrupt_cert ~signer (cert : Msg.checkpoint_cert) =
  let cc_root = corrupt_root cert.Msg.cc_root in
  let material =
    Msg.checkpoint_material ~epoch:cert.Msg.cc_epoch ~max_sn:cert.Msg.cc_max_sn ~root:cc_root
      ~req_count:cert.Msg.cc_req_count ~policy:cert.Msg.cc_policy
  in
  let kp = Iss_crypto.Signature.genkey ~id:signer in
  (* The attacker re-signs the corrupted material itself; the quorum's
     signatures it forwards no longer match it, so the receiver's
     per-signer verification strips them below the checkpoint quorum. *)
  let cc_sigs =
    (signer, Iss_crypto.Signature.sign kp material)
    :: List.filter (fun (s, _) -> s <> signer) cert.Msg.cc_sigs
  in
  { cert with Msg.cc_root; cc_sigs }

(* ------------------------------------------------------------------ *)
(* Replay: record, then re-inject.  Only protocol payloads that carry state
   (proposals, votes, checkpoints) are recorded; while the window is open
   every genuine send piggybacks one stale protocol message and one stale
   client request to the same destination. *)

let record_worthy = function
  | Msg.Pbft _ | Msg.Hotstuff _ | Msg.Checkpoint_msg _ -> true
  | _ -> false

let batch_of_message = function
  | Msg.Pbft
      { Proto.Pbft_msg.body = Proto.Pbft_msg.Preprepare { proposal = Proto.Proposal.Batch b; _ }; _ }
  | Msg.Hotstuff
      {
        Proto.Hotstuff_msg.body =
          Proto.Hotstuff_msg.Proposal_msg { proposal = Proto.Proposal.Batch b; _ };
        _;
      } ->
      Some b
  | _ -> None

let record st ~dst msg =
  if record_worthy msg then begin
    st.ring.(st.ring_next) <- Some (dst, msg);
    st.ring_next <- (st.ring_next + 1) mod ring_capacity
  end;
  match batch_of_message msg with
  | Some b when Proto.Batch.length b > 0 ->
      let r = (Proto.Batch.requests b).(0) in
      st.req_ring.(st.req_next) <- Some r;
      st.req_next <- (st.req_next + 1) mod ring_capacity
  | _ -> ()

let next_replay st ~dst msg =
  let stale = ref [] in
  (* One stale protocol message per send, cycling through the ring;
     redirected to the current destination so every replica gets its share
     of duplicates. *)
  (match st.ring.(st.replay_cursor) with
  | Some (_, old) when old != msg -> stale := (dst, old) :: !stale
  | _ -> ());
  st.replay_cursor <- (st.replay_cursor + 1) mod ring_capacity;
  (* And one previously-batched client request, retransmitted as if the
     client had sent it again. *)
  (match st.req_ring.(st.req_cursor) with
  | Some r -> stale := (dst, Msg.Request_msg r) :: !stale
  | None -> ());
  st.req_cursor <- (st.req_cursor + 1) mod ring_capacity;
  !stale

(* ------------------------------------------------------------------ *)
(* The routing function: called for every (src, dst, msg) the cluster's
   send closure would transmit; returns the (dst, msg) list to transmit
   instead. *)

let route t ~src ~dst msg =
  let st = t.states.(src) in
  match st.active with
  | None -> [ (dst, msg) ]
  | Some Equivocate -> (
      match msg with
      | Msg.Pbft
          ({ Proto.Pbft_msg.body = Proto.Pbft_msg.Preprepare { view; sn; proposal }; _ } as m)
        -> (
          match equivocation_side t ~src ~dst with
          | Original -> [ (dst, msg) ]
          | Silence -> []
          | Conflicting ->
              let proposal = equivocate_proposal ~sn proposal in
              [
                ( dst,
                  Msg.Pbft
                    { m with Proto.Pbft_msg.body = Proto.Pbft_msg.Preprepare { view; sn; proposal } } );
              ])
      | Msg.Hotstuff
          ({ Proto.Hotstuff_msg.body = Proto.Hotstuff_msg.Proposal_msg node; _ } as m)
        when node.Proto.Hotstuff_msg.proposal <> Proto.Proposal.Nil -> (
          match equivocation_side t ~src ~dst with
          | Original -> [ (dst, msg) ]
          | Silence -> []
          | Conflicting ->
              let node =
                {
                  node with
                  Proto.Hotstuff_msg.proposal =
                    equivocate_proposal ~sn:node.Proto.Hotstuff_msg.sn
                      node.Proto.Hotstuff_msg.proposal;
                }
              in
              [
                ( dst,
                  Msg.Hotstuff
                    { m with Proto.Hotstuff_msg.body = Proto.Hotstuff_msg.Proposal_msg node } );
              ])
      | _ -> [ (dst, msg) ])
  | Some (Censor { buckets }) -> (
      match msg with
      | Msg.Pbft ({ Proto.Pbft_msg.body = Proto.Pbft_msg.Preprepare { view; sn; proposal }; _ } as m)
        ->
          let proposal = censor_proposal t ~buckets proposal in
          [
            ( dst,
              Msg.Pbft
                { m with Proto.Pbft_msg.body = Proto.Pbft_msg.Preprepare { view; sn; proposal } } );
          ]
      | Msg.Hotstuff ({ Proto.Hotstuff_msg.body = Proto.Hotstuff_msg.Proposal_msg node; _ } as m)
        ->
          let node =
            {
              node with
              Proto.Hotstuff_msg.proposal =
                censor_proposal t ~buckets node.Proto.Hotstuff_msg.proposal;
            }
          in
          [
            ( dst,
              Msg.Hotstuff
                { m with Proto.Hotstuff_msg.body = Proto.Hotstuff_msg.Proposal_msg node } );
          ]
      | _ -> [ (dst, msg) ])
  | Some Corrupt_sig ->
      (* Every outgoing control message fails authentication at the
         receiver. *)
      [ (dst, Msg.Garbled msg) ]
  | Some Replay ->
      record st ~dst msg;
      (dst, msg) :: next_replay st ~dst msg
  | Some Bad_checkpoint -> (
      match msg with
      | Msg.Checkpoint_msg { epoch; max_sn; root; req_count; policy; signer; _ } ->
          [ (dst, corrupt_checkpoint ~signer ~epoch ~max_sn ~root ~req_count ~policy) ]
      | Msg.State_reply { entries; cert } ->
          [ (dst, Msg.State_reply { entries; cert = corrupt_cert ~signer:src cert }) ]
      | _ -> [ (dst, msg) ])
