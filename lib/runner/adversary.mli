(** Byzantine adversary proxy (DESIGN.md §10).

    A man-in-the-middle wrapped around each node's raw network send path by
    {!Cluster} — but only once a fault schedule configures an attack;
    unconfigured clusters never construct one and their send path is
    untouched (zero perturbation, checked by fingerprint equality in the
    conformance harness).

    The attacked node itself keeps executing honest protocol code; only its
    {e outgoing} traffic is rewritten.  This models the strongest practical
    equivocator: internally consistent, externally lying.  All rewrites are
    deterministic functions of the message stream, so Byzantine runs replay
    bit-identically from their scenario. *)

type attack =
  | Equivocate
      (** Send conflicting proposals for the same (instance, sn) to disjoint
          receiver subsets sized so that neither subset plus the attacker
          reaches a quorum; remaining receivers get nothing. *)
  | Censor of { buckets : int list }
      (** Filter requests of the given buckets out of outgoing proposals
          ([buckets = []] censors {e every} request). *)
  | Corrupt_sig
      (** Wrap every outgoing control message in {!Proto.Message.Garbled}:
          its authenticator fails verification at the receiver. *)
  | Replay
      (** Re-inject previously sent protocol messages and previously batched
          client requests alongside genuine traffic. *)
  | Bad_checkpoint
      (** Corrupt the state root in outgoing checkpoint votes and
          state-transfer certificates, re-signing the corrupted material
          with the attacker's own key. *)

val attack_name : attack -> string

type t

val create : n:int -> config:Core.Config.t -> t

val set_attack : t -> node:int -> attack option -> unit
(** Open ([Some _]) or close ([None]) a node's attack window. *)

val active : t -> node:int -> attack option
val ever_byzantine : t -> node:int -> bool

val route : t -> src:int -> dst:int -> Proto.Message.t -> (int * Proto.Message.t) list
(** Rewrite one outgoing transmission: returns the (destination, message)
    pairs to put on the wire instead.  Identity for nodes with no active
    attack. *)
