module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

type system =
  | Iss of Core.Config.protocol
  | Single of Core.Config.protocol
  | Mir

let system_name = function
  | Iss p -> "ISS-" ^ Core.Config.protocol_name p
  | Single p -> Core.Config.protocol_name p
  | Mir -> "Mir-BFT"

type quorum_state = { mutable count : int; mutable reached : bool }

exception Invariant_violation of string

(* Cross-node invariant checking state (chaos harness).  [inv_batches]
   records the first (digest, first_request_sn, node) delivered at each
   sequence number; every later delivery at that position must match.
   [inv_per_node] records every request id a node has delivered, to catch
   double delivery.  [inv_submitted] holds every workload-submitted request
   for the end-of-run liveness check. *)
type invariant_state = {
  inv_batches : (int, Iss_crypto.Hash.t * int * int) Hashtbl.t;
  inv_per_node : (int, unit) Hashtbl.t array;
  inv_submitted : (int, Proto.Request.t) Hashtbl.t;
}

type t = {
  engine : Engine.t;
  net : Proto.Message.t Sim.Network.t;
  mutable nodes : Core.Node.t array;
  config : Core.Config.t;
  system : system;
  n : int;
  placement : int array;
  latencies : Sim.Metrics.Histogram.t;
  throughput : Sim.Metrics.Series.t;
  quorums : (int, quorum_state) Hashtbl.t;  (* batch_sn -> deliveries *)
  mutable delivered_quorum : int;
  mutable submitted : int;
  reply_quorum : int;
  mutable track_delivered_ids : bool;
  delivered_ids : (int, unit) Hashtbl.t;  (* request id keys, when tracked *)
  mutable invariants : invariant_state option;
  mutable adversary : Adversary.t option;
      (* None unless a Byzantine fault schedule configured one: the honest
         send path must stay byte-identical to a build without the adversary
         layer (fingerprint-checked by the conformance harness). *)
  byzantine : bool array;
      (* nodes marked Byzantine by a schedule: excluded from cross-node
         safety/exactly-once accounting and from reply-quorum counting (the
         checked invariants quantify over correct nodes only) *)
  tracer : Obs.Tracer.t option;
  mutable delivery_observer :
    (node:int -> sn:int -> first_request_sn:int -> Proto.Batch.t -> unit) option;
  mutable submission_observer : (Proto.Request.t -> unit) option;
  mutable gave_up : int;
      (* requests whose client (modeled or real) exhausted its retry budget *)
  gave_up_ids : (int, unit) Hashtbl.t;
      (* id keys of given-up requests: the liveness check treats "explicitly
         gave up" as a legal terminal state alongside "delivered" *)
  mutable shed_observer : (node:int -> shed:bool -> Proto.Request.t -> unit) option;
  mutable give_up_observer : (Proto.Request.t -> unit) option;
}

let engine t = t.engine
let network t = t.net
let nodes t = t.nodes
let config t = t.config
let quorum_latencies t = t.latencies
let delivered_quorum t = t.delivered_quorum
let submitted t = t.submitted
let reply_quorum t = t.reply_quorum
let tracer t = t.tracer

let adversary t = t.adversary

let ensure_adversary t =
  match t.adversary with
  | Some adv -> adv
  | None ->
      let adv = Adversary.create ~n:t.n ~config:t.config in
      t.adversary <- Some adv;
      adv

let mark_byzantine t node = t.byzantine.(node) <- true
let is_byzantine t node = t.byzantine.(node)
let byzantine_count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.byzantine

let set_delivery_observer t f = t.delivery_observer <- Some f
let set_submission_observer t f = t.submission_observer <- Some f
let set_shed_observer t f = t.shed_observer <- Some f
let set_give_up_observer t f = t.give_up_observer <- Some f

let gave_up_count t = t.gave_up

let shed_total t =
  Array.fold_left (fun acc node -> acc + Core.Node.shed_count node) 0 t.nodes

let pushback_total t =
  Array.fold_left (fun acc node -> acc + Core.Node.pushback_count node) 0 t.nodes

let note_gave_up t (r : Proto.Request.t) =
  let key = Proto.Request.id_key r.Proto.Request.id in
  if not (Hashtbl.mem t.gave_up_ids key) then begin
    t.gave_up <- t.gave_up + 1;
    Hashtbl.replace t.gave_up_ids key ();
    match t.give_up_observer with Some f -> f r | None -> ()
  end

let note_submitted t (req : Proto.Request.t) =
  t.submitted <- t.submitted + 1;
  (match t.submission_observer with Some f -> f req | None -> ());
  match t.invariants with
  | Some inv -> Hashtbl.replace inv.inv_submitted (Proto.Request.id_key req.Proto.Request.id) req
  | None -> ()

let throughput_series t ~until = Sim.Metrics.Series.rate_per_sec t.throughput ~until

let n_datacenters = Array.length Sim.Topology.datacenters

let client_datacenter _t ~client = client mod n_datacenters

let reply_wire_size = 32

let config_of_system ~system ~n ~policy ~tweak =
  let base =
    match system with
    | Iss p -> Core.Config.default_for p ~n
    | Single p ->
        { (Core.Config.default_for p ~n) with Core.Config.leader_policy = Core.Config.Fixed [ 0 ] }
    | Mir -> Core.Config.pbft_default ~n
  in
  let base =
    match (system, policy) with
    | Iss _, Some p -> { base with Core.Config.leader_policy = p }
    | _ -> base
  in
  tweak base

let factory_for (config : Core.Config.t) =
  match config.Core.Config.protocol with
  | Core.Config.PBFT -> Pbft.Pbft_orderer.factory
  | Core.Config.HotStuff -> Hotstuff.Hotstuff_orderer.factory
  | Core.Config.Raft -> Raft.Raft_orderer.factory

(* Per-node gauges and counters the observability layer samples at snapshot
   time.  Everything here is a read of state the cluster maintains anyway —
   registration costs nothing on the simulation hot path. *)
let register_metrics reg t =
  Obs.Registry.counter reg ~name:"net.messages_sent" (fun () -> Sim.Network.messages_sent t.net);
  Obs.Registry.counter reg ~name:"net.bytes_sent" (fun () -> Sim.Network.bytes_sent t.net);
  Obs.Registry.counter reg ~name:"engine.events_executed" (fun () ->
      Engine.events_executed t.engine);
  Obs.Registry.counter reg ~name:"cluster.submitted" (fun () -> t.submitted);
  Obs.Registry.counter reg ~name:"cluster.delivered_quorum" (fun () -> t.delivered_quorum);
  Obs.Registry.counter reg ~name:"cluster.gave_up" (fun () -> t.gave_up);
  Obs.Registry.histogram reg ~name:"cluster.latency_s" t.latencies;
  Array.iteri
    (fun id node ->
      Obs.Registry.gauge reg ~node:id ~name:"node.epoch" (fun () ->
          float_of_int (Core.Node.current_epoch node));
      Obs.Registry.gauge reg ~node:id ~name:"node.bucket_queue.occupancy" (fun () ->
          float_of_int (Core.Node.pending_requests node));
      Obs.Registry.counter reg ~node:id ~name:"node.bucket_queue.added" (fun () ->
          Core.Node.bucket_queue_added node);
      Obs.Registry.gauge reg ~node:id ~name:"node.bucket_queue.max_occupancy" (fun () ->
          float_of_int (Core.Node.bucket_queue_max_occupancy node));
      Obs.Registry.gauge reg ~node:id ~name:"node.commit_queue.depth" (fun () ->
          float_of_int (Core.Log.committed_ahead (Core.Node.log node)));
      Obs.Registry.gauge reg ~node:id ~name:"node.orderer.instances" (fun () ->
          float_of_int (Core.Node.active_instances node));
      Obs.Registry.gauge reg ~node:id ~name:"node.checkpoint.lag_epochs" (fun () ->
          float_of_int (Core.Node.checkpoint_lag node));
      Obs.Registry.counter reg ~node:id ~name:"node.delivered" (fun () ->
          Core.Node.delivered_count node);
      Obs.Registry.counter reg ~node:id ~name:"node.auth_failures" (fun () ->
          Core.Node.auth_failures node);
      Obs.Registry.counter reg ~node:id ~name:"node.flow.shed" (fun () ->
          Core.Node.shed_count node);
      Obs.Registry.counter reg ~node:id ~name:"node.flow.pushback" (fun () ->
          Core.Node.pushback_count node);
      Obs.Registry.gauge reg ~node:id ~name:"node.nic.tx_backlog_s" (fun () ->
          Time_ns.to_sec_f
            (Sim.Network.nic_backlog t.net ~endpoint:id ~dir:`Tx ~peer:Sim.Network.Node));
      Obs.Registry.gauge reg ~node:id ~name:"node.nic.rx_backlog_s" (fun () ->
          Time_ns.to_sec_f
            (Sim.Network.nic_backlog t.net ~endpoint:id ~dir:`Rx ~peer:Sim.Network.Node));
      Obs.Registry.gauge reg ~node:id ~name:"node.nic.client_tx_backlog_s" (fun () ->
          Time_ns.to_sec_f
            (Sim.Network.nic_backlog t.net ~endpoint:id ~dir:`Tx ~peer:Sim.Network.Client)))
    t.nodes

let create ?engine ?policy ?(tweak = fun c -> c) ?tracer ?registry ~system ~n ~seed () =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let net = Sim.Network.create engine ~rng:(Sim.Rng.split rng) () in
  let config = config_of_system ~system ~n ~policy ~tweak in
  let placement = Sim.Topology.assign_uniform ~n in
  let reply_quorum =
    match config.Core.Config.protocol with
    | Core.Config.Raft -> 1
    | Core.Config.PBFT | Core.Config.HotStuff -> Core.Config.max_faulty config + 1
  in
  let t =
    {
      engine;
      net;
      nodes = [||];
      config;
      system;
      n;
      placement;
      latencies = Sim.Metrics.Histogram.create ();
      throughput = Sim.Metrics.Series.create ~bin:(Time_ns.sec 1);
      quorums = Hashtbl.create 4096;
      delivered_quorum = 0;
      submitted = 0;
      reply_quorum;
      track_delivered_ids = false;
      delivered_ids = Hashtbl.create 4096;
      invariants = None;
      adversary = None;
      byzantine = Array.make n false;
      tracer;
      delivery_observer = None;
      submission_observer = None;
      gave_up = 0;
      gave_up_ids = Hashtbl.create 256;
      shed_observer = None;
      give_up_observer = None;
    }
  in
  (* Measurement hook: when the [reply_quorum]-th node's delivery frontier
     passes a batch, every request in it is answered — record latency
     (including the reply's propagation back to the client) and
     throughput. *)
  let on_batch_deliver node ~sn ~first_request_sn batch =
    let node_id = Core.Node.id node in
    (match t.delivery_observer with
    | Some f -> f ~node:node_id ~sn ~first_request_sn batch
    | None -> ());
    (* Invariant checking (chaos harness; off unless enabled).  Violations
       raise immediately, aborting the simulation with a readable report.
       Nodes marked Byzantine by the schedule are exempt: the checked
       invariants (safety, exactly-once, reply quorums) are theorems about
       correct nodes only. *)
    (match t.invariants with
    | None -> ()
    | Some _ when t.byzantine.(node_id) -> ()
    | Some inv ->
        let digest = Proto.Proposal.digest (Proto.Proposal.Batch batch) in
        let now_s = Time_ns.to_sec_f (Engine.now t.engine) in
        (match Hashtbl.find_opt inv.inv_batches sn with
        | None -> Hashtbl.replace inv.inv_batches sn (digest, first_request_sn, node_id)
        | Some (d0, frs0, node0) ->
            if not (Iss_crypto.Hash.equal d0 digest) then
              raise
                (Invariant_violation
                   (Printf.sprintf
                      "SAFETY violation at t=%.3fs: node %d delivered batch %s at sn %d, but \
                       node %d had delivered batch %s there — two non-halted nodes disagree \
                       on the same log position"
                      now_s node_id (Iss_crypto.Hash.short digest) sn node0
                      (Iss_crypto.Hash.short d0)));
            if frs0 <> first_request_sn then
              raise
                (Invariant_violation
                   (Printf.sprintf
                      "SAFETY violation at t=%.3fs: node %d delivered sn %d with first request \
                       sequence number %d, but node %d used %d — the delivered prefixes \
                       diverge earlier in the log"
                      now_s node_id sn first_request_sn node0 frs0)));
        let seen = inv.inv_per_node.(node_id) in
        Proto.Batch.iter
          (fun (r : Proto.Request.t) ->
            let key = Proto.Request.id_key r.id in
            if Hashtbl.mem seen key then
              raise
                (Invariant_violation
                   (Printf.sprintf
                      "EXACTLY-ONCE violation at t=%.3fs: node %d delivered request \
                       (client %d, ts %d) a second time at batch sn %d"
                      now_s node_id r.id.Proto.Request.client r.id.Proto.Request.ts sn));
            Hashtbl.replace seen key ())
          batch);
    (* Each delivering node sends one reply per request on its public NIC;
       charge that bandwidth in one aggregate operation. *)
    ignore
      (Sim.Network.charge t.net ~endpoint:node_id ~dir:`Tx ~peer:Sim.Network.Client
         ~bytes:(Proto.Batch.length batch * (reply_wire_size + 80)));
    let q =
      match Hashtbl.find_opt t.quorums sn with
      | Some q -> q
      | None ->
          let q = { count = 0; reached = false } in
          Hashtbl.replace t.quorums sn q;
          q
    in
    (* A Byzantine node's reply must not count towards the f+1 reply quorum:
       clients cannot trust it, and the liveness invariant demands a quorum
       of correct replies. *)
    if not t.byzantine.(node_id) then q.count <- q.count + 1;
    if (not q.reached) && q.count >= t.reply_quorum then begin
      q.reached <- true;
      let now = Engine.now t.engine in
      let node_dc = t.placement.(node_id) in
      let len = Proto.Batch.length batch in
      t.delivered_quorum <- t.delivered_quorum + len;
      Sim.Metrics.Series.add t.throughput ~at:now (float_of_int len);
      Proto.Batch.iter
        (fun (r : Proto.Request.t) ->
          if t.track_delivered_ids then
            Hashtbl.replace t.delivered_ids (Proto.Request.id_key r.id) ();
          let client_dc = client_datacenter t ~client:r.id.Proto.Request.client in
          let reply_prop = Sim.Topology.latency node_dc client_dc in
          (* Reply = the quorum's reply reaching the client: the simulated
             moment the request's end-to-end latency ends. *)
          (match t.tracer with
          | None -> ()
          | Some tr ->
              Obs.Tracer.record tr
                ~req:(Proto.Request.id_key r.id)
                ~node:node_id
                ~at:(Time_ns.add now reply_prop)
                Obs.Tracer.Reply);
          let latency =
            Time_ns.to_sec_f (Time_ns.diff (Time_ns.add now reply_prop) r.submitted_at)
          in
          Sim.Metrics.Histogram.add t.latencies latency)
        batch
    end
  in
  let mir_gates =
    match system with
    | Mir ->
        Some
          (Array.init n (fun id ->
               Mirbft.create ~engine ~n ~id
                 ~send:(fun ~dst msg ->
                   Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
                 ~timeout:config.Core.Config.epoch_change_timeout))
    | Iss _ | Single _ -> None
  in
  (* Flow-control pushback routing.  Modeled clients have no network
     endpoint, so the node-side hook stands in for the wire-level [Busy]
     reply: it feeds the overload counters, the online delivered-then-shed
     invariant, and whatever observer the conformance harness installs.
     When flow control is off the node never fires it, keeping the honest
     path untouched. *)
  let on_pushback node (r : Proto.Request.t) ~retry_after:_ ~shed =
    let node_id = Core.Node.id node in
    (if shed then
       match t.invariants with
       | Some inv when not t.byzantine.(node_id) ->
           if Hashtbl.mem inv.inv_per_node.(node_id) (Proto.Request.id_key r.Proto.Request.id)
           then
             raise
               (Invariant_violation
                  (Printf.sprintf
                     "DELIVERED-THEN-SHED contradiction at t=%.3fs: node %d shed request \
                      (client %d, ts %d) it had already delivered"
                     (Time_ns.to_sec_f (Engine.now t.engine))
                     node_id r.Proto.Request.id.Proto.Request.client
                     r.Proto.Request.id.Proto.Request.ts))
       | Some _ | None -> ());
    match t.shed_observer with Some f -> f ~node:node_id ~shed r | None -> ()
  in
  let hooks =
    {
      Core.Node.default_hooks with
      on_batch_deliver;
      on_pushback = Some on_pushback;
      epoch_gate =
        (match mir_gates with
        | Some gates -> Some (fun node ~epoch k -> Mirbft.epoch_gate gates.(Core.Node.id node) ~epoch k)
        | None -> None);
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine
          ~send:(fun ~dst msg ->
            (* Byzantine adversary proxy: one mutable-field check on the
               honest path.  When a schedule configured an adversary, the
               node's outgoing traffic is routed through it — the node
               itself keeps running honest code; only the wire lies. *)
            match t.adversary with
            | None -> Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg
            | Some adv ->
                List.iter
                  (fun (dst, msg) ->
                    Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
                  (Adversary.route adv ~src:id ~dst msg))
          ~orderer_factory:(factory_for config) ~hooks ?tracer ())
  in
  t.nodes <- nodes;
  (match registry with None -> () | Some reg -> register_metrics reg t);
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg ->
          let consumed =
            match mir_gates with
            | Some gates -> Mirbft.on_message gates.(id) ~src msg
            | None -> false
          in
          if not consumed then Core.Node.on_message node ~src msg))
    nodes;
  t

let start t = Array.iter Core.Node.start t.nodes

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let crash_at t ~node ~at =
  ignore
    (Engine.schedule_at t.engine ~at (fun () ->
         Sim.Network.crash t.net node;
         Core.Node.halt t.nodes.(node)))

let recover_at t ~node ~at =
  ignore
    (Engine.schedule_at t.engine ~at (fun () ->
         Sim.Network.recover t.net node;
         Core.Node.recover t.nodes.(node)))

(* Estimated spacing between consecutive proposals of one segment when no
   batch-rate cap applies (HotStuff).  Proposals then pipeline through the
   ordering protocol, leaving roughly one WAN round trip between successive
   batches of a segment; we bound that by twice the topology's largest
   one-way latency, floored by the configured minimum batch timeout.  This
   estimate only positions the injected epoch-end crash — it is not a
   correctness parameter, just "late enough in the epoch to hurt". *)
let uncapped_proposal_interval_estimate (cfg : Core.Config.t) =
  Float.max
    (2.0 *. Time_ns.to_sec_f (Sim.Topology.max_latency ()))
    (Time_ns.to_sec_f cfg.Core.Config.min_batch_timeout)

(* Aim for 80 % through the victim's segment: past the epoch's midpoint
   (so recovery cannot ride on the same epoch change) but safely before the
   estimated last proposal, given the interval estimate's slack. *)
let epoch_end_crash_fraction = 0.8

let crash_epoch_end t ~node =
  (* Crash just before the node's last epoch-0 proposal.  With a fixed
     batch rate, its k-th proposal leaves at ~k * interval; without one
     (HotStuff), fall back on the pipeline-spacing estimate above. *)
  let cfg = t.config in
  let leaders =
    match cfg.Core.Config.leader_policy with
    | Core.Config.Fixed l -> List.length l
    | Core.Config.Simple | Core.Config.Backoff | Core.Config.Blacklist
    | Core.Config.Straggler_aware ->
        t.n
  in
  let epoch_len = Core.Config.epoch_length cfg ~leaders in
  let seg_len = epoch_len / leaders in
  let at =
    match cfg.Core.Config.batch_rate with
    | Some rate ->
        let interval = float_of_int leaders /. rate in
        Time_ns.of_sec_f ((float_of_int seg_len -. 0.5) *. interval)
    | None ->
        Time_ns.of_sec_f
          (epoch_end_crash_fraction *. float_of_int seg_len
          *. uncapped_proposal_interval_estimate cfg)
  in
  crash_at t ~node ~at

let set_stragglers t stragglers =
  List.iter (fun node -> Core.Node.set_straggler t.nodes.(node) true) stragglers

let enable_delivery_tracking t = t.track_delivered_ids <- true

let request_delivered t (r : Proto.Request.t) =
  Hashtbl.mem t.delivered_ids (Proto.Request.id_key r.id)

let request_terminal t ~client ~ts =
  let key = Proto.Request.id_key { Proto.Request.client; ts } in
  Hashtbl.mem t.delivered_ids key || Hashtbl.mem t.gave_up_ids key

(* ------------------------------------------------------------------ *)
(* Invariant checking *)

let enable_invariants t =
  enable_delivery_tracking t;
  if t.invariants = None then
    t.invariants <-
      Some
        {
          inv_batches = Hashtbl.create 4096;
          inv_per_node = Array.init t.n (fun _ -> Hashtbl.create 4096);
          inv_submitted = Hashtbl.create 4096;
        }

let invariants_enabled t = t.invariants <> None

let check_liveness t =
  match t.invariants with
  | None -> invalid_arg "Cluster.check_liveness: call enable_invariants first"
  | Some inv ->
      let missing = ref [] in
      let n_missing = ref 0 in
      Hashtbl.iter
        (fun key r ->
          (* "Explicitly gave up" is a legal terminal state under overload:
             the client spent its retry budget and reported the request
             abandoned.  Anything else undelivered is a violation. *)
          if
            (not (Hashtbl.mem t.delivered_ids key)) && not (Hashtbl.mem t.gave_up_ids key)
          then begin
            incr n_missing;
            if !n_missing <= 10 then missing := r :: !missing
          end)
        inv.inv_submitted;
      if !n_missing > 0 then begin
        let b = Buffer.create 256 in
        Buffer.add_string b
          (Printf.sprintf
             "LIVENESS violation at t=%.3fs: %d of %d submitted requests never reached their \
              reply quorum of %d nodes after all faults healed (%d explicitly gave up).  \
              First missing requests:"
             (Time_ns.to_sec_f (Engine.now t.engine))
             !n_missing
             (Hashtbl.length inv.inv_submitted)
             t.reply_quorum t.gave_up);
        List.iter
          (fun (r : Proto.Request.t) ->
            Buffer.add_string b
              (Printf.sprintf "\n  client %d ts %d (submitted at t=%.3fs)"
                 r.id.Proto.Request.client r.id.Proto.Request.ts
                 (Time_ns.to_sec_f r.Proto.Request.submitted_at)))
          (List.rev !missing);
        if !n_missing > 10 then Buffer.add_string b "\n  ...";
        raise (Invariant_violation (Buffer.contents b))
      end
