(** Cluster assembly and measurement for experiments.

    Builds a complete simulated deployment — engine, WAN, replicas wired to
    one of the seven systems the paper evaluates — and measures what the
    paper measures: end-to-end latency (submission until a reply quorum of
    f+1 nodes has delivered) and delivered throughput over 1-second bins. *)

type system =
  | Iss of Core.Config.protocol  (** the paper's contribution *)
  | Single of Core.Config.protocol  (** single-leader baseline (Fixed [0]) *)
  | Mir  (** Mir-BFT behavioural model *)

val system_name : system -> string

type t

val engine : t -> Sim.Engine.t
val network : t -> Proto.Message.t Sim.Network.t
val nodes : t -> Core.Node.t array
val config : t -> Core.Config.t

val create :
  ?engine:Sim.Engine.t ->
  ?policy:Core.Config.leader_policy_kind ->
  ?tweak:(Core.Config.t -> Core.Config.t) ->
  ?tracer:Obs.Tracer.t ->
  ?registry:Obs.Registry.t ->
  system:system ->
  n:int ->
  seed:int64 ->
  unit ->
  t
(** [engine] supplies an existing (fresh) simulation engine — needed when a
    tracer must be built against the same clock before the cluster exists;
    by default the cluster creates its own.  [policy] overrides the
    leader-selection policy for ISS systems (the default is the config
    preset's, i.e. BLACKLIST).  [tweak] patches the
    final configuration (ablations).  [tracer] threads the request-lifecycle
    probe through every node and the cluster's measurement hook (DESIGN.md
    §8); [registry] registers the standard per-node gauges (bucket-queue
    occupancy, commit queue depth, live SB instances, checkpoint lag, NIC
    backlogs) and cluster-wide counters against it.  Both default to off,
    leaving runs bit-identical to an uninstrumented build. *)

val start : t -> unit

(** {2 Fault injection (§6.4)} *)

val crash_at : t -> node:int -> at:Sim.Time_ns.t -> unit
(** Crash: silence the node's network endpoint and halt its timers. *)

val recover_at : t -> node:int -> at:Sim.Time_ns.t -> unit
(** Crash-recovery: revive the node's network endpoint and un-halt it; the
    node keeps its durable pre-crash state and catches up via state
    transfer (see {!Core.Node.recover}). *)

val crash_epoch_end : t -> node:int -> unit
(** Schedule a crash just before the node would propose the last sequence
    number of its epoch-0 segment — the paper's worst case for epoch
    duration. *)

val set_stragglers : t -> int list -> unit
(** Byzantine stragglers (§6.4.2). *)

(** {2 Active-malice adversary (DESIGN.md §10)} *)

val ensure_adversary : t -> Adversary.t
(** The cluster's adversary proxy, created on first use.  Until this is
    called, every node's send path is the direct network send — honest runs
    never pay for (or observe) the adversary layer. *)

val adversary : t -> Adversary.t option

val mark_byzantine : t -> int -> unit
(** Exempt a node from the cross-node safety / exactly-once invariants and
    from reply-quorum counting: the checked invariants quantify over correct
    nodes only.  {!Faults.apply} marks every node its schedule attacks. *)

val is_byzantine : t -> int -> bool
val byzantine_count : t -> int

(** {2 Invariant checking (chaos harness)} *)

exception Invariant_violation of string
(** Raised — aborting the simulation — with a readable report when a checked
    invariant breaks. *)

val enable_invariants : t -> unit
(** Turn on cross-node invariant checking (implies delivery tracking):
    {ul
    {- {b safety}: no two non-halted nodes deliver different batches (or the
       same batch with different request sequence numbers) at the same log
       position — checked on every delivery;}
    {- {b exactly-once}: no node delivers the same request twice — checked on
       every delivery;}
    {- {b liveness}: every workload-submitted request reaches its reply
       quorum — checked by {!check_liveness} once the run (faults plus a
       grace period) has completed.}}
    Off by default: the bookkeeping holds every submitted request id, which
    huge fault-free benchmark runs cannot afford. *)

val invariants_enabled : t -> bool

val check_liveness : t -> unit
(** Raises {!Invariant_violation} listing the first missing requests if any
    submitted request has neither reached its reply quorum nor explicitly
    given up its retry budget ({!note_gave_up}).  Call after the engine has
    run past all faults plus a recovery bound. *)

(** {2 Overload accounting (flow control)} *)

val note_gave_up : t -> Proto.Request.t -> unit
(** Record that a client exhausted its retry budget for this request and
    abandoned it.  Idempotent per request.  The liveness check accepts
    given-up requests as terminal; the give-up observer fires once. *)

val gave_up_count : t -> int
(** Requests explicitly abandoned via {!note_gave_up}. *)

val shed_total : t -> int
(** Requests shed by flow-control admission, summed over all nodes. *)

val pushback_total : t -> int
(** Pushback notifications issued (advisory and shedding), summed over all
    nodes. *)

val set_shed_observer : t -> (node:int -> shed:bool -> Proto.Request.t -> unit) -> unit
(** Install a hook fired on every node-side pushback event: [shed = true]
    for an actual drop (admission refusal or drop-oldest eviction),
    [shed = false] for the advisory watermark warning.  The conformance
    harness records shed events through this; at most one observer.  Fires
    only when [flow_control] is enabled. *)

val set_give_up_observer : t -> (Proto.Request.t -> unit) -> unit
(** Install a hook fired once per request abandoned via {!note_gave_up};
    at most one observer. *)

(** {2 Measurement} *)

val quorum_latencies : t -> Sim.Metrics.Histogram.t
(** Seconds from submission to reply quorum, one sample per request. *)

val throughput_series : t -> until:Sim.Time_ns.t -> float array
(** Quorum-delivered requests per second, 1-second bins. *)

val delivered_quorum : t -> int
(** Requests that reached their reply quorum so far. *)

val note_submitted : t -> Proto.Request.t -> unit
(** Workload bookkeeping: register a submitted request (for the delivered /
    offered accounting). *)

val submitted : t -> int

val reply_quorum : t -> int
(** f+1 for BFT systems, 1 for Raft. *)

val tracer : t -> Obs.Tracer.t option
(** The lifecycle tracer installed at {!create} time, if any — the workload
    records client-side [Submit] events against it. *)

val client_datacenter : t -> client:int -> int
(** Placement of a virtual client (round-robin over the datacenters). *)

val set_delivery_observer :
  t -> (node:int -> sn:int -> first_request_sn:int -> Proto.Batch.t -> unit) -> unit
(** Install a hook called on {e every} per-node batch delivery (before the
    quorum accounting).  The conformance harness records the complete
    per-node delivered sequences through this; at most one observer. *)

val set_submission_observer : t -> (Proto.Request.t -> unit) -> unit
(** Install a hook called for every workload-submitted request (from
    {!note_submitted}).  The conformance harness builds its reference
    workload set through this; at most one observer. *)

val enable_delivery_tracking : t -> unit
(** Track per-request delivery (needed by the workload's resubmission
    sweeper in fault experiments; off by default to keep huge fault-free
    runs lean). *)

val request_delivered : t -> Proto.Request.t -> bool
(** Only meaningful after {!enable_delivery_tracking}. *)

val request_terminal : t -> client:int -> ts:int -> bool
(** The request reached a terminal state: delivered somewhere, or
    explicitly given up ({!note_gave_up}).  The modeled workload's client
    watermark gate ({!Workload.start}) keys on this.  Only meaningful
    after {!enable_delivery_tracking}. *)
