module Time_ns = Sim.Time_ns

type result = {
  system : string;
  n : int;
  offered : float;
  duration_s : float;
  submitted : int;
  delivered : int;
  throughput : float;
  mean_latency_s : float;
  p50_latency_s : float;
  p95_latency_s : float;
  p99_latency_s : float;
  series : float array;
  sim_events : int;
  net_messages : int;
  net_bytes : int;
}

type fault =
  | Crash_at of int * float
  | Crash_epoch_end of int
  | Straggler of int

let run ?engine ?policy ?tweak ?(faults = []) ?scenario ?num_clients ?(warmup_s = 5.0)
    ?tracer ?registry ~system ~n ~rate ~duration_s ~seed () =
  let cluster = Cluster.create ?engine ?policy ?tweak ?tracer ?registry ~system ~n ~seed () in
  let engine = Cluster.engine cluster in
  let until = Time_ns.of_sec_f duration_s in
  List.iter
    (fun fault ->
      match fault with
      | Crash_at (node, at_s) -> Cluster.crash_at cluster ~node ~at:(Time_ns.of_sec_f at_s)
      | Crash_epoch_end node -> Cluster.crash_epoch_end cluster ~node
      | Straggler node -> Cluster.set_stragglers cluster [ node ])
    faults;
  (match scenario with
  | None -> ()
  | Some sc ->
      let protocol =
        match system with Cluster.Iss p | Cluster.Single p -> Some p | Cluster.Mir -> None
      in
      (match Faults.validate ?protocol sc ~n with
      | Ok () -> ()
      | Error e ->
          invalid_arg (Printf.sprintf "fault scenario %S: %s" (Faults.name sc) e));
      Faults.apply sc cluster;
      Cluster.enable_invariants cluster);
  Cluster.start cluster;
  (* Fault scenarios need the client resubmission mechanism of §4.3. *)
  let resubmit = faults <> [] || Option.is_some scenario in
  (* Chaos runs keep the engine (and the resubmission sweeper) going past
     the last fault's heal time plus the recovery bound, so the liveness
     check judges a healed cluster. *)
  let run_until =
    match scenario with
    | None -> until
    | Some sc ->
        let cfg = Cluster.config cluster in
        Time_ns.of_sec_f
          (Float.max duration_s (Faults.heal_s sc +. Faults.liveness_grace_s cfg))
  in
  Workload.start ~cluster ~rate ?num_clients ~resubmit ~sweep_until:run_until ~until ();
  Sim.Engine.run ~until:run_until engine;
  (match scenario with None -> () | Some _ -> Cluster.check_liveness cluster);
  let series = Cluster.throughput_series cluster ~until:run_until in
  let warmup_bins = int_of_float warmup_s in
  let steady =
    if Array.length series > warmup_bins + 1 then
      Array.sub series warmup_bins (Array.length series - warmup_bins - 1)
    else series
  in
  let throughput =
    if Array.length steady = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 steady /. float_of_int (Array.length steady)
  in
  let hist = Cluster.quorum_latencies cluster in
  {
    system = Cluster.system_name system;
    n;
    offered = rate;
    duration_s;
    submitted = Cluster.submitted cluster;
    delivered = Cluster.delivered_quorum cluster;
    throughput;
    mean_latency_s = Sim.Metrics.Histogram.mean hist;
    p50_latency_s = Sim.Metrics.Histogram.percentile hist 50.0;
    p95_latency_s = Sim.Metrics.Histogram.percentile hist 95.0;
    p99_latency_s = Sim.Metrics.Histogram.percentile hist 99.0;
    series;
    sim_events = Sim.Engine.events_executed engine;
    net_messages = Sim.Network.messages_sent (Cluster.network cluster);
    net_bytes = Sim.Network.bytes_sent (Cluster.network cluster);
  }

(* Analytical ceilings in this simulator (see DESIGN.md): batch-rate caps
   for PBFT/Raft, NIC receive bandwidth for HotStuff, per-leader NIC
   serialization for the single-leader baselines. *)
let saturation_estimate system ~n =
  let request_bits = 4640.0 (* 580 B on the wire *) in
  let nic = 1e9 in
  match system with
  | Cluster.Iss Core.Config.PBFT | Cluster.Mir -> 32.0 *. 2048.0 *. 1.05
  | Cluster.Iss Core.Config.Raft -> 32.0 *. 4096.0 *. 1.05
  | Cluster.Iss Core.Config.HotStuff ->
      (* Receive-side NIC bound, plus CPU on request verification. *)
      min (nic /. request_bits) 190_000.0 *. 1.0
  | Cluster.Single p ->
      let bandwidth_bound = nic /. (request_bits *. float_of_int (max 1 (n - 1))) in
      let rate_bound =
        match p with
        | Core.Config.PBFT -> 32.0 *. 2048.0
        | Core.Config.Raft | Core.Config.HotStuff -> 32.0 *. 4096.0
      in
      min bandwidth_bound rate_bound *. 1.3

let peak_throughput ?engine ?(tweak = fun c -> c) ?tracer ?registry ~system ~n ~duration_s
    ~seed () =
  let rate = saturation_estimate system ~n in
  (* Peak runs are fault-free with honest leaders and non-retransmitting
     modeled clients; relaxed validation skips per-request bookkeeping that
     cannot fire (see Config.strict_validation). *)
  let tweak c = { (tweak c) with Core.Config.strict_validation = false } in
  run ?engine ~tweak ?tracer ?registry ~system ~n ~rate ~duration_s ~seed ()

let pp_result fmt r =
  Format.fprintf fmt
    "%-14s n=%-4d offered=%9.0f req/s  tput=%9.0f req/s  \
     lat(mean/p50/p95/p99)=%6.2f/%6.2f/%6.2f/%6.2f s  delivered=%d/%d"
    r.system r.n r.offered r.throughput r.mean_latency_s r.p50_latency_s r.p95_latency_s
    r.p99_latency_s r.delivered r.submitted

let result_to_json ?(series = false) r =
  let open Obs.Jsonx in
  let base =
    [
      ("system", String r.system);
      ("n", Int r.n);
      ("offered_req_s", Float r.offered);
      ("duration_s", Float r.duration_s);
      ("submitted", Int r.submitted);
      ("delivered", Int r.delivered);
      ("throughput_req_s", Float r.throughput);
      ("mean_latency_s", Float r.mean_latency_s);
      ("p50_latency_s", Float r.p50_latency_s);
      ("p95_latency_s", Float r.p95_latency_s);
      ("p99_latency_s", Float r.p99_latency_s);
      ("sim_events", Int r.sim_events);
      ("net_messages", Int r.net_messages);
      ("net_bytes", Int r.net_bytes);
    ]
  in
  let extra =
    if series then
      [ ("series_req_s", List (Array.to_list (Array.map (fun v -> Float v) r.series))) ]
    else []
  in
  Obj (base @ extra)
