module Time_ns = Sim.Time_ns

type result = {
  system : string;
  n : int;
  offered : float;
  duration_s : float;
  submitted : int;
  delivered : int;
  throughput : float;
  mean_latency_s : float;
  p50_latency_s : float;
  p95_latency_s : float;
  p99_latency_s : float;
  series : float array;
  sim_events : int;
  net_messages : int;
  net_bytes : int;
  shed : int;
  pushback : int;
  gave_up : int;
}

type fault =
  | Crash_at of int * float
  | Crash_epoch_end of int
  | Straggler of int

let run ?engine ?policy ?tweak ?(faults = []) ?scenario ?num_clients ?(warmup_s = 5.0)
    ?tracer ?registry ?shape ?retry_budget ?resubmit ~system ~n ~rate ~duration_s ~seed () =
  let cluster = Cluster.create ?engine ?policy ?tweak ?tracer ?registry ~system ~n ~seed () in
  let engine = Cluster.engine cluster in
  let until = Time_ns.of_sec_f duration_s in
  List.iter
    (fun fault ->
      match fault with
      | Crash_at (node, at_s) -> Cluster.crash_at cluster ~node ~at:(Time_ns.of_sec_f at_s)
      | Crash_epoch_end node -> Cluster.crash_epoch_end cluster ~node
      | Straggler node -> Cluster.set_stragglers cluster [ node ])
    faults;
  (match scenario with
  | None -> ()
  | Some sc ->
      let protocol =
        match system with Cluster.Iss p | Cluster.Single p -> Some p | Cluster.Mir -> None
      in
      (match Faults.validate ?protocol sc ~n with
      | Ok () -> ()
      | Error e ->
          invalid_arg (Printf.sprintf "fault scenario %S: %s" (Faults.name sc) e));
      Faults.apply sc cluster;
      Cluster.enable_invariants cluster);
  Cluster.start cluster;
  (* Fault scenarios need the client resubmission mechanism of §4.3;
     overload runs opt in explicitly so shed requests get re-driven. *)
  let resubmit =
    match resubmit with
    | Some b -> b
    | None -> faults <> [] || Option.is_some scenario
  in
  (* Chaos runs keep the engine (and the resubmission sweeper) going past
     the last fault's heal time plus the recovery bound, so the liveness
     check judges a healed cluster. *)
  let run_until =
    match scenario with
    | None -> until
    | Some sc ->
        let cfg = Cluster.config cluster in
        Time_ns.of_sec_f
          (Float.max duration_s (Faults.heal_s sc +. Faults.liveness_grace_s cfg))
  in
  Workload.start ~cluster ~rate ?num_clients ~resubmit ?shape ?retry_budget
    ~shape_seed:seed ~sweep_until:run_until ~until ();
  Sim.Engine.run ~until:run_until engine;
  (match scenario with None -> () | Some _ -> Cluster.check_liveness cluster);
  let series = Cluster.throughput_series cluster ~until:run_until in
  let warmup_bins = int_of_float warmup_s in
  let steady =
    if Array.length series > warmup_bins + 1 then
      Array.sub series warmup_bins (Array.length series - warmup_bins - 1)
    else series
  in
  let throughput =
    if Array.length steady = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 steady /. float_of_int (Array.length steady)
  in
  let hist = Cluster.quorum_latencies cluster in
  {
    system = Cluster.system_name system;
    n;
    offered = rate;
    duration_s;
    submitted = Cluster.submitted cluster;
    delivered = Cluster.delivered_quorum cluster;
    throughput;
    mean_latency_s = Sim.Metrics.Histogram.mean hist;
    p50_latency_s = Sim.Metrics.Histogram.percentile hist 50.0;
    p95_latency_s = Sim.Metrics.Histogram.percentile hist 95.0;
    p99_latency_s = Sim.Metrics.Histogram.percentile hist 99.0;
    series;
    sim_events = Sim.Engine.events_executed engine;
    net_messages = Sim.Network.messages_sent (Cluster.network cluster);
    net_bytes = Sim.Network.bytes_sent (Cluster.network cluster);
    shed = Cluster.shed_total cluster;
    pushback = Cluster.pushback_total cluster;
    gave_up = Cluster.gave_up_count cluster;
  }

(* Analytical ceilings in this simulator (see DESIGN.md): batch-rate caps
   for PBFT/Raft, NIC receive bandwidth for HotStuff, per-leader NIC
   serialization for the single-leader baselines. *)
let saturation_estimate system ~n =
  let request_bits = 4640.0 (* 580 B on the wire *) in
  let nic = 1e9 in
  match system with
  | Cluster.Iss Core.Config.PBFT | Cluster.Mir -> 32.0 *. 2048.0 *. 1.05
  | Cluster.Iss Core.Config.Raft -> 32.0 *. 4096.0 *. 1.05
  | Cluster.Iss Core.Config.HotStuff ->
      (* Receive-side NIC bound, plus CPU on request verification. *)
      min (nic /. request_bits) 190_000.0 *. 1.0
  | Cluster.Single p ->
      let bandwidth_bound = nic /. (request_bits *. float_of_int (max 1 (n - 1))) in
      let rate_bound =
        match p with
        | Core.Config.PBFT -> 32.0 *. 2048.0
        | Core.Config.Raft | Core.Config.HotStuff -> 32.0 *. 4096.0
      in
      min bandwidth_bound rate_bound *. 1.3

let peak_throughput ?engine ?(tweak = fun c -> c) ?tracer ?registry ~system ~n ~duration_s
    ~seed () =
  let rate = saturation_estimate system ~n in
  (* Peak runs are fault-free with honest leaders and non-retransmitting
     modeled clients; relaxed validation skips per-request bookkeeping that
     cannot fire (see Config.strict_validation). *)
  let tweak c = { (tweak c) with Core.Config.strict_validation = false } in
  run ?engine ~tweak ?tracer ?registry ~system ~n ~rate ~duration_s ~seed ()

let pp_result fmt r =
  Format.fprintf fmt
    "%-14s n=%-4d offered=%9.0f req/s  tput=%9.0f req/s  \
     lat(mean/p50/p95/p99)=%6.2f/%6.2f/%6.2f/%6.2f s  delivered=%d/%d"
    r.system r.n r.offered r.throughput r.mean_latency_s r.p50_latency_s r.p95_latency_s
    r.p99_latency_s r.delivered r.submitted;
  if r.shed > 0 || r.gave_up > 0 || r.pushback > 0 then
    Format.fprintf fmt "  shed=%d pushback=%d gave_up=%d" r.shed r.pushback r.gave_up

let result_to_json ?(series = false) r =
  let open Obs.Jsonx in
  let base =
    [
      ("system", String r.system);
      ("n", Int r.n);
      ("offered_req_s", Float r.offered);
      ("duration_s", Float r.duration_s);
      ("submitted", Int r.submitted);
      ("delivered", Int r.delivered);
      ("throughput_req_s", Float r.throughput);
      ("mean_latency_s", Float r.mean_latency_s);
      ("p50_latency_s", Float r.p50_latency_s);
      ("p95_latency_s", Float r.p95_latency_s);
      ("p99_latency_s", Float r.p99_latency_s);
      ("sim_events", Int r.sim_events);
      ("net_messages", Int r.net_messages);
      ("net_bytes", Int r.net_bytes);
      ("shed", Int r.shed);
      ("pushback", Int r.pushback);
      ("gave_up", Int r.gave_up);
    ]
  in
  let extra =
    if series then
      [ ("series_req_s", List (Array.to_list (Array.map (fun v -> Float v) r.series))) ]
    else []
  in
  Obj (base @ extra)

(* Offered-load sweep across the saturation knee (EXPERIMENTS.md "Overload
   sweep").  The swept system is a deliberately throttled 4-node ISS-PBFT —
   batch rate 32/s × 64-request batches puts the analytical ceiling at
   2048 req/s, low enough that a 7-point sweep finishes in seconds — with
   flow control on, so past the knee the nodes shed instead of queueing
   without bound. *)

type sweep_point = {
  fraction : float;  (** offered load as a multiple of the analytical ceiling *)
  point : result;
  goodput : float;  (** delivered req/s over the steady-state window *)
}

type sweep = {
  ceiling : float;  (** analytical saturation estimate, req/s *)
  sweep_points : sweep_point list;  (** in increasing offered-load order *)
  peak_goodput : float;
  knee_fraction : float;
      (** highest swept fraction whose goodput stays within 5% of the peak *)
  quick : bool;
}

let overload_tweak ?(capacity = 64) ?(policy = Core.Config.Reject_new) () c =
  {
    c with
    Core.Config.max_batch_size = 64;
    batch_rate = Some 32.0;
    min_epoch_length = 64;
    flow_control = true;
    bucket_capacity = capacity;
    shed_policy = policy;
    strict_validation = true;
  }

let overload_ceiling = 32.0 *. 64.0

let overload_sweep ?(quick = false) ?(seed = 42L) ?(n = 4) () =
  let fractions =
    if quick then [ 0.5; 1.0; 2.0 ] else [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 2.0 ]
  in
  let duration_s = if quick then 12.0 else 25.0 in
  let points =
    List.map
      (fun fraction ->
        let r =
          run
            ~tweak:(overload_tweak ())
            ~resubmit:true ~retry_budget:3 ~system:(Cluster.Iss Core.Config.PBFT) ~n
            ~rate:(fraction *. overload_ceiling)
            ~duration_s ~seed ()
        in
        { fraction; point = r; goodput = r.throughput })
      fractions
  in
  let peak_goodput = List.fold_left (fun m p -> Float.max m p.goodput) 0.0 points in
  (* The knee: the highest swept load the system still keeps up with
     (goodput within 5% of offered).  Past it goodput should stay flat near
     the peak — graceful degradation — rather than collapse. *)
  let knee_fraction =
    List.fold_left
      (fun knee p ->
        if p.goodput >= 0.95 *. p.point.offered then Float.max knee p.fraction else knee)
      0.0 points
  in
  { ceiling = overload_ceiling; sweep_points = points; peak_goodput; knee_fraction; quick }

let sweep_to_json sw =
  let open Obs.Jsonx in
  Obj
    [
      ("figure", String "overload");
      ("system", String "iss-pbft");
      ("ceiling_req_s", Float sw.ceiling);
      ("peak_goodput_req_s", Float sw.peak_goodput);
      ("knee_fraction", Float sw.knee_fraction);
      ("quick", Bool sw.quick);
      ( "points",
        List
          (List.map
             (fun p ->
               match result_to_json p.point with
               | Obj fields -> Obj (("fraction", Float p.fraction) :: fields)
               | other -> other)
             sw.sweep_points) );
    ]
