(** Experiment drivers: one function per measurement the paper reports.

    Every run is seeded and deterministic.  Results carry both the summary
    statistics the paper's figures plot and the raw 1-second throughput
    series for the time-series figures. *)

type result = {
  system : string;
  n : int;
  offered : float;  (** client request rate, req/s *)
  duration_s : float;
  submitted : int;
  delivered : int;  (** requests that reached a reply quorum *)
  throughput : float;  (** delivered req/s over the steady-state window *)
  mean_latency_s : float;
  p50_latency_s : float;
  p95_latency_s : float;
  p99_latency_s : float;
  series : float array;  (** delivered req/s per 1-second bin *)
  sim_events : int;
  net_messages : int;  (** node-to-node messages sent *)
  net_bytes : int;  (** node-to-node bytes sent (incl. framing) *)
}

type fault =
  | Crash_at of int * float  (** node, seconds *)
  | Crash_epoch_end of int
  | Straggler of int

val run :
  ?engine:Sim.Engine.t ->
  ?policy:Core.Config.leader_policy_kind ->
  ?tweak:(Core.Config.t -> Core.Config.t) ->
  ?faults:fault list ->
  ?scenario:Faults.t ->
  ?num_clients:int ->
  ?warmup_s:float ->
  ?tracer:Obs.Tracer.t ->
  ?registry:Obs.Registry.t ->
  system:Cluster.system ->
  n:int ->
  rate:float ->
  duration_s:float ->
  seed:int64 ->
  unit ->
  result
(** One measurement run: build the cluster, inject faults, offer load at
    [rate] for [duration_s] simulated seconds, report steady-state numbers
    (the first [warmup_s], default 5 s, excluded from throughput/latency
    aggregation of the summary — the series keeps everything).

    [scenario] runs a declarative fault schedule under the chaos harness:
    the schedule is validated and compiled to engine events, cross-node
    invariant checking is enabled (raising {!Cluster.Invariant_violation}
    on a safety breach), the run is extended past the schedule's heal time
    plus {!Faults.liveness_grace_s}, and liveness — every submitted request
    delivered — is asserted at the end. *)

val peak_throughput :
  ?engine:Sim.Engine.t ->
  ?tweak:(Core.Config.t -> Core.Config.t) ->
  ?tracer:Obs.Tracer.t ->
  ?registry:Obs.Registry.t ->
  system:Cluster.system ->
  n:int ->
  duration_s:float ->
  seed:int64 ->
  unit ->
  result
(** Peak throughput before saturation (Fig. 5's y-axis): over-saturate the
    system and measure the delivered rate. *)

val saturation_estimate : Cluster.system -> n:int -> float
(** The offered load used to over-saturate each system (≈1.3× its
    analytical ceiling in this simulator). *)

val pp_result : Format.formatter -> result -> unit

val result_to_json : ?series:bool -> result -> Obs.Jsonx.t
(** The result as a JSON object (field names mirror the record, with units
    suffixed).  [series] additionally includes the per-second throughput
    series; off by default to keep figure files small. *)
