(** Experiment drivers: one function per measurement the paper reports.

    Every run is seeded and deterministic.  Results carry both the summary
    statistics the paper's figures plot and the raw 1-second throughput
    series for the time-series figures. *)

type result = {
  system : string;
  n : int;
  offered : float;  (** client request rate, req/s *)
  duration_s : float;
  submitted : int;
  delivered : int;  (** requests that reached a reply quorum *)
  throughput : float;  (** delivered req/s over the steady-state window *)
  mean_latency_s : float;
  p50_latency_s : float;
  p95_latency_s : float;
  p99_latency_s : float;
  series : float array;  (** delivered req/s per 1-second bin *)
  sim_events : int;
  net_messages : int;  (** node-to-node messages sent *)
  net_bytes : int;  (** node-to-node bytes sent (incl. framing) *)
  shed : int;  (** requests shed by flow-control admission, all nodes *)
  pushback : int;  (** pushback notifications issued (advisory + shed) *)
  gave_up : int;  (** requests whose client exhausted its retry budget *)
}

type fault =
  | Crash_at of int * float  (** node, seconds *)
  | Crash_epoch_end of int
  | Straggler of int

val run :
  ?engine:Sim.Engine.t ->
  ?policy:Core.Config.leader_policy_kind ->
  ?tweak:(Core.Config.t -> Core.Config.t) ->
  ?faults:fault list ->
  ?scenario:Faults.t ->
  ?num_clients:int ->
  ?warmup_s:float ->
  ?tracer:Obs.Tracer.t ->
  ?registry:Obs.Registry.t ->
  ?shape:Workload.shape ->
  ?retry_budget:int ->
  ?resubmit:bool ->
  system:Cluster.system ->
  n:int ->
  rate:float ->
  duration_s:float ->
  seed:int64 ->
  unit ->
  result
(** One measurement run: build the cluster, inject faults, offer load at
    [rate] for [duration_s] simulated seconds, report steady-state numbers
    (the first [warmup_s], default 5 s, excluded from throughput/latency
    aggregation of the summary — the series keeps everything).

    [scenario] runs a declarative fault schedule under the chaos harness:
    the schedule is validated and compiled to engine events, cross-node
    invariant checking is enabled (raising {!Cluster.Invariant_violation}
    on a safety breach), the run is extended past the schedule's heal time
    plus {!Faults.liveness_grace_s}, and liveness — every submitted request
    delivered — is asserted at the end.

    [shape], [retry_budget] and [resubmit] pass through to
    {!Workload.start}; [resubmit] defaults to on exactly when faults or a
    chaos scenario are present (overload runs set it explicitly so shed
    requests get re-driven until delivered or out of budget).  The run seed
    doubles as the workload shape seed. *)

val peak_throughput :
  ?engine:Sim.Engine.t ->
  ?tweak:(Core.Config.t -> Core.Config.t) ->
  ?tracer:Obs.Tracer.t ->
  ?registry:Obs.Registry.t ->
  system:Cluster.system ->
  n:int ->
  duration_s:float ->
  seed:int64 ->
  unit ->
  result
(** Peak throughput before saturation (Fig. 5's y-axis): over-saturate the
    system and measure the delivered rate. *)

val saturation_estimate : Cluster.system -> n:int -> float
(** The offered load used to over-saturate each system (≈1.3× its
    analytical ceiling in this simulator). *)

val pp_result : Format.formatter -> result -> unit

val result_to_json : ?series:bool -> result -> Obs.Jsonx.t
(** The result as a JSON object (field names mirror the record, with units
    suffixed).  [series] additionally includes the per-second throughput
    series; off by default to keep figure files small. *)

(** {2 Overload sweep (flow control)} *)

type sweep_point = {
  fraction : float;  (** offered load as a multiple of the analytical ceiling *)
  point : result;
  goodput : float;  (** delivered req/s over the steady-state window *)
}

type sweep = {
  ceiling : float;  (** analytical saturation estimate, req/s *)
  sweep_points : sweep_point list;  (** in increasing offered-load order *)
  peak_goodput : float;
  knee_fraction : float;
      (** the saturation knee: highest swept fraction the system still keeps
          up with (goodput within 5% of offered).  Past it goodput should
          stay flat near the peak — graceful degradation, not collapse *)
  quick : bool;
}

val overload_tweak :
  ?capacity:int -> ?policy:Core.Config.shed_policy -> unit -> Core.Config.t -> Core.Config.t
(** The throttled flow-control configuration the overload experiments use:
    batch rate 32/s × 64-request batches (analytical ceiling 2048 req/s),
    64-entry epochs, flow control on with [capacity]-request buckets
    (default 64) and [policy] (default [Reject_new]). *)

val overload_ceiling : float
(** Analytical saturation of the {!overload_tweak} configuration, req/s. *)

val overload_sweep : ?quick:bool -> ?seed:int64 -> ?n:int -> unit -> sweep
(** Sweep offered load from well under to 2× the ceiling on a throttled
    4-node ISS-PBFT with flow control on, modeled-client retransmission and
    a 3-resend retry budget.  [quick] (default false) runs 3 points × 12 s
    instead of 7 points × 25 s — the CI smoke variant. *)

val sweep_to_json : sweep -> Obs.Jsonx.t
(** The sweep as the BENCH_overload.json figure object. *)
