module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

type spec =
  | Crash of { node : int; at_s : float }
  | Recover of { node : int; at_s : float }
  | Crash_recover of { node : int; at_s : float; down_s : float }
  | Isolate of { node : int; from_s : float; until_s : float }
  | Split of { minority : int list; from_s : float; until_s : float }
  | Drop of { prob : float; from_s : float; until_s : float }
  | Straggle of { node : int; from_s : float; until_s : float }
  | Slow_link of { a : int; b : int; extra : Time_ns.span; from_s : float; until_s : float }
  (* Active-malice windows (Byzantine adversary; DESIGN.md §10).  During the
     window the node's outgoing traffic is rewritten by the cluster's
     {!Adversary} proxy while the node itself keeps running honest code. *)
  | Equivocate of { node : int; from_s : float; until_s : float }
  | Censor of { node : int; buckets : int list; from_s : float; until_s : float }
  | Corrupt_sig of { node : int; from_s : float; until_s : float }
  | Replay of { node : int; from_s : float; until_s : float }
  | Bad_checkpoint of { node : int; from_s : float; until_s : float }

type t = { name : string; spec : spec list }

let make ~name spec = { name; spec }
let name t = t.name
let spec t = t.spec

(* ------------------------------------------------------------------ *)
(* Introspection *)

(* Every window-based spec must contribute its [until_s] here: [heal_s] is
   the moment the liveness grace period starts counting, and a forgotten
   constructor would start it while the fault is still active.  A unit test
   (test_byzantine.ml) enumerates all constructors against this function so
   adding a spec without extending it fails to compile. *)
let last_event_s = function
  | Crash { at_s; _ } | Recover { at_s; _ } -> at_s
  | Crash_recover { at_s; down_s; _ } -> at_s +. down_s
  | Isolate { until_s; _ }
  | Split { until_s; _ }
  | Drop { until_s; _ }
  | Straggle { until_s; _ }
  | Slow_link { until_s; _ }
  | Equivocate { until_s; _ }
  | Censor { until_s; _ }
  | Corrupt_sig { until_s; _ }
  | Replay { until_s; _ }
  | Bad_checkpoint { until_s; _ } ->
      until_s

(* The Byzantine specs, as (node, window); [None] for benign faults. *)
let byzantine_window = function
  | Equivocate { node; from_s; until_s }
  | Censor { node; from_s; until_s; _ }
  | Corrupt_sig { node; from_s; until_s }
  | Replay { node; from_s; until_s }
  | Bad_checkpoint { node; from_s; until_s } ->
      Some (node, from_s, until_s)
  | Crash _ | Recover _ | Crash_recover _ | Isolate _ | Split _ | Drop _ | Straggle _
  | Slow_link _ ->
      None

let byzantine_nodes t =
  List.sort_uniq compare
    (List.filter_map (fun s -> Option.map (fun (n, _, _) -> n) (byzantine_window s)) t.spec)

let has_byzantine t = byzantine_nodes t <> []

let heal_s t = List.fold_left (fun acc e -> Float.max acc (last_event_s e)) 0.0 t.spec

let pp_spec fmt = function
  | Crash { node; at_s } -> Format.fprintf fmt "crash node %d at %gs" node at_s
  | Recover { node; at_s } -> Format.fprintf fmt "recover node %d at %gs" node at_s
  | Crash_recover { node; at_s; down_s } ->
      Format.fprintf fmt "crash node %d at %gs, recover after %gs" node at_s down_s
  | Isolate { node; from_s; until_s } ->
      Format.fprintf fmt "partition node %d away during [%gs, %gs]" node from_s until_s
  | Split { minority; from_s; until_s } ->
      Format.fprintf fmt "split {%s} from the rest during [%gs, %gs]"
        (String.concat "," (List.map string_of_int minority))
        from_s until_s
  | Drop { prob; from_s; until_s } ->
      Format.fprintf fmt "drop messages with p=%g during [%gs, %gs]" prob from_s until_s
  | Straggle { node; from_s; until_s } ->
      Format.fprintf fmt "node %d straggles during [%gs, %gs]" node from_s until_s
  | Slow_link { a; b; extra; from_s; until_s } ->
      Format.fprintf fmt "link %d<->%d +%a during [%gs, %gs]" a b Time_ns.pp extra from_s
        until_s
  | Equivocate { node; from_s; until_s } ->
      Format.fprintf fmt "node %d equivocates during [%gs, %gs]" node from_s until_s
  | Censor { node; buckets = []; from_s; until_s } ->
      Format.fprintf fmt "node %d censors all requests during [%gs, %gs]" node from_s until_s
  | Censor { node; buckets; from_s; until_s } ->
      Format.fprintf fmt "node %d censors buckets {%s} during [%gs, %gs]" node
        (String.concat "," (List.map string_of_int buckets))
        from_s until_s
  | Corrupt_sig { node; from_s; until_s } ->
      Format.fprintf fmt "node %d emits unverifiable signatures during [%gs, %gs]" node from_s
        until_s
  | Replay { node; from_s; until_s } ->
      Format.fprintf fmt "node %d replays stale messages during [%gs, %gs]" node from_s until_s
  | Bad_checkpoint { node; from_s; until_s } ->
      Format.fprintf fmt "node %d advertises corrupt checkpoints during [%gs, %gs]" node from_s
        until_s

let pp fmt t =
  Format.fprintf fmt "@[<v>scenario %S (heals at %gs):@,%a@]" t.name (heal_s t)
    (Format.pp_print_list pp_spec) t.spec

(* ------------------------------------------------------------------ *)
(* Validation *)

let ( let* ) = Result.bind

let validate ?protocol ?(warn = fun (_ : string) -> ()) t ~n =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_node node = node >= 0 && node < n in
  let check_window ~from_s ~until_s = from_s >= 0.0 && until_s > from_s in
  let check_byzantine ~node ~from_s ~until_s =
    if not (check_node node) then fail "node %d out of range [0,%d)" node n
    else if not (check_window ~from_s ~until_s) then fail "bad window [%g, %g]" from_s until_s
    else
      match protocol with
      | Some Core.Config.Raft ->
          fail
            "Byzantine fault on node %d: Raft is a crash-fault-tolerant protocol and makes no \
             guarantees against active malice; Byzantine specs require PBFT or HotStuff"
            node
      | Some Core.Config.PBFT | Some Core.Config.HotStuff | None -> Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | e :: rest -> (
        let ok =
          match e with
          | Crash { node; at_s } | Recover { node; at_s } ->
              if not (check_node node) then fail "node %d out of range [0,%d)" node n
              else if at_s < 0.0 then fail "negative fault time %g" at_s
              else Ok ()
          | Crash_recover { node; at_s; down_s } ->
              if not (check_node node) then fail "node %d out of range [0,%d)" node n
              else if at_s < 0.0 || down_s <= 0.0 then
                fail "crash-recover needs at_s >= 0 and down_s > 0"
              else Ok ()
          | Isolate { node; from_s; until_s } ->
              if not (check_node node) then fail "node %d out of range [0,%d)" node n
              else if not (check_window ~from_s ~until_s) then
                fail "bad window [%g, %g]" from_s until_s
              else Ok ()
          | Split { minority; from_s; until_s } ->
              if minority = [] then fail "empty minority in split"
              else if List.exists (fun m -> not (check_node m)) minority then
                fail "split minority contains an out-of-range node"
              else if 2 * List.length minority >= n then
                fail "split minority of %d is not a minority of %d" (List.length minority) n
              else if not (check_window ~from_s ~until_s) then
                fail "bad window [%g, %g]" from_s until_s
              else Ok ()
          | Drop { prob; from_s; until_s } ->
              if prob < 0.0 || prob >= 1.0 then fail "drop probability %g outside [0, 1)" prob
              else if not (check_window ~from_s ~until_s) then
                fail "bad window [%g, %g]" from_s until_s
              else Ok ()
          | Straggle { node; from_s; until_s } ->
              if not (check_node node) then fail "node %d out of range [0,%d)" node n
              else if not (check_window ~from_s ~until_s) then
                fail "bad window [%g, %g]" from_s until_s
              else Ok ()
          | Slow_link { a; b; extra; from_s; until_s } ->
              if not (check_node a && check_node b) then fail "slow-link endpoint out of range"
              else if extra <= 0 then fail "slow-link extra latency must be positive"
              else if not (check_window ~from_s ~until_s) then
                fail "bad window [%g, %g]" from_s until_s
              else Ok ()
          | Equivocate { node; from_s; until_s }
          | Corrupt_sig { node; from_s; until_s }
          | Replay { node; from_s; until_s }
          | Bad_checkpoint { node; from_s; until_s } ->
              check_byzantine ~node ~from_s ~until_s
          | Censor { node; buckets; from_s; until_s } ->
              let num_buckets = 16 * n in
              (* buckets_per_leader defaults to 16; the exact bound is
                 re-checked against the real config when the batch is cut,
                 so this only guards against obviously-nonsense specs. *)
              if List.exists (fun b -> b < 0 || b >= num_buckets) buckets then
                fail "censor bucket out of range [0,%d)" num_buckets
              else check_byzantine ~node ~from_s ~until_s
        in
        match ok with Ok () -> go rest | Error _ as e -> e)
  in
  let* () = go t.spec in
  (* Cross-spec checks over the Byzantine windows. *)
  let windows = List.filter_map byzantine_window t.spec in
  (* Overlapping windows on the same node compose in unspecified ways (the
     proxy holds one active attack per node); allowed, but flagged. *)
  let rec warn_overlaps = function
    | [] -> ()
    | (node, f0, u0) :: rest ->
        List.iter
          (fun (node', f1, u1) ->
            if node = node' && f0 < u1 && f1 < u0 then
              warn
                (Printf.sprintf
                   "overlapping Byzantine windows on node %d ([%g, %g] and [%g, %g]): the later \
                    activation replaces the earlier attack"
                   node f0 u0 f1 u1))
          rest;
        warn_overlaps rest
  in
  warn_overlaps windows;
  (* At most f nodes may be Byzantine at any instant — beyond that the BFT
     protocols promise nothing and every "violation" the harness would
     report is vacuous. *)
  let f = Proto.Ids.max_faulty ~n in
  let concurrent_at from_s =
    List.filter (fun (_, f1, u1) -> f1 <= from_s && from_s < u1) windows
    |> List.map (fun (node, _, _) -> node)
    |> List.sort_uniq compare |> List.length
  in
  let worst =
    List.fold_left (fun acc (_, from_s, _) -> max acc (concurrent_at from_s)) 0 windows
  in
  if worst > f then
    fail
      "%d nodes are concurrently Byzantine but n=%d only tolerates f=%d; the harness refuses \
       schedules whose safety claims would be vacuous"
      worst n f
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Compilation to simulator events *)

let apply t cluster =
  let engine = Cluster.engine cluster in
  let net = Cluster.network cluster in
  let nodes = Cluster.nodes cluster in
  let at s f = ignore (Engine.schedule_at engine ~at:(Time_ns.of_sec_f s) f) in
  (* Partition windows may overlap (several isolated nodes, or an isolate
     inside a split); the network holds a single partition function, so we
     keep the active fault set here and recompute the grouping on every
     boundary.  Isolated nodes sit in singleton groups; an active split's
     minority forms one more group; everyone else is group 0. *)
  let isolated : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let split = ref [] in
  let refresh_partition () =
    if Hashtbl.length isolated = 0 && !split = [] then Sim.Network.set_partition net None
    else
      let minority = !split in
      Sim.Network.set_partition net
        (Some
           (fun id ->
             if Hashtbl.mem isolated id then 2 + id
             else if List.mem id minority then 1
             else 0))
  in
  (* Byzantine windows: instantiate the adversary proxy (only schedules that
     get here pay for it — honest runs keep the direct send path), mark the
     node for invariant exemption, and bracket the attack with engine
     events. *)
  let byzantine ~node ~from_s ~until_s attack =
    let adv = Cluster.ensure_adversary cluster in
    Cluster.mark_byzantine cluster node;
    at from_s (fun () -> Adversary.set_attack adv ~node (Some attack));
    at until_s (fun () -> Adversary.set_attack adv ~node None)
  in
  (* Same single-active-function situation for link-latency spikes. *)
  let slow_links : (int * int, Time_ns.span) Hashtbl.t = Hashtbl.create 4 in
  let refresh_links () =
    if Hashtbl.length slow_links = 0 then Sim.Network.set_link_latency net None
    else
      Sim.Network.set_link_latency net
        (Some
           (fun src dst ->
             match Hashtbl.find_opt slow_links (min src dst, max src dst) with
             | Some extra -> extra
             | None -> 0))
  in
  List.iter
    (function
      | Crash { node; at_s } -> Cluster.crash_at cluster ~node ~at:(Time_ns.of_sec_f at_s)
      | Recover { node; at_s } -> Cluster.recover_at cluster ~node ~at:(Time_ns.of_sec_f at_s)
      | Crash_recover { node; at_s; down_s } ->
          Cluster.crash_at cluster ~node ~at:(Time_ns.of_sec_f at_s);
          Cluster.recover_at cluster ~node ~at:(Time_ns.of_sec_f (at_s +. down_s))
      | Isolate { node; from_s; until_s } ->
          at from_s (fun () ->
              Hashtbl.replace isolated node ();
              refresh_partition ());
          at until_s (fun () ->
              Hashtbl.remove isolated node;
              refresh_partition ())
      | Split { minority; from_s; until_s } ->
          at from_s (fun () ->
              split := minority;
              refresh_partition ());
          at until_s (fun () ->
              split := [];
              refresh_partition ())
      | Drop { prob; from_s; until_s } ->
          at from_s (fun () -> Sim.Network.set_drop_probability net prob);
          at until_s (fun () -> Sim.Network.set_drop_probability net 0.0)
      | Straggle { node; from_s; until_s } ->
          at from_s (fun () -> Core.Node.set_straggler nodes.(node) true);
          at until_s (fun () -> Core.Node.set_straggler nodes.(node) false)
      | Slow_link { a; b; extra; from_s; until_s } ->
          let key = (min a b, max a b) in
          at from_s (fun () ->
              Hashtbl.replace slow_links key extra;
              refresh_links ());
          at until_s (fun () ->
              Hashtbl.remove slow_links key;
              refresh_links ())
      | Equivocate { node; from_s; until_s } ->
          byzantine ~node ~from_s ~until_s Adversary.Equivocate
      | Censor { node; buckets; from_s; until_s } ->
          byzantine ~node ~from_s ~until_s (Adversary.Censor { buckets })
      | Corrupt_sig { node; from_s; until_s } ->
          byzantine ~node ~from_s ~until_s Adversary.Corrupt_sig
      | Replay { node; from_s; until_s } ->
          byzantine ~node ~from_s ~until_s Adversary.Replay
      | Bad_checkpoint { node; from_s; until_s } ->
          byzantine ~node ~from_s ~until_s Adversary.Bad_checkpoint)
    t.spec

(* ------------------------------------------------------------------ *)
(* Liveness bound *)

let liveness_grace_s (config : Core.Config.t) =
  (* How long after the last fault heals every submitted request must be
     delivered.  The dominant term is epoch turnover: requests stranded in a
     crashed (or ⊥-filled) leader's buckets can only be re-proposed once the
     next epoch re-assigns those buckets, and an epoch at light load drains
     one empty keep-alive batch per slot every max(batch interval,
     batch timeout, epoch_change_timeout / 2) — NOT at the offered-load
     rate.  Budget two such worst-case epochs (the one in progress when the
     fault heals, plus the one that re-proposes the stragglers) plus a few
     epoch-change timeouts for view changes and state-transfer lag checks. *)
  let ect = Time_ns.to_sec_f config.Core.Config.epoch_change_timeout in
  let n = config.Core.Config.n in
  let interval_s =
    let min_bt = Time_ns.to_sec_f config.Core.Config.min_batch_timeout in
    match config.Core.Config.batch_rate with
    | Some rate -> Float.max min_bt (float_of_int n /. rate)
    | None -> min_bt
  in
  let slot_s =
    if config.Core.Config.max_batch_timeout = 0 then
      (* Zero batch timeout (HotStuff): empty batches cut as soon as the
         pipeline asks, so slots drain at the batch interval. *)
      Float.max interval_s 0.01
    else
      Float.max interval_s
        (Float.max
           (Time_ns.to_sec_f config.Core.Config.max_batch_timeout)
           (ect /. 2.0))
  in
  let epoch_len = Core.Config.epoch_length config ~leaders:n in
  let epoch_s = float_of_int (epoch_len / max 1 n) *. slot_s in
  (4.0 *. ect) +. (2.0 *. epoch_s) +. 10.0

(* ------------------------------------------------------------------ *)
(* Named scenarios *)

let bft_f ~n = max 1 ((n - 1) / 3)

let named ~n name =
  let victim = 1 mod n in
  let far = (n - 1 + n) mod n in
  match String.lowercase_ascii name with
  | "crash-recover" ->
      Ok (make ~name [ Crash_recover { node = victim; at_s = 5.0; down_s = 20.0 } ])
  | "partition-heal" -> Ok (make ~name [ Isolate { node = far; from_s = 5.0; until_s = 25.0 } ])
  | "split-brain" ->
      let minority = List.init (min (bft_f ~n) (max 1 ((n - 1) / 2))) (fun i -> (i + 1) mod n) in
      Ok (make ~name [ Split { minority; from_s = 5.0; until_s = 25.0 } ])
  | "lossy" -> Ok (make ~name [ Drop { prob = 0.1; from_s = 2.0; until_s = 22.0 } ])
  | "straggler-window" ->
      Ok (make ~name [ Straggle { node = victim; from_s = 5.0; until_s = 35.0 } ])
  | "slow-link" ->
      Ok
        (make ~name
           [
             Slow_link
               { a = 0; b = victim; extra = Time_ns.ms 200; from_s = 5.0; until_s = 25.0 };
           ])
  (* Active-malice scenarios (BFT protocols only; validation rejects them
     for Raft).  One attacker, one window; the paired-defense acceptance
     tests (test_byzantine.ml) run exactly these. *)
  | "byz-equivocate" -> Ok (make ~name [ Equivocate { node = victim; from_s = 2.0; until_s = 22.0 } ])
  | "byz-censor" ->
      Ok (make ~name [ Censor { node = victim; buckets = []; from_s = 2.0; until_s = 22.0 } ])
  | "byz-corrupt-sig" ->
      Ok (make ~name [ Corrupt_sig { node = victim; from_s = 2.0; until_s = 22.0 } ])
  | "byz-replay" -> Ok (make ~name [ Replay { node = victim; from_s = 2.0; until_s = 22.0 } ])
  | "byz-bad-checkpoint" ->
      (* The corrupt-checkpoint attack only bites when someone consumes
         checkpoints: pair it with a crash-recovery so the recovering node
         must state-transfer while the attacker (one of the f+1 peers it
         asks) serves poisoned certificates. *)
      Ok
        (make ~name
           [
             Bad_checkpoint { node = victim; from_s = 2.0; until_s = 40.0 };
             Crash_recover { node = far; at_s = 8.0; down_s = 12.0 };
           ])
  | other -> Error (Printf.sprintf "unknown fault scenario %S" other)

let byz_scenario_names =
  [ "byz-equivocate"; "byz-censor"; "byz-corrupt-sig"; "byz-replay"; "byz-bad-checkpoint" ]

let scenario_names =
  [ "crash-recover"; "partition-heal"; "split-brain"; "lossy"; "straggler-window"; "slow-link"; "chaos" ]
  @ byz_scenario_names

(* ------------------------------------------------------------------ *)
(* Randomized chaos schedules *)

let random ~seed ~n ~duration_s =
  let rng = Sim.Rng.create ~seed in
  (* Sequential non-overlapping fault windows: at most one fault is active
     at any time, so a quorum of connected correct nodes always exists and
     the liveness invariant is a theorem, not a hope.  Windows stop at 60 %
    of the run so the heal-time grace fits inside it comfortably. *)
  let d = duration_s in
  let events = ref [] in
  let now = ref (0.05 *. d) in
  let horizon = 0.6 *. d in
  while !now < horizon do
    let w = Sim.Rng.uniform_range rng ~lo:(0.08 *. d) ~hi:(0.18 *. d) in
    let until_s = Float.min (!now +. w) horizon in
    let victim = Sim.Rng.int rng n in
    let e =
      match Sim.Rng.int rng 5 with
      | 0 -> Crash_recover { node = victim; at_s = !now; down_s = until_s -. !now }
      | 1 -> Isolate { node = victim; from_s = !now; until_s }
      | 2 ->
          Drop
            {
              prob = Sim.Rng.uniform_range rng ~lo:0.02 ~hi:0.1;
              from_s = !now;
              until_s;
            }
      | 3 -> Straggle { node = victim; from_s = !now; until_s }
      | _ ->
          let other = (victim + 1 + Sim.Rng.int rng (max 1 (n - 1))) mod n in
          Slow_link
            {
              a = victim;
              b = (if other = victim then (victim + 1) mod n else other);
              extra = Time_ns.ms (50 + Sim.Rng.int rng 250);
              from_s = !now;
              until_s;
            }
    in
    events := e :: !events;
    now := until_s +. Sim.Rng.uniform_range rng ~lo:(0.02 *. d) ~hi:(0.08 *. d)
  done;
  make ~name:(Printf.sprintf "chaos-%Ld" seed) (List.rev !events)

let random_byzantine ~seed ~n ~duration_s =
  let rng = Sim.Rng.create ~seed in
  (* One attacker, one window — at most one Byzantine node at a time keeps
     the run inside the f-bound for every n >= 4.  The window opens early
     and closes at half the run so epochs after it can demonstrate
     recovery. *)
  let d = duration_s in
  let from_s = Sim.Rng.uniform_range rng ~lo:(0.08 *. d) ~hi:(0.2 *. d) in
  let until_s = Sim.Rng.uniform_range rng ~lo:(0.4 *. d) ~hi:(0.5 *. d) in
  let victim = Sim.Rng.int rng n in
  let events =
    match Sim.Rng.int rng 5 with
    | 0 -> [ Equivocate { node = victim; from_s; until_s } ]
    | 1 ->
        let buckets =
          if Sim.Rng.bool rng then []
          else [ Sim.Rng.int rng (16 * n) ]
        in
        [ Censor { node = victim; buckets; from_s; until_s } ]
    | 2 -> [ Corrupt_sig { node = victim; from_s; until_s } ]
    | 3 -> [ Replay { node = victim; from_s; until_s } ]
    | _ ->
        (* Make the corrupted checkpoints matter: a different node
           crash-recovers inside the attack window and must state-transfer
           past the attacker's poisoned certificates. *)
        let other = (victim + 1 + Sim.Rng.int rng (n - 1)) mod n in
        [
          Bad_checkpoint { node = victim; from_s; until_s };
          Crash_recover
            { node = other; at_s = from_s +. 0.1 *. d; down_s = 0.15 *. d };
        ]
  in
  make ~name:(Printf.sprintf "byz-%Ld" seed) events
