(** Declarative fault schedules (the chaos harness).

    A schedule is a list of fault specs with wall-clock (simulated) activation
    times; {!apply} compiles it into engine events against a {!Cluster.t}.
    All faults from the surviving-process model of the paper's §6.4 are
    expressible: crashes with and without recovery, partitions that heal,
    windows of probabilistic message loss, Byzantine stragglers, and per-link
    latency spikes.

    Schedules are plain data: they can be validated ({!validate}), printed
    ({!pp}), inspected for their heal time ({!heal_s}), generated from a seed
    ({!random}), or looked up by name ({!named}) — the CLI's [--scenario]
    flag and the chaos test-suite both go through this module. *)

type spec =
  | Crash of { node : int; at_s : float }
      (** Fail-stop at [at_s] (no recovery unless a matching [Recover]
          follows). *)
  | Recover of { node : int; at_s : float }
      (** Revive a crashed node; it rejoins via state transfer. *)
  | Crash_recover of { node : int; at_s : float; down_s : float }
      (** Crash at [at_s], recover [down_s] later. *)
  | Isolate of { node : int; from_s : float; until_s : float }
      (** Partition one node away from everyone, then heal. *)
  | Split of { minority : int list; from_s : float; until_s : float }
      (** Partition the cluster into [minority] vs the rest, then heal.
          [minority] must be a strict minority so the majority side retains a
          quorum. *)
  | Drop of { prob : float; from_s : float; until_s : float }
      (** Drop every node-to-node message independently with probability
          [prob] during the window. *)
  | Straggle of { node : int; from_s : float; until_s : float }
      (** Byzantine straggler (proposes empty batches) during the window. *)
  | Slow_link of {
      a : int;
      b : int;
      extra : Sim.Time_ns.span;
      from_s : float;
      until_s : float;
    }
      (** Add [extra] propagation latency to both directions of one link
          during the window. *)
  | Equivocate of { node : int; from_s : float; until_s : float }
      (** Active malice: the node sends conflicting proposals for the same
          sequence number to disjoint receiver subsets (see
          {!Adversary.attack}).  BFT protocols only. *)
  | Censor of { node : int; buckets : int list; from_s : float; until_s : float }
      (** Active malice: the node filters requests of the given buckets out
          of the proposals it sends ([buckets = []] censors everything).
          BFT protocols only. *)
  | Corrupt_sig of { node : int; from_s : float; until_s : float }
      (** Active malice: every control message the node sends carries an
          invalid authenticator.  BFT protocols only. *)
  | Replay of { node : int; from_s : float; until_s : float }
      (** Active malice: the node re-injects stale protocol messages and
          previously proposed client requests.  BFT protocols only. *)
  | Bad_checkpoint of { node : int; from_s : float; until_s : float }
      (** Active malice: the node corrupts the state root in its checkpoint
          votes and state-transfer certificates.  BFT protocols only. *)

type t

val make : name:string -> spec list -> t
val name : t -> string
val spec : t -> spec list

val heal_s : t -> float
(** Time of the last fault event — when every transient fault has healed and
    every scheduled recovery has happened.  Liveness is judged a grace period
    after this point. *)

val validate :
  ?protocol:Core.Config.protocol ->
  ?warn:(string -> unit) ->
  t ->
  n:int ->
  (unit, string) result
(** Check node ids against the cluster size, window sanity, probability
    ranges, and that splits leave a majority intact.  Byzantine specs are
    additionally rejected when [protocol] is [Raft] (a crash-fault-tolerant
    protocol makes no Byzantine promises) and when more than
    [Proto.Ids.max_faulty ~n] distinct nodes would be Byzantine at the same
    instant.  Overlapping attack windows on the {e same} node are legal but
    suspicious (the later window wins) — they are reported through [warn]. *)

val byzantine_nodes : t -> int list
(** Sorted, deduplicated ids of nodes with at least one active-malice spec. *)

val has_byzantine : t -> bool

val apply : t -> Cluster.t -> unit
(** Compile the schedule to simulator events (call before running the
    engine).  Overlapping partition windows compose: each isolated node is
    its own group and an active split adds one more.  Overlapping slow-link
    windows on distinct links compose likewise. *)

val liveness_grace_s : Core.Config.t -> float
(** How long after {!heal_s} every submitted request must have reached its
    reply quorum.  Derived from the epoch-change timeout (which paces
    state-transfer lag detection and leader banning) plus the rate-capped
    epoch duration (which paces bucket re-assignment away from dead
    leaders). *)

val named : n:int -> string -> (t, string) result
(** Built-in scenarios: ["crash-recover"], ["partition-heal"],
    ["split-brain"], ["lossy"], ["straggler-window"], ["slow-link"], plus the
    active-malice scenarios ["byz-equivocate"], ["byz-censor"],
    ["byz-corrupt-sig"], ["byz-replay"] and ["byz-bad-checkpoint"] (the last
    pairs the attack with a crash-recovery so the recovering node must
    state-transfer past the attacker's poisoned certificates). *)

val byz_scenario_names : string list
(** The active-malice subset of {!scenario_names}. *)

val scenario_names : string list
(** Names accepted by {!named}, plus ["chaos"] (seed-derived {!random}). *)

val random : seed:int64 -> n:int -> duration_s:float -> t
(** Generate a randomized schedule of sequential, non-overlapping fault
    windows (at most one fault active at a time, so a connected correct
    quorum always exists and liveness must hold).  Deterministic in [seed]. *)

val random_byzantine : seed:int64 -> n:int -> duration_s:float -> t
(** Generate a schedule with a single active-malice window (one attacker,
    one attack kind, opening early and closing by mid-run); a
    [Bad_checkpoint] draw also crash-recovers a second node inside the
    window.  Deterministic in [seed].  BFT protocols only. *)

val pp : Format.formatter -> t -> unit
