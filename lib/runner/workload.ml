module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

type shape =
  | Steady
  | Flash_crowd of { at_s : float; factor : float; len_s : float }
  | Hot_bucket of { skew : float }
  | Ramp of { peak_factor : float }

let shape_name = function
  | Steady -> "steady"
  | Flash_crowd _ -> "flash-crowd"
  | Hot_bucket _ -> "hot-bucket"
  | Ramp _ -> "ramp"

let tick = Time_ns.ms 10

(* Find a live node whose epoch is furthest along — the reference for the
   current bucket-to-leader assignment (a real client learns it from a
   quorum of Bucket_update messages; the furthest node's view is what the
   quorum converges to). *)
let reference_node (cluster : Cluster.t) =
  let nodes = Cluster.nodes cluster in
  let best = ref None in
  Array.iter
    (fun node ->
      if not (Core.Node.is_halted node) then
        match !best with
        | Some b when Core.Node.current_epoch b >= Core.Node.current_epoch node -> ()
        | Some _ | None -> best := Some node)
    nodes;
  !best

let start ~cluster ~rate ?(num_clients = 2048) ?(resubmit = false) ?(shape = Steady)
    ?retry_budget ?(shape_seed = 1L) ?sweep_until ~until () =
  assert (rate > 0.0);
  (* Submission stops at [until]; the resubmission sweeper may need to keep
     chasing stalled requests through a post-fault grace period. *)
  let sweep_until = match sweep_until with Some t -> max t until | None -> until in
  let engine = Cluster.engine cluster in
  let net = Cluster.network cluster in
  let config = Cluster.config cluster in
  let nodes = Cluster.nodes cluster in
  let num_buckets = Core.Config.num_buckets config in
  let placement = Sim.Topology.assign_uniform ~n:(Array.length nodes) in
  let next_ts = Array.make num_clients 0 in
  let client_base = 100_000 in
  let acc = ref 0.0 in
  let rr = ref 0 in
  let per_tick = rate *. Time_ns.to_sec_f tick in
  (* Hot-bucket machinery (allocated but untouched for other shapes): a
     Zipf draw picks the target bucket, and per-bucket rosters track which
     client's *next* timestamp maps there — bucket_of_id mixes client and
     timestamp, so a fixed client does not make a fixed bucket hot.  Roster
     entries are lazily invalidated: a client submitted through the
     round-robin fallback leaves a stale (client, ts) pair behind, dropped
     when popped. *)
  let shape_rng = Sim.Rng.create ~seed:shape_seed in
  let bucket_of_next c =
    Proto.Request.bucket_of_id ~num_buckets
      { Proto.Request.client = client_base + c; ts = next_ts.(c) }
  in
  let roster = Array.init num_buckets (fun _ -> Queue.create ()) in
  let enroll c = Queue.push (c, next_ts.(c)) roster.(bucket_of_next c) in
  let hot = match shape with Hot_bucket _ -> true | _ -> false in
  if hot then
    for c = 0 to num_clients - 1 do
      enroll c
    done;
  let rec roster_take b =
    match Queue.take_opt roster.(b) with
    | None -> None
    | Some (c, ts) -> if next_ts.(c) = ts then Some c else roster_take b
  in
  let pick_client () =
    let fallback () =
      let c = !rr mod num_clients in
      rr := !rr + 1;
      c
    in
    match shape with
    | Hot_bucket { skew } -> (
        let b = Sim.Rng.zipf shape_rng ~n:num_buckets ~s:skew - 1 in
        match roster_take b with Some c -> c | None -> fallback ())
    | Steady | Flash_crowd _ | Ramp _ -> fallback ()
  in
  (* Offered-load multiplier for the current tick.  The [Steady] arm must
     stay the bare accumulator addition: any shared float detour would
     perturb schedules pinned by conformance fingerprints. *)
  let tick_quota now =
    match shape with
    | Steady -> per_tick
    | Flash_crowd { at_s; factor; len_s } ->
        let now_s = Time_ns.to_sec_f now in
        if now_s >= at_s && now_s < at_s +. len_s then per_tick *. factor else per_tick
    | Hot_bucket _ -> per_tick
    | Ramp { peak_factor } ->
        let progress = Time_ns.to_sec_f now /. Float.max 1e-9 (Time_ns.to_sec_f until) in
        per_tick *. (peak_factor *. progress)
  in
  let outstanding : (Proto.Request.t * int ref) Queue.t = Queue.create () in
  (* Client watermark gate (§3.7): a real client cannot submit timestamp
     [ts] before [ts - window] reached a terminal state — the reply quorum
     for it is what advances the client's window.  Modeled clients must
     honour the same bound or overload runs outrun the window: a shed
     request's retransmission can then be ordered in a lagging segment
     *after* (in sequence-number order) requests a full window above it,
     which the conformance checker rightly flags.  Gating is the source
     backpressure a real deployment gets for free.  Only meaningful when
     delivery tracking is on (resubmit runs); elsewhere clients never get
     near the window inside a test budget. *)
  let window = config.Core.Config.client_watermark_window in
  let window_open c =
    let ts = next_ts.(c) in
    ts < window
    || (not resubmit)
    || Cluster.request_terminal cluster ~client:(client_base + c) ~ts:(ts - window)
  in
  let pick_open_client () =
    let rec go tries =
      if tries > num_clients then None
      else
        let c = pick_client () in
        if window_open c then Some c else go (tries + 1)
    in
    go 0
  in
  let submit_one ~ref_node ~at offset =
    match ref_node with
    | None -> ()
    | Some ref_node -> (
      match pick_open_client () with
      | None -> ()
      | Some c ->
        let client = client_base + c in
        let ts = next_ts.(c) in
        next_ts.(c) <- ts + 1;
        if hot then enroll c;
        let submitted_at = Time_ns.add at offset in
        let r =
          Proto.Request.make ~client ~ts ~payload_size:config.Core.Config.request_payload
            ~sig_data:
              (if config.Core.Config.client_signatures then Proto.Request.Presumed true
               else Proto.Request.Unsigned)
            ~submitted_at ()
        in
        Cluster.note_submitted cluster r;
        (* Submit = the client handing the request to its NIC: the origin of
           every lifecycle trace.  Node -1 marks the client side. *)
        (match Cluster.tracer cluster with
        | None -> ()
        | Some tr ->
            Obs.Tracer.record tr
              ~req:(Proto.Request.id_key r.Proto.Request.id)
              ~node:(-1) ~at:submitted_at Obs.Tracer.Submit);
        if resubmit then Queue.push (r, ref 0) outstanding;
        let bucket = Proto.Request.bucket_of_id ~num_buckets r.Proto.Request.id in
        let epoch = Core.Node.current_epoch ref_node in
        let current = Core.Node.bucket_leader ref_node ~bucket in
        let next1 = Core.Node.projected_bucket_leader ~config ~epoch:(epoch + 1) ~bucket in
        let next2 = Core.Node.projected_bucket_leader ~config ~epoch:(epoch + 2) ~bucket in
        let client_dc = Cluster.client_datacenter cluster ~client in
        List.iter
          (fun dst ->
            if not (Core.Node.is_halted nodes.(dst)) then begin
              let node_dc = placement.(dst) in
              let prop = Sim.Topology.latency client_dc node_dc in
              let queue =
                Sim.Network.charge net ~endpoint:dst ~dir:`Rx ~peer:Sim.Network.Client
                  ~bytes:(Proto.Request.wire_size r + 80)
              in
              ignore
                (Engine.schedule_at engine
                   ~at:(Time_ns.add submitted_at (prop + queue))
                   (fun () -> Core.Node.submit nodes.(dst) r))
            end)
          (List.sort_uniq compare [ current; next1; next2 ]))
  in
  let deliver_to ~dst (r : Proto.Request.t) =
    if not (Core.Node.is_halted nodes.(dst)) then begin
      let client_dc = Cluster.client_datacenter cluster ~client:r.id.Proto.Request.client in
      let prop = Sim.Topology.latency client_dc placement.(dst) in
      let queue =
        Sim.Network.charge net ~endpoint:dst ~dir:`Rx ~peer:Sim.Network.Client
          ~bytes:(Proto.Request.wire_size r + 80)
      in
      ignore
        (Engine.schedule engine ~delay:(prop + queue) (fun () ->
             (* Re-check on arrival: a resubmitted request may have been
                delivered while this copy was in flight.  In relaxed mode
                the node skips its own duplicate filtering, so this check
                is what keeps resubmission from re-ordering delivered
                requests. *)
             if not (resubmit && Cluster.request_delivered cluster r) then
               Core.Node.submit nodes.(dst) r))
    end
  in
  let rec sweeper () =
    if resubmit && Engine.now engine <= sweep_until then begin
      (match reference_node cluster with
      | Some ref_node ->
          let pending = Queue.length outstanding in
          for _ = 1 to pending do
            match Queue.take_opt outstanding with
            | None -> ()
            | Some ((r, resends) as entry) ->
                if not (Cluster.request_delivered cluster r) then begin
                  (* Only requests that have clearly stalled are re-sent
                     (the paper's clients resubmit at epoch transitions;
                     5 s approximates an epoch under load). *)
                  if Time_ns.diff (Engine.now engine) r.Proto.Request.submitted_at
                     > Time_ns.sec 5
                  then begin
                    match retry_budget with
                    | Some budget when !resends >= budget ->
                        (* Retry budget spent: the client abandons the
                           request instead of chasing it forever. *)
                        Cluster.note_gave_up cluster r
                    | Some _ | None ->
                        incr resends;
                        let bucket =
                          Proto.Request.bucket_of_id ~num_buckets r.Proto.Request.id
                        in
                        deliver_to ~dst:(Core.Node.bucket_leader ref_node ~bucket) r;
                        Queue.push entry outstanding
                  end
                  else Queue.push entry outstanding
                end
          done
      | None -> ());
      ignore (Engine.schedule engine ~delay:(Time_ns.sec 2) (fun () -> sweeper ()))
    end
  in
  if resubmit then begin
    Cluster.enable_delivery_tracking cluster;
    ignore (Engine.schedule engine ~delay:(Time_ns.sec 2) (fun () -> sweeper ()))
  end;
  let rec tick_loop () =
    let now = Engine.now engine in
    if now <= until then begin
      acc := !acc +. tick_quota now;
      let k = int_of_float !acc in
      acc := !acc -. float_of_int k;
      let ref_node = if k > 0 then reference_node cluster else None in
      for j = 0 to k - 1 do
        (* Spread arrivals uniformly within the tick. *)
        let offset = j * tick / max 1 k in
        submit_one ~ref_node ~at:now offset
      done;
      ignore (Engine.schedule engine ~delay:tick (fun () -> tick_loop ()))
    end
  in
  tick_loop ()
