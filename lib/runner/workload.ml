module Time_ns = Sim.Time_ns
module Engine = Sim.Engine

let tick = Time_ns.ms 10

(* Find a live node whose epoch is furthest along — the reference for the
   current bucket-to-leader assignment (a real client learns it from a
   quorum of Bucket_update messages; the furthest node's view is what the
   quorum converges to). *)
let reference_node (cluster : Cluster.t) =
  let nodes = Cluster.nodes cluster in
  let best = ref None in
  Array.iter
    (fun node ->
      if not (Core.Node.is_halted node) then
        match !best with
        | Some b when Core.Node.current_epoch b >= Core.Node.current_epoch node -> ()
        | Some _ | None -> best := Some node)
    nodes;
  !best

let start ~cluster ~rate ?(num_clients = 2048) ?(resubmit = false) ?sweep_until ~until () =
  assert (rate > 0.0);
  (* Submission stops at [until]; the resubmission sweeper may need to keep
     chasing stalled requests through a post-fault grace period. *)
  let sweep_until = match sweep_until with Some t -> max t until | None -> until in
  let engine = Cluster.engine cluster in
  let net = Cluster.network cluster in
  let config = Cluster.config cluster in
  let nodes = Cluster.nodes cluster in
  let num_buckets = Core.Config.num_buckets config in
  let placement = Sim.Topology.assign_uniform ~n:(Array.length nodes) in
  let next_ts = Array.make num_clients 0 in
  let client_base = 100_000 in
  let acc = ref 0.0 in
  let rr = ref 0 in
  let per_tick = rate *. Time_ns.to_sec_f tick in
  let outstanding : Proto.Request.t Queue.t = Queue.create () in
  let submit_one ~ref_node ~at offset =
    match ref_node with
    | None -> ()
    | Some ref_node ->
        let c = !rr mod num_clients in
        rr := !rr + 1;
        let client = client_base + c in
        let ts = next_ts.(c) in
        next_ts.(c) <- ts + 1;
        let submitted_at = Time_ns.add at offset in
        let r =
          Proto.Request.make ~client ~ts ~payload_size:config.Core.Config.request_payload
            ~sig_data:
              (if config.Core.Config.client_signatures then Proto.Request.Presumed true
               else Proto.Request.Unsigned)
            ~submitted_at ()
        in
        Cluster.note_submitted cluster r;
        (* Submit = the client handing the request to its NIC: the origin of
           every lifecycle trace.  Node -1 marks the client side. *)
        (match Cluster.tracer cluster with
        | None -> ()
        | Some tr ->
            Obs.Tracer.record tr
              ~req:(Proto.Request.id_key r.Proto.Request.id)
              ~node:(-1) ~at:submitted_at Obs.Tracer.Submit);
        if resubmit then Queue.push r outstanding;
        let bucket = Proto.Request.bucket_of_id ~num_buckets r.Proto.Request.id in
        let epoch = Core.Node.current_epoch ref_node in
        let current = Core.Node.bucket_leader ref_node ~bucket in
        let next1 = Core.Node.projected_bucket_leader ~config ~epoch:(epoch + 1) ~bucket in
        let next2 = Core.Node.projected_bucket_leader ~config ~epoch:(epoch + 2) ~bucket in
        let client_dc = Cluster.client_datacenter cluster ~client in
        List.iter
          (fun dst ->
            if not (Core.Node.is_halted nodes.(dst)) then begin
              let node_dc = placement.(dst) in
              let prop = Sim.Topology.latency client_dc node_dc in
              let queue =
                Sim.Network.charge net ~endpoint:dst ~dir:`Rx ~peer:Sim.Network.Client
                  ~bytes:(Proto.Request.wire_size r + 80)
              in
              ignore
                (Engine.schedule_at engine
                   ~at:(Time_ns.add submitted_at (prop + queue))
                   (fun () -> Core.Node.submit nodes.(dst) r))
            end)
          (List.sort_uniq compare [ current; next1; next2 ])
  in
  let deliver_to ~dst (r : Proto.Request.t) =
    if not (Core.Node.is_halted nodes.(dst)) then begin
      let client_dc = Cluster.client_datacenter cluster ~client:r.id.Proto.Request.client in
      let prop = Sim.Topology.latency client_dc placement.(dst) in
      let queue =
        Sim.Network.charge net ~endpoint:dst ~dir:`Rx ~peer:Sim.Network.Client
          ~bytes:(Proto.Request.wire_size r + 80)
      in
      ignore
        (Engine.schedule engine ~delay:(prop + queue) (fun () ->
             (* Re-check on arrival: a resubmitted request may have been
                delivered while this copy was in flight.  In relaxed mode
                the node skips its own duplicate filtering, so this check
                is what keeps resubmission from re-ordering delivered
                requests. *)
             if not (resubmit && Cluster.request_delivered cluster r) then
               Core.Node.submit nodes.(dst) r))
    end
  in
  let rec sweeper () =
    if resubmit && Engine.now engine <= sweep_until then begin
      (match reference_node cluster with
      | Some ref_node ->
          let budget = Queue.length outstanding in
          for _ = 1 to budget do
            match Queue.take_opt outstanding with
            | None -> ()
            | Some r ->
                if not (Cluster.request_delivered cluster r) then begin
                  (* Only requests that have clearly stalled are re-sent
                     (the paper's clients resubmit at epoch transitions;
                     5 s approximates an epoch under load). *)
                  if Time_ns.diff (Engine.now engine) r.Proto.Request.submitted_at
                     > Time_ns.sec 5
                  then begin
                    let bucket =
                      Proto.Request.bucket_of_id ~num_buckets r.Proto.Request.id
                    in
                    deliver_to ~dst:(Core.Node.bucket_leader ref_node ~bucket) r
                  end;
                  Queue.push r outstanding
                end
          done
      | None -> ());
      ignore (Engine.schedule engine ~delay:(Time_ns.sec 2) (fun () -> sweeper ()))
    end
  in
  if resubmit then begin
    Cluster.enable_delivery_tracking cluster;
    ignore (Engine.schedule engine ~delay:(Time_ns.sec 2) (fun () -> sweeper ()))
  end;
  let rec tick_loop () =
    let now = Engine.now engine in
    if now <= until then begin
      acc := !acc +. per_tick;
      let k = int_of_float !acc in
      acc := !acc -. float_of_int k;
      let ref_node = if k > 0 then reference_node cluster else None in
      for j = 0 to k - 1 do
        (* Spread arrivals uniformly within the tick. *)
        let offset = j * tick / max 1 k in
        submit_one ~ref_node ~at:now offset
      done;
      ignore (Engine.schedule engine ~delay:tick (fun () -> tick_loop ()))
    end
  in
  tick_loop ()
