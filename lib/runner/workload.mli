(** Modeled client workload.

    The paper drives ISS with 256 closed-loop clients spread over all
    datacenters.  Simulating every client message at 10⁵ req/s would melt
    the event queue without changing the result, so the workload generator
    models the client side:

    - requests arrive open-loop at a configurable aggregate rate, attributed
      to a pool of virtual clients (consecutive timestamps each, spread over
      the 16 datacenters);
    - leader detection (§4.3) is modeled exactly: each request goes to the
      node currently leading its bucket plus the projected owners in the
      next two epochs;
    - the client→node propagation latency {e and} the target node's public
      NIC bandwidth are charged for every copy.

    Reply traffic is charged by {!Cluster}'s delivery hook. *)

type shape =
  | Steady  (** constant offered load (the default; exact legacy behaviour) *)
  | Flash_crowd of { at_s : float; factor : float; len_s : float }
      (** offered load steps to [factor]× during
          [\[at_s, at_s + len_s)] — the flash-crowd overload shape *)
  | Hot_bucket of { skew : float }
      (** steady aggregate rate, but each request targets the bucket drawn
          from a Zipf([skew]) distribution over buckets (rank 1 = bucket 0),
          concentrating load on a few bucket queues *)
  | Ramp of { peak_factor : float }
      (** offered load grows linearly from 0 to [peak_factor]× the nominal
          rate at [until] — locates the saturation point within one run *)

val shape_name : shape -> string

val start :
  cluster:Cluster.t ->
  rate:float ->
  ?num_clients:int ->
  ?resubmit:bool ->
  ?shape:shape ->
  ?retry_budget:int ->
  ?shape_seed:int64 ->
  ?sweep_until:Sim.Time_ns.t ->
  until:Sim.Time_ns.t ->
  unit ->
  unit
(** Generate [rate] requests/s until the given simulated time.
    [num_clients] defaults to 2048 — enough that per-client watermark
    windows never throttle the aggregate rate.

    [resubmit] (default false) models §4.3's client resubmission: a sweeper
    re-sends every not-yet-delivered request to the {e current} owner of
    its bucket every two seconds.  Required for fault experiments, where a
    request's original target may have crashed or lost the bucket.
    [sweep_until] (default [until]) lets the sweeper outlive the submission
    window — chaos runs extend it past the last fault's heal time so
    stragglers submitted just before a crash still get re-driven.

    [shape] (default [Steady]) modulates the offered load for overload
    experiments; [shape_seed] (default 1) seeds the shape's private RNG
    (only [Hot_bucket] draws from it).  [Steady] runs are bit-identical to
    builds without the shape machinery.

    [retry_budget] (default unlimited) bounds the sweeper's re-sends per
    request: once a stalled request has been re-driven that many times, the
    modeled client abandons it via {!Cluster.note_gave_up} — the explicit
    give-up terminal state the overload invariants accept. *)
