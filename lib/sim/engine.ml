module Q = Event_queue

type timer_id = Q.event

type t = {
  queue : Q.t;
  mutable clock : Time_ns.t;
  mutable executed : int;
}

let create () = { queue = Q.create (); clock = Time_ns.zero; executed = 0 }
let now t = t.clock

let schedule_at t ~at action =
  let at = if at < t.clock then t.clock else at in
  Q.add t.queue ~time:at action

let schedule t ~delay action =
  let delay = if delay < 0 then 0 else delay in
  schedule_at t ~at:(Time_ns.add t.clock delay) action

let post_at t ~at action =
  let at = if at < t.clock then t.clock else at in
  Q.add_anon t.queue ~time:at action

let post t ~delay action =
  let delay = if delay < 0 then 0 else delay in
  post_at t ~at:(Time_ns.add t.clock delay) action

let cancel t ev = Q.cancel t.queue ev
let pending t = Q.live t.queue

let step t =
  let ev = Q.pop t.queue in
  if ev == Q.nil then false
  else begin
    (* The guard matters after a [run ~until] parked the clock past the
       last executed event: a same-instant event scheduled right at the
       limit must not move time backwards. *)
    if ev.Q.time > t.clock then t.clock <- ev.Q.time;
    let action = ev.Q.action in
    Q.release t.queue ev;
    t.executed <- t.executed + 1;
    action ();
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        let ev = Q.peek t.queue in
        if ev != Q.nil && ev.Q.time <= limit then ignore (step t)
        else begin
          (* Clamp, don't assign: a later [run ~until] with an *earlier*
             limit must never rewind the clock below where a previous run
             already advanced it. *)
          if limit > t.clock then t.clock <- limit;
          continue := false
        end
      done

let events_executed t = t.executed
