(** Deterministic discrete-event simulation engine.

    One engine owns the virtual clock and the event queue.  All simulated
    activity — message deliveries, protocol timers, workload arrivals — is an
    event: a closure scheduled at a virtual time.  Events at equal times fire
    in insertion order, so a run is a pure function of the seed and the
    initial schedule.

    Storage is a hierarchical timing wheel with a binary-heap overflow
    ({!Event_queue}, DESIGN.md §11); extraction order is identical to the
    old all-heap engine — strict [(time, insertion seq)]. *)

type t

type timer_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t

val now : t -> Time_ns.t
(** Current virtual time. *)

val schedule : t -> delay:Time_ns.span -> (unit -> unit) -> timer_id
(** [schedule t ~delay f] runs [f] at [now t + delay].  A non-positive delay
    schedules for the current instant (after currently-queued same-time
    events).  Returns a handle usable with {!cancel}. *)

val schedule_at : t -> at:Time_ns.t -> (unit -> unit) -> timer_id
(** Absolute-time variant.  Times in the past are clamped to [now]. *)

val post : t -> delay:Time_ns.span -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule}: no cancellation handle escapes, which lets
    the engine recycle the event record after it fires.  The hot path for
    high-volume schedulers (the network's two events per message). *)

val post_at : t -> at:Time_ns.t -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule_at}. *)

val cancel : t -> timer_id -> unit
(** Lazy cancellation: marks the event (its closure is released
    immediately) and the queue skips it later; tombstones are purged in
    bulk when they outnumber live events.  Cancelling an already-fired or
    already-cancelled timer is a no-op. *)

val pending : t -> int
(** Number of live events still queued.  Cancelled-but-unpurged tombstones
    are {e not} counted (they used to be, which over-reported queue depth
    under fault-injection runs that cancel many timers). *)

val run : ?until:Time_ns.t -> t -> unit
(** Drains the event queue.  With [~until], stops once the next event would
    fire strictly after [until] and advances the clock to [until]; the
    clock never moves backwards, so a subsequent [run] with an earlier
    limit is a no-op rather than a time warp.  Without [~until], runs until
    the queue is empty. *)

val step : t -> bool
(** Executes the single next live event.  Returns [false] when no live
    events remain.  Cancelled events are skipped silently: they neither
    count as a step nor advance the clock. *)

val events_executed : t -> int
(** Total events executed so far (cancelled events excluded); useful for
    reporting simulation effort. *)
