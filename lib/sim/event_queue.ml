(* Two-level hierarchical timing wheel + overflow heap.  See the .mli and
   DESIGN.md §11 for the architecture; the invariants that make the window
   arithmetic safe are spelled out inline below.

   Global order is strict (time, seq).  The structure never reorders live
   events relative to that order:

   - the ready heap holds exactly the events with time < ready_end;
   - level 0 holds events whose level-0 slot lies in [next0, win0_end),
     where the window is one aligned 1024-slot block (one level-1 slot), so
     array index = slot land 1023 is collision-free;
   - level 1 holds events whose level-1 slot lies in [next1, next1 + 1024)
     (a circular window, also collision-free);
   - the overflow heap holds the rest.

   Every boundary (ready_end, win0_end, next1) only moves forward, and
   events are only ever moved downward (overflow -> level 1 -> level 0 ->
   ready), so an event can never be scheduled behind the consumption
   frontier. *)

let slot_bits = 10
let n_slots = 1 lsl slot_bits (* 1024 slots per level *)
let slot_mask = n_slots - 1
let l0_bits = 12 (* level-0 slot width: 2^12 ns = 4.1 us *)
let l1_bits = l0_bits + slot_bits (* level-1 slot width: 2^22 ns = 4.2 ms *)

let flag_cancelled = 1
let flag_fired = 2
let flag_anon = 4

let noop () = ()

type event = {
  mutable time : int;
  mutable seq : int;
  mutable flags : int;
  mutable action : unit -> unit;
  mutable next : event;
}

let rec nil = { time = max_int; seq = -1; flags = 0; action = noop; next = nil }

(* ------------------------------------------------------------------ *)
(* Internal monomorphic event min-heap (ready set + overflow).  Vacated
   slots are overwritten with [nil] so popped events are collectable. *)

module Eheap = struct
  type h = { mutable data : event array; mutable n : int }

  let create () = { data = [||]; n = 0 }

  (* The one comparison of the whole engine: two int compares, no
     polymorphic [compare], no closure indirection. *)
  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h ev =
    let cap = Array.length h.data in
    if h.n = cap then begin
      let ndata = Array.make (if cap = 0 then 256 else cap * 2) nil in
      Array.blit h.data 0 ndata 0 h.n;
      h.data <- ndata
    end;
    let data = h.data in
    (* sift up *)
    let i = ref h.n in
    h.n <- h.n + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less ev data.(parent) then begin
        data.(!i) <- data.(parent);
        i := parent
      end
      else continue := false
    done;
    data.(!i) <- ev

  let sift_down h i =
    let data = h.data and n = h.n in
    let ev = data.(i) in
    let i = ref i in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c = if r < n && less data.(r) data.(l) then r else l in
        if less data.(c) ev then begin
          data.(!i) <- data.(c);
          i := c
        end
        else continue := false
      end
    done;
    data.(!i) <- ev

  let pop h =
    let top = h.data.(0) in
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.data.(0) <- h.data.(h.n);
      sift_down h 0
    end;
    h.data.(h.n) <- nil;
    top

  (* Rebuild after a purge filtered the backing array in place. *)
  let heapify h =
    for i = (h.n / 2) - 1 downto 0 do
      sift_down h i
    done
end

(* ------------------------------------------------------------------ *)

type t = {
  mutable seq : int;
  ready : Eheap.h; (* events with time < ready_end *)
  mutable ready_end : int; (* = next0 lsl l0_bits *)
  slots0 : event array; (* heads of intrusive lists, [nil] = empty *)
  occ0 : int array; (* 32 words x 32 occupancy bits *)
  mutable count0 : int; (* events stored in level 0 (incl. tombstones) *)
  mutable next0 : int; (* absolute level-0 slot: next to consume *)
  mutable win0_end : int; (* absolute level-0 slot, exclusive: = next1 lsl slot_bits *)
  slots1 : event array;
  occ1 : int array;
  mutable count1 : int;
  mutable next1 : int; (* absolute level-1 slot: start of the level-1 window *)
  far : Eheap.h; (* overflow: beyond the level-1 window at insert time *)
  mutable live : int;
  mutable tombs : int; (* cancelled but still stored *)
  mutable free : event; (* freelist of fired anonymous records *)
  mutable free_n : int;
}

let max_free = 4096

let create () =
  {
    seq = 0;
    ready = Eheap.create ();
    ready_end = 0;
    slots0 = Array.make n_slots nil;
    occ0 = Array.make (n_slots / 32) 0;
    count0 = 0;
    next0 = 0;
    win0_end = n_slots;
    slots1 = Array.make n_slots nil;
    occ1 = Array.make (n_slots / 32) 0;
    count1 = 0;
    next1 = 1;
    far = Eheap.create ();
    live = 0;
    tombs = 0;
    free = nil;
    free_n = 0;
  }

let live t = t.live

(* ------------------------------------------------------------------ *)
(* Occupancy bitmaps: find the first set bit at index >= [from] (32-bit
   words, so plain ints hold them).  Returns -1 when none. *)

let ctz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let find_bit occ from =
  if from >= n_slots then -1
  else begin
    let w = ref (from lsr 5) in
    let masked = occ.(!w) land ((-1) lsl (from land 31)) in
    if masked <> 0 then (!w lsl 5) + ctz masked
    else begin
      incr w;
      let res = ref (-1) in
      let nwords = n_slots / 32 in
      while !res < 0 && !w < nwords do
        if occ.(!w) <> 0 then res := (!w lsl 5) + ctz occ.(!w);
        incr w
      done;
      !res
    end
  end

let set_bit occ i = occ.(i lsr 5) <- occ.(i lsr 5) lor (1 lsl (i land 31))
let clear_bit occ i = occ.(i lsr 5) <- occ.(i lsr 5) land lnot (1 lsl (i land 31))

(* ------------------------------------------------------------------ *)
(* Placement.  Precondition: ev.time >= the consumption frontier (the
   engine clamps schedule times to the clock, and internal re-placement
   only moves events downward). *)

let place t ev =
  let at = ev.time in
  if at < t.ready_end then Eheap.push t.ready ev
  else begin
    let s0 = at lsr l0_bits in
    if s0 < t.win0_end then begin
      let i = s0 land slot_mask in
      ev.next <- t.slots0.(i);
      t.slots0.(i) <- ev;
      set_bit t.occ0 i;
      t.count0 <- t.count0 + 1
    end
    else begin
      let s1 = at lsr l1_bits in
      if s1 - t.next1 < n_slots then begin
        let i = s1 land slot_mask in
        ev.next <- t.slots1.(i);
        t.slots1.(i) <- ev;
        set_bit t.occ1 i;
        t.count1 <- t.count1 + 1
      end
      else Eheap.push t.far ev
    end
  end

let alloc t ~time ~flags action =
  let seq = t.seq in
  t.seq <- seq + 1;
  if t.free != nil then begin
    let ev = t.free in
    t.free <- ev.next;
    t.free_n <- t.free_n - 1;
    ev.time <- time;
    ev.seq <- seq;
    ev.flags <- flags;
    ev.action <- action;
    ev.next <- nil;
    ev
  end
  else { time; seq; flags; action; next = nil }

let add t ~time action =
  let ev = alloc t ~time ~flags:0 action in
  t.live <- t.live + 1;
  place t ev;
  ev

let add_anon t ~time action =
  let ev = alloc t ~time ~flags:flag_anon action in
  t.live <- t.live + 1;
  place t ev

let release t ev =
  ev.action <- noop;
  if ev.flags land flag_anon <> 0 && t.free_n < max_free then begin
    ev.next <- t.free;
    t.free <- ev;
    t.free_n <- t.free_n + 1
  end

(* A tombstone encountered on a move/pop path: drop it for good. *)
let drop_tomb t ev =
  t.tombs <- t.tombs - 1;
  ev.action <- noop;
  ev.next <- nil

(* ------------------------------------------------------------------ *)
(* Advancing the frontier *)

(* Open level-1 slot [s]: make it the level-0 window and distribute its
   pending list (and any due overflow) downward. *)
let cascade t =
  let s_slot =
    if t.count1 > 0 then begin
      let i1 = t.next1 land slot_mask in
      let i = find_bit t.occ1 i1 in
      if i >= 0 then t.next1 + (i - i1)
      else begin
        (* circular window: wrapped part holds the larger absolute slots *)
        let i = find_bit t.occ1 0 in
        t.next1 + (n_slots - i1) + i
      end
    end
    else max_int
  in
  let s_far =
    if t.far.Eheap.n > 0 then begin
      let s = t.far.Eheap.data.(0).time lsr l1_bits in
      if s > t.next1 then s else t.next1
    end
    else max_int
  in
  let s = if s_slot <= s_far then s_slot else s_far in
  t.next1 <- s;
  t.next0 <- s lsl slot_bits;
  t.win0_end <- (s + 1) lsl slot_bits;
  t.ready_end <- t.next0 lsl l0_bits;
  (* Pull overflow events that fall inside the new level-1 window down
     into the wheel (their slot-s prefix lands directly in level 0). *)
  let win1_end = s + n_slots in
  while t.far.Eheap.n > 0 && t.far.Eheap.data.(0).time lsr l1_bits < win1_end do
    place t (Eheap.pop t.far)
  done;
  (if s = s_slot then begin
     let i = s land slot_mask in
     let ev = ref t.slots1.(i) in
     t.slots1.(i) <- nil;
     clear_bit t.occ1 i;
     while !ev != nil do
       let e = !ev in
       ev := e.next;
       t.count1 <- t.count1 - 1;
       if e.flags land flag_cancelled <> 0 then drop_tomb t e
       else begin
         e.next <- nil;
         place t e
       end
     done
   end);
  t.next1 <- s + 1

(* Move the next batch of events into the ready heap.  Returns false when
   the queue holds nothing at all (not even tombstones). *)
let advance t =
  if t.count0 > 0 then begin
    let i0 = t.next0 land slot_mask in
    (* count0 > 0 and all level-0 events live in [next0, win0_end), whose
       indices are >= i0 within the aligned block — the scan cannot miss. *)
    let i = find_bit t.occ0 i0 in
    let abs = t.next0 - i0 + i in
    let ev = ref t.slots0.(i) in
    t.slots0.(i) <- nil;
    clear_bit t.occ0 i;
    while !ev != nil do
      let e = !ev in
      ev := e.next;
      t.count0 <- t.count0 - 1;
      if e.flags land flag_cancelled <> 0 then drop_tomb t e
      else begin
        e.next <- nil;
        Eheap.push t.ready e
      end
    done;
    t.next0 <- abs + 1;
    t.ready_end <- t.next0 lsl l0_bits;
    true
  end
  else if t.count1 > 0 || t.far.Eheap.n > 0 then begin
    cascade t;
    true
  end
  else false

let rec peek t =
  if t.ready.Eheap.n > 0 then begin
    let top = t.ready.Eheap.data.(0) in
    if top.flags land flag_cancelled <> 0 then begin
      ignore (Eheap.pop t.ready);
      drop_tomb t top;
      peek t
    end
    else top
  end
  else if advance t then peek t
  else nil

let pop t =
  let ev = peek t in
  if ev != nil then begin
    ignore (Eheap.pop t.ready);
    ev.flags <- ev.flags lor flag_fired;
    t.live <- t.live - 1
  end;
  ev

(* ------------------------------------------------------------------ *)
(* Lazy cancellation with bounded tombstone load *)

let purge_heap t (h : Eheap.h) =
  let kept = ref 0 in
  for i = 0 to h.Eheap.n - 1 do
    let ev = h.Eheap.data.(i) in
    if ev.flags land flag_cancelled <> 0 then drop_tomb t ev
    else begin
      h.Eheap.data.(!kept) <- ev;
      incr kept
    end
  done;
  for i = !kept to h.Eheap.n - 1 do
    h.Eheap.data.(i) <- nil
  done;
  h.Eheap.n <- !kept;
  Eheap.heapify h

let purge_level t slots occ sub =
  for i = 0 to n_slots - 1 do
    if slots.(i) != nil then begin
      (* Unlink cancelled events in place; preserve list structure for the
         survivors (order within a slot is irrelevant — the ready heap
         re-orders by (time, seq)). *)
      let rec keep ev =
        if ev == nil then nil
        else if ev.flags land flag_cancelled <> 0 then begin
          let rest = ev.next in
          sub t;
          drop_tomb t ev;
          keep rest
        end
        else begin
          ev.next <- keep ev.next;
          ev
        end
      in
      slots.(i) <- keep slots.(i);
      if slots.(i) == nil then clear_bit occ i
    end
  done

let purge t =
  purge_heap t t.ready;
  purge_heap t t.far;
  purge_level t t.slots0 t.occ0 (fun t -> t.count0 <- t.count0 - 1);
  purge_level t t.slots1 t.occ1 (fun t -> t.count1 <- t.count1 - 1)

let cancel t ev =
  if ev != nil && ev.flags land (flag_cancelled lor flag_fired) = 0 then begin
    ev.flags <- ev.flags lor flag_cancelled;
    ev.action <- noop;
    (* the closure is dead now even though the record lingers *)
    t.live <- t.live - 1;
    t.tombs <- t.tombs + 1;
    if t.tombs > 64 && t.tombs >= 2 * t.live then purge t
  end
