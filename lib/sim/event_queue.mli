(** The simulation engine's event store: a two-level hierarchical timing
    wheel with a binary-heap overflow, replacing the old single binary heap.

    Profile shape (see DESIGN.md §11): simulator load is timer-dominated and
    near-future — network deliveries microseconds-to-milliseconds out,
    protocol timers milliseconds-to-seconds out — with a long tail of
    far-future events (liveness sweeps, epoch timeouts).  The wheel gives
    O(1) insert/extract for everything inside its ~4 s horizon; the
    overflow heap keeps correctness for the tail.

    - level 0: 1024 slots of 2^12 ns (4.1 µs) — one level-1 slot, 4.2 ms;
    - level 1: 1024 slots of 2^22 ns (4.2 ms) — horizon 2^32 ns ≈ 4.3 s;
    - overflow: binary min-heap, drained into the wheel as the level-1
      window advances over it.

    Ordering is strict (time, insertion seq) — identical to the old heap:
    equal-time events fire in insertion order, so a rebuilt engine replays
    bit-identical schedules (asserted by the conformance fingerprints).
    Comparisons are monomorphic int compares; no polymorphic [compare]
    anywhere on the hot path.

    Cancellation is lazy: {!cancel} marks the event and counts it as a
    tombstone; tombstones are skipped (and their closures released) when
    encountered, and a full purge sweep runs when tombstones outnumber live
    events, so mass-cancellation workloads neither inflate {!live} nor
    retain dead closures indefinitely. *)

type event = private {
  mutable time : int;  (** firing time, ns (= [Time_ns.t]) *)
  mutable seq : int;  (** insertion sequence: FIFO tie-break at equal time *)
  mutable flags : int;
  mutable action : unit -> unit;
  mutable next : event;  (** intrusive slot/freelist link *)
}
(** Fields are exposed read-only for the engine's hot path; all mutation
    goes through this interface. *)

type t

val nil : event
(** Sentinel returned by {!peek}/{!pop} on an empty queue (physical
    equality: [ev == nil]).  Never stored. *)

val create : unit -> t

val add : t -> time:int -> (unit -> unit) -> event
(** Insert an event; the result is a handle usable with {!cancel}. *)

val add_anon : t -> time:int -> (unit -> unit) -> unit
(** Fire-and-forget insert: no handle escapes, so the event record is
    recycled through an internal freelist after it fires ({!release}) —
    the allocation-free path for the network's per-message events. *)

val cancel : t -> event -> unit
(** Lazily cancel.  No-op on already-fired or already-cancelled events. *)

val live : t -> int
(** Number of pending events, excluding cancelled tombstones. *)

val peek : t -> event
(** Earliest live event without removing it ([nil] when empty).  Skips and
    releases any cancelled events in front of it. *)

val pop : t -> event
(** Remove and return the earliest live event ([nil] when empty), marking
    it fired.  The caller must read [action] and then call {!release}. *)

val release : t -> event -> unit
(** Drop a popped event's closure (so the GC can reclaim whatever it
    captured) and recycle the record if it was anonymous. *)
