type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Overwrite a vacated slot so the heap stops retaining the element.  The
   backing array is generic, so there is no ['a] filler value to hand;
   an immediate smuggled in through [Obj] is GC-safe in a boxed array.
   Flat float arrays ([double_array_tag]) hold no pointers — nothing to
   release, and poking an immediate into one would corrupt it — so they
   are left alone. *)
let clear_slot (data : 'a array) i =
  let r = Obj.repr data in
  if Obj.tag r <> Obj.double_array_tag then Obj.set_field r i (Obj.repr 0)

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    (* [Array.make] filled the tail with [x]; drop those extra references
       so the spare capacity doesn't pin [x] after it is popped. *)
    for i = t.size to ncap - 1 do
      clear_slot ndata i
    done;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* The slot past the new end still references the element just moved
       down (or [top] itself when the heap emptied): release it. *)
    clear_slot t.data t.size;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.data.(0)

let clear t =
  (* Dropping the whole array releases every element at once (and the
     capacity — a cleared heap is usually done growing). *)
  t.data <- [||];
  t.size <- 0
