(** Array-backed binary min-heap.

    Elements are ordered by a user-supplied comparison.  (The engine's own
    event queue is the specialized {!Event_queue}; this generic heap serves
    everything else that needs one.)

    Popped and cleared elements are released immediately: the heap never
    retains a reference past its logical size, so it can't keep dead
    elements (and whatever they capture) alive behind the GC's back. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element, or [None] when empty.  The
    vacated storage slot is overwritten — the heap drops its reference. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit
(** Empties the heap, releasing all elements and the backing storage. *)
