type category = Node | Client

type config = {
  bandwidth_bps : float;
  per_message_overhead : int;
  jitter : Time_ns.span;
}

let default_config =
  { bandwidth_bps = 1e9; per_message_overhead = 80; jitter = Time_ns.ms 2 }

type 'a endpoint = {
  category : category;
  datacenter : int;
  handler : src:int -> size:int -> 'a -> unit;
  (* NIC serialization horizons: time at which each NIC direction frees up.
     Nodes have two NICs (index 0 = private node<->node, 1 = public
     client-facing); clients only use index 0. *)
  tx_free : Time_ns.t array;
  rx_free : Time_ns.t array;
  mutable crashed : bool;
  mutable bytes_out : int;
}

type 'a t = {
  engine : Engine.t;
  config : config;
  rng : Rng.t;
  endpoints : (int, 'a endpoint) Hashtbl.t;
  mutable partition : (int -> int) option;
  mutable drop_prob : float;
  mutable link_latency : (int -> int -> Time_ns.span) option;
  mutable n_sent : int;
  mutable total_bytes : int;
}

let create ?(config = default_config) engine ~rng () =
  {
    engine;
    config;
    rng;
    endpoints = Hashtbl.create 64;
    partition = None;
    drop_prob = 0.0;
    link_latency = None;
    n_sent = 0;
    total_bytes = 0;
  }

let add_endpoint t ~id ~category ~datacenter ~handler =
  if Hashtbl.mem t.endpoints id then invalid_arg "Network.add_endpoint: duplicate id";
  Hashtbl.replace t.endpoints id
    {
      category;
      datacenter;
      handler;
      tx_free = [| Time_ns.zero; Time_ns.zero |];
      rx_free = [| Time_ns.zero; Time_ns.zero |];
      crashed = false;
      bytes_out = 0;
    }

let endpoint t id =
  match Hashtbl.find_opt t.endpoints id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Network: unknown endpoint %d" id)

(* Which NIC a node uses depends on who it talks to: private (0) for other
   nodes, public (1) for clients.  Clients have a single NIC. *)
let nic_index ep ~peer_category =
  match (ep.category, peer_category) with
  | Node, Node -> 0
  | Node, Client -> 1
  | Client, _ -> 0

let transmission_time t bytes =
  Time_ns.of_sec_f (float_of_int (bytes * 8) /. t.config.bandwidth_bps)

let partitioned t src dst =
  match t.partition with
  | None -> false
  | Some group -> group src <> group dst

let send t ~src ~dst ~size payload =
  let se = endpoint t src and de = endpoint t dst in
  (* Only a crashed *sender* suppresses the send entirely (a dead process
     emits nothing).  The sender cannot know that the destination is crashed
     or partitioned away: it still serializes the message through its NIC
     and the send still counts; only the delivery is suppressed. *)
  if not se.crashed then begin
    let wire_bytes = size + t.config.per_message_overhead in
    t.n_sent <- t.n_sent + 1;
    t.total_bytes <- t.total_bytes + wire_bytes;
    se.bytes_out <- se.bytes_out + wire_bytes;
    (* Lost in transit: severed path or random drop.  (A crashed receiver is
       handled at arrival time instead — the message may still find the
       endpoint up again if it recovers while the message is in flight.) *)
    let lost =
      partitioned t src dst
      || (t.drop_prob > 0.0 && Rng.float t.rng 1.0 < t.drop_prob)
    in
    (* Even a lost message consumes sender bandwidth. *)
    let now = Engine.now t.engine in
    let tx_nic = nic_index se ~peer_category:de.category in
    let serialize = transmission_time t wire_bytes in
    let depart = Time_ns.add (max now se.tx_free.(tx_nic)) serialize in
    se.tx_free.(tx_nic) <- depart;
    if not lost then begin
      let prop = Topology.latency se.datacenter de.datacenter in
      let jit = if t.config.jitter > 0 then Rng.int t.rng t.config.jitter else 0 in
      let spike = match t.link_latency with Some f -> f src dst | None -> 0 in
      let arrive = Time_ns.add depart (prop + jit + spike) in
      ignore
        (Engine.schedule_at t.engine ~at:arrive (fun () ->
             (* Receiver-side NIC serialization, then delivery.  Re-check
                crash state: the receiver may have crashed in the interim. *)
             if not de.crashed then begin
               let rx_nic = nic_index de ~peer_category:se.category in
               let now = Engine.now t.engine in
               let deliver = Time_ns.add (max now de.rx_free.(rx_nic)) serialize in
               de.rx_free.(rx_nic) <- deliver;
               ignore
                 (Engine.schedule_at t.engine ~at:deliver (fun () ->
                      if not de.crashed then de.handler ~src ~size payload))
             end))
    end
  end

let multicast t ~src ~dsts ~size payload =
  List.iter (fun dst -> send t ~src ~dst ~size payload) dsts

let charge t ~endpoint:id ~dir ~peer ~bytes =
  let ep = endpoint t id in
  let nic = nic_index ep ~peer_category:peer in
  let now = Engine.now t.engine in
  let serialize = transmission_time t bytes in
  let horizon = match dir with `Tx -> ep.tx_free | `Rx -> ep.rx_free in
  let free_at = Time_ns.add (max now horizon.(nic)) serialize in
  horizon.(nic) <- free_at;
  if dir = `Tx then ep.bytes_out <- ep.bytes_out + bytes;
  Time_ns.diff free_at now

let nic_backlog t ~endpoint:id ~dir ~peer =
  let ep = endpoint t id in
  let nic = nic_index ep ~peer_category:peer in
  let horizon = (match dir with `Tx -> ep.tx_free | `Rx -> ep.rx_free).(nic) in
  Stdlib.max 0 (Time_ns.diff horizon (Engine.now t.engine))

let crash t id = (endpoint t id).crashed <- true

let recover t id =
  let ep = endpoint t id in
  if ep.crashed then begin
    ep.crashed <- false;
    (* A rebooted host starts with idle NICs: whatever serialization backlog
       the endpoint had accumulated before the crash died with it.  Without
       this reset a node that crashed while its NIC horizon was far in the
       future would come back up unable to send or receive until the stale
       horizon passed. *)
    let now = Engine.now t.engine in
    for nic = 0 to Array.length ep.tx_free - 1 do
      ep.tx_free.(nic) <- now;
      ep.rx_free.(nic) <- now
    done
  end

let is_crashed t id = (endpoint t id).crashed
let set_partition t p = t.partition <- p
let set_drop_probability t p = t.drop_prob <- p
let set_link_latency t f = t.link_latency <- f
let messages_sent t = t.n_sent
let bytes_sent t = t.total_bytes
let endpoint_bytes_sent t id = (endpoint t id).bytes_out
