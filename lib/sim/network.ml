type category = Node | Client

type config = {
  bandwidth_bps : float;
  per_message_overhead : int;
  jitter : Time_ns.span;
}

let default_config =
  { bandwidth_bps = 1e9; per_message_overhead = 80; jitter = Time_ns.ms 2 }

type 'a endpoint = {
  category : category;
  datacenter : int;
  handler : src:int -> size:int -> 'a -> unit;
  (* NIC serialization horizons: time at which each NIC direction frees up.
     Nodes have two NICs (index 0 = private node<->node, 1 = public
     client-facing); clients only use index 0. *)
  tx_free : Time_ns.t array;
  rx_free : Time_ns.t array;
  mutable crashed : bool;
  mutable bytes_out : int;
}

(* A message in flight, flattened into one mutable record instead of two
   nested closures.  The same record (and its single [k] closure) carries the
   message through both hops — arrival at the receiver NIC, then delivery —
   and is recycled through a freelist afterwards, so the steady-state send
   path allocates nothing: the engine events are anonymous ([Engine.post_at],
   recycled too) and the envelope is reused. *)
type 'a envelope = {
  mutable dst_ep : 'a endpoint;
  mutable env_src : int;
  mutable env_size : int;
  mutable payload : 'a;
  mutable serialize : Time_ns.span;
  mutable rx_nic : int;
  mutable delivering : bool;  (* false = in flight, true = in receiver NIC *)
  mutable env_next : 'a envelope;  (* intrusive freelist link *)
  mutable k : unit -> unit;  (* advances this envelope; allocated once *)
}

type 'a t = {
  engine : Engine.t;
  config : config;
  rng : Rng.t;
  endpoints : (int, 'a endpoint) Hashtbl.t;
  mutable partition : (int -> int) option;
  mutable drop_prob : float;
  mutable link_latency : (int -> int -> Time_ns.span) option;
  mutable n_sent : int;
  mutable total_bytes : int;
  env_nil : 'a envelope;  (* freelist sentinel, never a real message *)
  mutable env_free : 'a envelope;
  mutable env_free_n : int;
  (* One-entry serialization-time memo: protocol traffic is dominated by a
     handful of repeated sizes (batches, votes), and multicast repeats the
     same size n-1 times back to back, so this removes nearly every
     float division + boxing from the hot path. *)
  mutable tt_bytes : int;
  mutable tt_span : Time_ns.span;
}

let max_free_envelopes = 4096
let noop_handler ~src:_ ~size:_ _ = ()
let noop () = ()

let make_env_nil () =
  let dummy =
    {
      category = Node;
      datacenter = 0;
      handler = noop_handler;
      tx_free = [| Time_ns.zero |];
      rx_free = [| Time_ns.zero |];
      crashed = true;
      bytes_out = 0;
    }
  in
  let rec nil =
    {
      dst_ep = dummy;
      env_src = 0;
      env_size = 0;
      (* The sentinel's payload is never read; an immediate keeps it from
         pinning any real ['a] value. *)
      payload = Obj.magic 0;
      serialize = 0;
      rx_nic = 0;
      delivering = false;
      env_next = nil;
      k = noop;
    }
  in
  nil

let create ?(config = default_config) engine ~rng () =
  let env_nil = make_env_nil () in
  {
    engine;
    config;
    rng;
    endpoints = Hashtbl.create 64;
    partition = None;
    drop_prob = 0.0;
    link_latency = None;
    n_sent = 0;
    total_bytes = 0;
    env_nil;
    env_free = env_nil;
    env_free_n = 0;
    tt_bytes = -1;
    tt_span = 0;
  }

let add_endpoint t ~id ~category ~datacenter ~handler =
  if Hashtbl.mem t.endpoints id then invalid_arg "Network.add_endpoint: duplicate id";
  Hashtbl.replace t.endpoints id
    {
      category;
      datacenter;
      handler;
      tx_free = [| Time_ns.zero; Time_ns.zero |];
      rx_free = [| Time_ns.zero; Time_ns.zero |];
      crashed = false;
      bytes_out = 0;
    }

let endpoint t id =
  match Hashtbl.find_opt t.endpoints id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Network: unknown endpoint %d" id)

(* Which NIC a node uses depends on who it talks to: private (0) for other
   nodes, public (1) for clients.  Clients have a single NIC. *)
let nic_index ep ~peer_category =
  match (ep.category, peer_category) with
  | Node, Node -> 0
  | Node, Client -> 1
  | Client, _ -> 0

let transmission_time t bytes =
  if bytes = t.tt_bytes then t.tt_span
  else begin
    let span = Time_ns.of_sec_f (float_of_int (bytes * 8) /. t.config.bandwidth_bps) in
    t.tt_bytes <- bytes;
    t.tt_span <- span;
    span
  end

let partitioned t src dst =
  match t.partition with
  | None -> false
  | Some group -> group src <> group dst

let release_env t env =
  if t.env_free_n < max_free_envelopes then begin
    (* Drop the payload so a parked envelope doesn't pin a delivered
       message's data until its next reuse. *)
    env.payload <- Obj.magic 0;
    env.env_next <- t.env_free;
    t.env_free <- env;
    t.env_free_n <- t.env_free_n + 1
  end

(* Both hops of a message, driven by the envelope's own [k] closure.
   Hop 1 (arrival): receiver-side NIC serialization — re-check crash state,
   the receiver may have crashed while the message was in flight.
   Hop 2 (delivery): hand to the handler, re-checking crash state again. *)
let advance_env t env =
  let de = env.dst_ep in
  if env.delivering then begin
    if not de.crashed then de.handler ~src:env.env_src ~size:env.env_size env.payload;
    release_env t env
  end
  else if de.crashed then release_env t env
  else begin
    let now = Engine.now t.engine in
    let deliver =
      Time_ns.add (Time_ns.max now de.rx_free.(env.rx_nic)) env.serialize
    in
    de.rx_free.(env.rx_nic) <- deliver;
    env.delivering <- true;
    Engine.post_at t.engine ~at:deliver env.k
  end

let alloc_env t ~dst_ep ~src ~size ~payload ~serialize ~rx_nic =
  let env = t.env_free in
  if env != t.env_nil then begin
    t.env_free <- env.env_next;
    t.env_free_n <- t.env_free_n - 1;
    env.env_next <- t.env_nil;
    env.dst_ep <- dst_ep;
    env.env_src <- src;
    env.env_size <- size;
    env.payload <- payload;
    env.serialize <- serialize;
    env.rx_nic <- rx_nic;
    env.delivering <- false;
    env
  end
  else begin
    let env =
      {
        dst_ep;
        env_src = src;
        env_size = size;
        payload;
        serialize;
        rx_nic;
        delivering = false;
        env_next = t.env_nil;
        k = noop;
      }
    in
    env.k <- (fun () -> advance_env t env);
    env
  end

(* Per-destination tail of [send], with the sender-side invariants
   (endpoint lookup, crash check, wire size, serialization time) hoisted so
   [multicast] pays them once for n-1 copies. *)
let send_prepared t se ~src ~dst ~size ~wire_bytes ~serialize payload =
  let de = endpoint t dst in
  t.n_sent <- t.n_sent + 1;
  t.total_bytes <- t.total_bytes + wire_bytes;
  se.bytes_out <- se.bytes_out + wire_bytes;
  (* Lost in transit: severed path or random drop.  (A crashed receiver is
     handled at arrival time instead — the message may still find the
     endpoint up again if it recovers while the message is in flight.) *)
  let lost =
    partitioned t src dst
    || (t.drop_prob > 0.0 && Rng.float t.rng 1.0 < t.drop_prob)
  in
  (* Even a lost message consumes sender bandwidth. *)
  let now = Engine.now t.engine in
  let tx_nic = nic_index se ~peer_category:de.category in
  let depart = Time_ns.add (Time_ns.max now se.tx_free.(tx_nic)) serialize in
  se.tx_free.(tx_nic) <- depart;
  if not lost then begin
    let prop = Topology.latency se.datacenter de.datacenter in
    let jit = if t.config.jitter > 0 then Rng.int t.rng t.config.jitter else 0 in
    let spike = match t.link_latency with Some f -> f src dst | None -> 0 in
    let arrive = Time_ns.add depart (prop + jit + spike) in
    let env =
      alloc_env t ~dst_ep:de ~src ~size ~payload ~serialize
        ~rx_nic:(nic_index de ~peer_category:se.category)
    in
    Engine.post_at t.engine ~at:arrive env.k
  end

let send t ~src ~dst ~size payload =
  let se = endpoint t src in
  (* Only a crashed *sender* suppresses the send entirely (a dead process
     emits nothing).  The sender cannot know that the destination is crashed
     or partitioned away: it still serializes the message through its NIC
     and the send still counts; only the delivery is suppressed. *)
  if not se.crashed then begin
    let wire_bytes = size + t.config.per_message_overhead in
    send_prepared t se ~src ~dst ~size ~wire_bytes
      ~serialize:(transmission_time t wire_bytes) payload
  end

let multicast t ~src ~dsts ~size payload =
  match dsts with
  | [] -> ()
  | _ ->
      let se = endpoint t src in
      if not se.crashed then begin
        let wire_bytes = size + t.config.per_message_overhead in
        let serialize = transmission_time t wire_bytes in
        List.iter
          (fun dst -> send_prepared t se ~src ~dst ~size ~wire_bytes ~serialize payload)
          dsts
      end

let charge t ~endpoint:id ~dir ~peer ~bytes =
  let ep = endpoint t id in
  let nic = nic_index ep ~peer_category:peer in
  let now = Engine.now t.engine in
  let serialize = transmission_time t bytes in
  let horizon = match dir with `Tx -> ep.tx_free | `Rx -> ep.rx_free in
  let free_at = Time_ns.add (Time_ns.max now horizon.(nic)) serialize in
  horizon.(nic) <- free_at;
  if dir = `Tx then ep.bytes_out <- ep.bytes_out + bytes;
  Time_ns.diff free_at now

let nic_backlog t ~endpoint:id ~dir ~peer =
  let ep = endpoint t id in
  let nic = nic_index ep ~peer_category:peer in
  let horizon = (match dir with `Tx -> ep.tx_free | `Rx -> ep.rx_free).(nic) in
  Time_ns.max 0 (Time_ns.diff horizon (Engine.now t.engine))

let crash t id = (endpoint t id).crashed <- true

let recover t id =
  let ep = endpoint t id in
  if ep.crashed then begin
    ep.crashed <- false;
    (* A rebooted host starts with idle NICs: whatever serialization backlog
       the endpoint had accumulated before the crash died with it.  Without
       this reset a node that crashed while its NIC horizon was far in the
       future would come back up unable to send or receive until the stale
       horizon passed. *)
    let now = Engine.now t.engine in
    for nic = 0 to Array.length ep.tx_free - 1 do
      ep.tx_free.(nic) <- now;
      ep.rx_free.(nic) <- now
    done
  end

let is_crashed t id = (endpoint t id).crashed
let set_partition t p = t.partition <- p
let set_drop_probability t p = t.drop_prob <- p
let set_link_latency t f = t.link_latency <- f
let messages_sent t = t.n_sent
let bytes_sent t = t.total_bytes
let endpoint_bytes_sent t id = (endpoint t id).bytes_out
