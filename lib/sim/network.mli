(** Simulated WAN with bandwidth-limited NICs.

    This is what makes the paper's headline result reproducible: a
    single-leader protocol's leader must serialize O(n) copies of every batch
    through one rate-limited NIC, so its throughput decays as 1/n, while ISS
    spreads proposals over all leaders' NICs.

    Model, per message:
    + the sender's outgoing NIC serializes it: it departs at
      [max(now, tx_free) + size/bandwidth];
    + it propagates for the topology latency between the two endpoints'
      datacenters, plus optional jitter;
    + the receiver's incoming NIC serializes it symmetrically;
    + the receiver's handler runs at the resulting delivery time.

    Endpoints are small integers.  Each endpoint is either a [Node] or a
    [Client]; following the paper, nodes have two full-duplex NICs — a
    private one used for node↔node traffic and a public one for
    client↔node traffic — while clients have one.

    Failure injection: endpoints can be crashed and later recovered, pairs
    can be partitioned, a uniform drop probability can be set, and
    individual links can be given extra latency.  Failures are modeled from
    the point of view of the {e surviving} processes: a correct sender has
    no way to know that its peer is dead or unreachable, so it still pays
    the full transmission cost — only delivery is suppressed. *)

type 'a t
(** A network carrying payloads of type ['a]. *)

type category = Node | Client

type config = {
  bandwidth_bps : float;  (** per-NIC, per-direction, bits per second *)
  per_message_overhead : int;  (** framing bytes added to every message *)
  jitter : Time_ns.span;  (** max uniform extra propagation delay *)
}

val default_config : config
(** 1 Gbps NICs, 80 B overhead, 2 ms max jitter — the paper's setup. *)

val create : ?config:config -> Engine.t -> rng:Rng.t -> unit -> 'a t

val add_endpoint :
  'a t ->
  id:int ->
  category:category ->
  datacenter:int ->
  handler:(src:int -> size:int -> 'a -> unit) ->
  unit
(** Registers endpoint [id].  [datacenter] indexes {!Topology.datacenters}.
    The handler is invoked at delivery time. *)

val send : 'a t -> src:int -> dst:int -> size:int -> 'a -> unit
(** [size] is the application payload size in bytes; framing overhead is
    added internally.  A crashed sender emits nothing.  Any other send
    consumes sender NIC bandwidth and counts towards {!messages_sent} /
    {!bytes_sent} regardless of the destination's fate: messages to a
    partitioned-away peer are lost in transit, and messages to a crashed
    peer are discarded on arrival (unless the peer recovered while the
    message was in flight). *)

val multicast : 'a t -> src:int -> dsts:int list -> size:int -> 'a -> unit
(** Point-to-point sends to each destination (no network-level multicast:
    each copy consumes sender bandwidth, exactly the single-leader cost). *)

val crash : 'a t -> int -> unit
(** Crash semantics: the endpoint stops sending (its [send]s are suppressed
    at zero cost — a dead process emits nothing) and stops receiving
    (messages addressed to it are discarded at arrival time).  Messages
    already in flight {e towards} a crashed endpoint are only discarded if
    the endpoint is still crashed when they arrive. *)

val recover : 'a t -> int -> unit
(** Clears the crash flag and resets the endpoint's NIC serialization
    horizons to the current time: a rebooted host starts with idle NICs —
    the pre-crash transmission backlog does not survive the reboot.
    Recovering a non-crashed endpoint is a no-op. *)

val is_crashed : 'a t -> int -> bool

val set_partition : 'a t -> (int -> int) option -> unit
(** [set_partition t (Some group)] drops messages between endpoints whose
    [group] differs; [None] heals.  Cross-partition sends still consume
    sender bandwidth (the sender cannot observe the partition). *)

val set_drop_probability : 'a t -> float -> unit
(** Uniform i.i.d. message-drop probability in [\[0,1\]]. *)

val set_link_latency : 'a t -> (int -> int -> Time_ns.span) option -> unit
(** [set_link_latency t (Some f)] adds [f src dst] of one-way propagation
    delay to every message from [src] to [dst] — per-link latency spikes
    for fault experiments.  [None] restores nominal latency. *)

val charge : 'a t -> endpoint:int -> dir:[ `Tx | `Rx ] -> peer:category -> bytes:int -> Time_ns.span
(** Consume NIC bandwidth without materializing a message: advances the
    endpoint's serialization horizon for the NIC facing [peer] and returns
    the queueing + serialization delay from now.  Modeled (aggregated)
    client traffic and replies use this so that their bandwidth cost is
    honest without simulating millions of small messages. *)

val messages_sent : 'a t -> int
val bytes_sent : 'a t -> int

val endpoint_bytes_sent : 'a t -> int -> int
(** Bytes a given endpoint has pushed into its NICs; identifies bottleneck
    nodes. *)

val nic_backlog :
  'a t -> endpoint:int -> dir:[ `Tx | `Rx ] -> peer:category -> Time_ns.span
(** Remaining serialization backlog of the NIC facing [peer]: how far the
    endpoint's [dir] horizon lies beyond the current virtual time (0 when
    idle).  A pure observation — reading it never advances any horizon;
    the observability layer exposes it as a bytes-in-flight gauge. *)
