type t = int
type span = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let of_sec_f s = int_of_float (Float.round (s *. 1e9))
let to_sec_f t = float_of_int t /. 1e9
let to_ms_f t = float_of_int t /. 1e6
let add t d = t + d
let diff a b = a - b
let max (a : int) b = if a < b then b else a
let pp fmt t = Format.fprintf fmt "%.3fs" (to_sec_f t)
