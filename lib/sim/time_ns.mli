(** Simulated time.

    All simulator timestamps and durations are integer nanoseconds carried in
    a native [int] (63 bits: ±146 years, ample for any experiment).  A thin
    abstraction keeps unit mistakes out of protocol code. *)

type t = int
(** A point in simulated time, in nanoseconds since simulation start. *)

type span = int
(** A duration in nanoseconds. *)

val zero : t

val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span

val of_sec_f : float -> span
(** Fractional seconds to a span (rounded to the nearest nanosecond). *)

val to_sec_f : span -> float
val to_ms_f : span -> float

val add : t -> span -> t
val diff : t -> t -> span

val max : t -> t -> t
(** Monomorphic [max]: Stdlib's polymorphic compare costs a C call per use,
    which matters on the NIC horizon updates (two per message). *)

val pp : Format.formatter -> t -> unit
(** Renders as seconds with millisecond precision, e.g. ["12.345s"]. *)
