type level = Debug | Info | Warn

type sink = { min_level : level; write : at:Time_ns.t -> level:level -> string -> unit }

(* The single installation point: protocol code only ever consults this one
   reference.  The obs subsystem (lib/obs) provides sink constructors; the
   legacy set_enabled/set_level/with_capture API below installs equivalent
   sinks so existing callers and tests are unaffected. *)
let current : sink option ref = ref None

let set_sink s = current := s
let sink () = !current

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2

let emit engine lvl fmt =
  match !current with
  | Some s when severity lvl >= severity s.min_level ->
      Format.kasprintf (fun msg -> s.write ~at:(Engine.now engine) ~level:lvl msg) fmt
  | Some _ | None -> Format.ifprintf Format.err_formatter fmt

let format_line ~at msg = Format.asprintf "[%a] %s" Time_ns.pp at msg

let stderr_sink ~min_level =
  { min_level; write = (fun ~at ~level:_ msg -> prerr_endline (format_line ~at msg)) }

let buffer_sink buf ~min_level =
  {
    min_level;
    write =
      (fun ~at ~level:_ msg ->
        Buffer.add_string buf (format_line ~at msg);
        Buffer.add_char buf '\n');
  }

(* ------------------------------------------------------------------ *)
(* Legacy shim *)

let shim_level = ref Info

let set_level l =
  shim_level := l;
  match !current with Some s -> current := Some { s with min_level = l } | None -> ()

let set_enabled b = current := (if b then Some (stderr_sink ~min_level:!shim_level) else None)

let with_capture f =
  let buf = Buffer.create 256 in
  let saved = !current in
  current := Some (buffer_sink buf ~min_level:!shim_level);
  let finish () = current := saved in
  match f () with
  | v ->
      finish ();
      (v, Buffer.contents buf)
  | exception e ->
      finish ();
      raise e
