(** Lightweight simulation tracing.

    Protocol code emits trace points tagged with the simulated time.  Where
    the trace text goes is decided by the installed {!sink} — nothing, a
    buffer, stderr, or anything the observability layer (lib/obs) installs.
    With no sink installed, {!emit} pays no formatting cost. *)

type level = Debug | Info | Warn

type sink = {
  min_level : level;
  write : at:Time_ns.t -> level:level -> string -> unit;
      (** Called once per emitted line with the formatted message (no
          timestamp prefix — the sink decides the presentation). *)
}

val set_sink : sink option -> unit
(** Install (or remove) the trace sink.  One sink is active at a time. *)

val sink : unit -> sink option

val stderr_sink : min_level:level -> sink
(** Writes ["[<sim time>] <msg>"] lines to stderr. *)

val buffer_sink : Buffer.t -> min_level:level -> sink
(** Appends ["[<sim time>] <msg>\n"] to the buffer. *)

val emit : Engine.t -> level -> ('a, Format.formatter, unit) format -> 'a
(** [emit engine lvl fmt ...] formats and hands the line to the installed
    sink when one is present at [lvl] or below; otherwise free. *)

(** {2 Legacy shim}

    The pre-obs global-toggle API, preserved for existing callers and
    tests; implemented by installing the equivalent sink. *)

val set_enabled : bool -> unit
(** [true] installs {!stderr_sink} at the last {!set_level}; [false]
    removes the sink. *)

val set_level : level -> unit
(** Remembers the level for future {!set_enabled}/{!with_capture} and
    re-levels the currently installed sink, if any. *)

val with_capture : (unit -> 'a) -> 'a * string
(** Runs the thunk with a {!buffer_sink} installed; returns the result and
    the captured trace text.  Restores the previously installed sink. *)
