(* Randomized Byzantine sweep (opt-in:  dune build @byzantine).

   Runs [Faults.random_byzantine] schedules over a range of seeds on both
   BFT instantiations, each under the full invariant checker: safety and
   exactly-once among correct nodes on every delivery, liveness (every
   request reaches its reply quorum) once the attack window has healed.
   Raft is exempt by construction — the fault model it implements is
   crash-recovery, and [Faults.validate] rejects these schedules for it. *)

module Time_ns = Sim.Time_ns
module Faults = Runner.Faults
module Cluster = Runner.Cluster

let seeds = 12
let duration_s = 30.0

let fast c =
  {
    c with
    Core.Config.min_epoch_length = 32;
    min_segment_size = 4;
    epoch_change_timeout = Time_ns.sec 4;
    max_batch_timeout = (if c.Core.Config.max_batch_timeout = 0 then 0 else Time_ns.sec 1);
  }

let run_one ~protocol ~seed =
  let n = 4 in
  let sc = Faults.random_byzantine ~seed ~n ~duration_s in
  (match Faults.validate ~protocol sc ~n with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "%s: invalid schedule: %s" (Faults.name sc) e));
  let cluster = Cluster.create ~tweak:fast ~system:(Cluster.Iss protocol) ~n ~seed () in
  Faults.apply sc cluster;
  Cluster.enable_invariants cluster;
  Cluster.start cluster;
  let until = Time_ns.of_sec_f duration_s in
  let run_until =
    Time_ns.of_sec_f
      (Float.max duration_s
         (Faults.heal_s sc +. Faults.liveness_grace_s (Cluster.config cluster)))
  in
  Runner.Workload.start ~cluster ~rate:100.0 ~resubmit:true ~sweep_until:run_until ~until ();
  Sim.Engine.run ~until:run_until (Cluster.engine cluster);
  Cluster.check_liveness cluster;
  if Cluster.delivered_quorum cluster <> Cluster.submitted cluster then
    failwith
      (Printf.sprintf "%s: %d of %d requests never reached their reply quorum"
         (Faults.name sc)
         (Cluster.submitted cluster - Cluster.delivered_quorum cluster)
         (Cluster.submitted cluster))

let () =
  let failures = ref 0 in
  List.iter
    (fun protocol ->
      for s = 1 to seeds do
        let seed = Int64.of_int s in
        match run_one ~protocol ~seed with
        | () ->
            Printf.printf "ok   %-12s seed %Ld\n%!" (Core.Config.protocol_name protocol) seed
        | exception e ->
            incr failures;
            Printf.printf "FAIL %-12s seed %Ld: %s\n%!"
              (Core.Config.protocol_name protocol)
              seed (Printexc.to_string e)
      done)
    [ Core.Config.PBFT; Core.Config.HotStuff ];
  if !failures > 0 then begin
    Printf.printf "%d Byzantine sweep failures\n" !failures;
    exit 1
  end;
  print_endline "byzantine sweep: all seeds passed"
