(* Byzantine adversary harness (DESIGN.md §10): every active-malice attack
   paired with the defense that defeats it, on both BFT instantiations.

   Each attack scenario runs under the full cross-node invariant checker
   (safety + exactly-once among correct nodes on every delivery) and ends
   with the liveness check (every submitted request reached its reply
   quorum of correct nodes) — so each test asserts that the attack neither
   breaks safety nor permanently costs throughput.  On top of that:

   - equivocation, censorship and signature corruption must get the
     attacker removed from the leader set within two epochs of the attack
     window opening (the leader policy turning local damage into the
     log-derived ⊥ / straggler evidence of §3.4);
   - replay and bad-checkpoint are absorbed attacks: the ingress defenses
     (watermark dedup, reply cache, vote keying, checkpoint quorum
     matching) neutralize them without generating any ⊥ evidence, so the
     attacker must NOT be banned — a false accusation would be its own bug;
   - an adversary proxy that is constructed but never armed must leave the
     run bit-identical to a bare cluster (zero perturbation).

   The randomized sweep over seeds lives in test_byz_sweep.ml behind the
   [byzantine] alias. *)

module Time_ns = Sim.Time_ns
module Faults = Runner.Faults
module Cluster = Runner.Cluster

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small epochs and tight timeouts, as in test_faults.ml: the liveness grace
   period is derived from these. *)
let fast c =
  {
    c with
    Core.Config.min_epoch_length = 32;
    min_segment_size = 4;
    epoch_change_timeout = Time_ns.sec 4;
    max_batch_timeout = (if c.Core.Config.max_batch_timeout = 0 then 0 else Time_ns.sec 1);
  }

(* Every byz-* scenario attacks node 1 (see Faults.named). *)
let attacker = 1

type probe = {
  mutable epoch_at_attack : int;  (* node 0's epoch when the window opened *)
  mutable first_banned_epoch : int;  (* first epoch observed without the attacker *)
  mutable banned_at_end : bool;
}

let run_byz ?policy ?(rate = 100.0) ~protocol name =
  let n = 4 in
  match Faults.named ~n name with
  | Error e -> Alcotest.failf "named %s: %s" name e
  | Ok sc ->
      let cluster =
        Cluster.create ?policy ~tweak:fast ~system:(Cluster.Iss protocol) ~n ~seed:7L ()
      in
      (match Faults.validate ~protocol sc ~n with
      | Ok () -> ()
      | Error e -> Alcotest.failf "scenario %s: %s" name e);
      Faults.apply sc cluster;
      Cluster.enable_invariants cluster;
      Cluster.start cluster;
      let engine = Cluster.engine cluster in
      let until = Time_ns.of_sec_f 30.0 in
      let run_until =
        Time_ns.of_sec_f
          (Float.max 30.0 (Faults.heal_s sc +. Faults.liveness_grace_s (Cluster.config cluster)))
      in
      (* Sample node 0's leader set through the run: read-only, so it cannot
         perturb the protocol. *)
      let probe = { epoch_at_attack = -1; first_banned_epoch = -1; banned_at_end = false } in
      let observer = (Cluster.nodes cluster).(0) in
      let leads_now () =
        Array.exists (fun l -> l = attacker) (Core.Node.epoch_leaders observer)
      in
      let rec sample () =
        let epoch = Core.Node.current_epoch observer in
        if probe.epoch_at_attack < 0 && Sim.Engine.now engine >= Time_ns.of_sec_f 2.0 then
          probe.epoch_at_attack <- epoch;
        if probe.first_banned_epoch < 0 && not (leads_now ()) then
          probe.first_banned_epoch <- epoch;
        if Sim.Engine.now engine < run_until then
          ignore (Sim.Engine.schedule engine ~delay:(Time_ns.ms 250) sample)
      in
      ignore (Sim.Engine.schedule engine ~delay:(Time_ns.ms 250) sample);
      Runner.Workload.start ~cluster ~rate ~resubmit:true ~sweep_until:run_until ~until ();
      Sim.Engine.run ~until:run_until engine;
      probe.banned_at_end <- not (leads_now ());
      (* Raises Invariant_violation with a readable report on any safety or
         liveness break among the correct nodes. *)
      Cluster.check_liveness cluster;
      check_bool "workload submitted requests" true (Cluster.submitted cluster > 0);
      check_int "throughput recovered: every request reached its reply quorum"
        (Cluster.submitted cluster) (Cluster.delivered_quorum cluster);
      (cluster, probe)

let assert_blacklisted (probe : probe) =
  check_bool "attacker was removed from the leader set" true (probe.first_banned_epoch >= 0);
  if probe.first_banned_epoch > probe.epoch_at_attack + 2 then
    Alcotest.failf "attacker banned only at epoch %d, attack opened at epoch %d"
      probe.first_banned_epoch probe.epoch_at_attack;
  check_bool "attacker still banned at the end of the run" true probe.banned_at_end

let assert_absorbed (probe : probe) =
  (* The defense neutralized the attack without ⊥ evidence: banning the
     attacker here would be a false accusation. *)
  check_bool "absorbed attack produced no ban" false probe.banned_at_end

(* ------------------------------------------------------------------ *)
(* One test per attack, per BFT protocol *)

let test_equivocate protocol () =
  let _, probe = run_byz ~protocol "byz-equivocate" in
  assert_blacklisted probe

let test_censor protocol () =
  (* A censoring leader's batches still commit (empty), so there is no ⊥
     evidence; the STRAGGLER-AWARE policy reads the damage off the log
     instead (a leader shipping almost nothing while the busiest leaders
     ship full batches).  The high rate keeps the busiest leaders above the
     policy's load floor. *)
  let _, probe =
    run_byz ~policy:Core.Config.Straggler_aware ~rate:400.0 ~protocol "byz-censor"
  in
  assert_blacklisted probe

let test_corrupt_sig protocol () =
  let cluster, probe = run_byz ~protocol "byz-corrupt-sig" in
  assert_blacklisted probe;
  (* The garbled messages were dropped at ingress, and counted. *)
  let drops =
    Array.fold_left
      (fun acc node ->
        acc + if Core.Node.id node = attacker then 0 else Core.Node.auth_failures node)
      0 (Cluster.nodes cluster)
  in
  check_bool "correct nodes rejected unverifiable messages at ingress" true (drops > 0)

let test_replay protocol () =
  let _, probe = run_byz ~protocol "byz-replay" in
  assert_absorbed probe

let test_bad_checkpoint protocol () =
  let cluster, probe = run_byz ~protocol "byz-bad-checkpoint" in
  assert_absorbed probe;
  (* The scenario crash-recovers node 3 inside the attack window: it must
     have state-transferred to the cluster epoch despite the attacker
     serving poisoned checkpoint certificates. *)
  let nodes = Cluster.nodes cluster in
  check_bool "recovering node is back up" false (Core.Node.is_halted nodes.(3));
  check_bool "recovering node delivered requests" true
    (Core.Node.delivered_count nodes.(3) > 0);
  let max_epoch =
    Array.fold_left (fun acc nd -> max acc (Core.Node.current_epoch nd)) 0 nodes
  in
  check_bool "recovering node caught up to the cluster epoch" true
    (Core.Node.current_epoch nodes.(3) >= max_epoch - 1)

(* ------------------------------------------------------------------ *)
(* Zero perturbation: an adversary proxy that exists but never arms an
   attack must not change a single delivery. *)

let log_fingerprint cluster =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "n%d(%d):" (Core.Node.id node) (Core.Node.delivered_count node));
      let log = Core.Node.log node in
      let sn = ref (Core.Log.pruned_below log) in
      let continue_ = ref true in
      while !continue_ do
        match Core.Log.get log ~sn:!sn with
        | None -> continue_ := false
        | Some p ->
            Buffer.add_string buf (Iss_crypto.Hash.short (Proto.Proposal.digest p));
            incr sn
      done;
      Buffer.add_char buf '\n')
    (Cluster.nodes cluster);
  Buffer.contents buf

let test_zero_perturbation () =
  let run ~armed =
    let cluster =
      Cluster.create ~tweak:fast ~system:(Cluster.Iss Core.Config.PBFT) ~n:4 ~seed:5L ()
    in
    if armed then ignore (Cluster.ensure_adversary cluster);
    Cluster.start cluster;
    let until = Time_ns.of_sec_f 20.0 in
    Runner.Workload.start ~cluster ~rate:100.0 ~until ();
    Sim.Engine.run ~until (Cluster.engine cluster);
    (log_fingerprint cluster, Cluster.delivered_quorum cluster)
  in
  let bare_log, bare_count = run ~armed:false in
  let proxied_log, proxied_count = run ~armed:true in
  check_int "same quorum deliveries" bare_count proxied_count;
  Alcotest.(check string) "bit-identical delivered logs" bare_log proxied_log

(* ------------------------------------------------------------------ *)
(* Validation of Byzantine schedules *)

let test_validate_byzantine () =
  let eq = [ Faults.Equivocate { node = 1; from_s = 2.0; until_s = 10.0 } ] in
  (* Accepted for the BFT protocols, with and without a protocol hint... *)
  List.iter
    (fun protocol ->
      match Faults.validate ?protocol (Faults.make ~name:"byz" eq) ~n:4 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "rejected a valid Byzantine schedule: %s" e)
    [ None; Some Core.Config.PBFT; Some Core.Config.HotStuff ];
  (* ...rejected for Raft... *)
  (match Faults.validate ~protocol:Core.Config.Raft (Faults.make ~name:"byz" eq) ~n:4 with
  | Ok () -> Alcotest.fail "validate accepted a Byzantine schedule for Raft"
  | Error _ -> ());
  (* ...rejected when more than f nodes are Byzantine at once (n=4, f=1)... *)
  (match
     Faults.validate
       (Faults.make ~name:"byz2"
          [
            Faults.Equivocate { node = 1; from_s = 2.0; until_s = 10.0 };
            Faults.Corrupt_sig { node = 2; from_s = 5.0; until_s = 12.0 };
          ])
       ~n:4
   with
  | Ok () -> Alcotest.fail "validate accepted 2 concurrent Byzantine nodes at f=1"
  | Error _ -> ());
  (* ...but sequential windows on different nodes stay within the bound... *)
  (match
     Faults.validate
       (Faults.make ~name:"byz-seq"
          [
            Faults.Equivocate { node = 1; from_s = 2.0; until_s = 8.0 };
            Faults.Corrupt_sig { node = 2; from_s = 9.0; until_s = 14.0 };
          ])
       ~n:4
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected sequential Byzantine windows: %s" e);
  (* ...and overlapping windows on the same node only warn. *)
  let warnings = ref [] in
  (match
     Faults.validate
       ~warn:(fun w -> warnings := w :: !warnings)
       (Faults.make ~name:"byz-overlap"
          [
            Faults.Equivocate { node = 1; from_s = 2.0; until_s = 10.0 };
            Faults.Replay { node = 1; from_s = 8.0; until_s = 14.0 };
          ])
       ~n:4
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected same-node overlap (should only warn): %s" e);
  check_bool "same-node overlap produced a warning" true (!warnings <> [])

let test_random_byzantine_deterministic () =
  let show sc = Format.asprintf "%a" Faults.pp sc in
  let a = Faults.random_byzantine ~seed:42L ~n:4 ~duration_s:30.0 in
  let b = Faults.random_byzantine ~seed:42L ~n:4 ~duration_s:30.0 in
  Alcotest.(check string) "same seed, same schedule" (show a) (show b);
  check_bool "random schedule validates for PBFT" true
    (Faults.validate ~protocol:Core.Config.PBFT a ~n:4 = Ok ());
  check_bool "random schedule is Byzantine" true (Faults.has_byzantine a)

(* ------------------------------------------------------------------ *)

let () =
  let both name case =
    [
      Alcotest.test_case "iss-pbft" `Slow (case Core.Config.PBFT);
      Alcotest.test_case "iss-hotstuff" `Slow (case Core.Config.HotStuff);
    ]
    |> fun cases -> (name, cases)
  in
  Alcotest.run "byzantine"
    [
      ( "dsl",
        [
          Alcotest.test_case "validate enforces the Byzantine fault model" `Quick
            test_validate_byzantine;
          Alcotest.test_case "random Byzantine schedules are deterministic" `Quick
            test_random_byzantine_deterministic;
        ] );
      both "equivocate" test_equivocate;
      both "censor" test_censor;
      both "corrupt-sig" test_corrupt_sig;
      both "replay" test_replay;
      both "bad-checkpoint" test_bad_checkpoint;
      ( "zero-perturbation",
        [
          Alcotest.test_case "unarmed proxy leaves the run bit-identical" `Quick
            test_zero_perturbation;
        ] );
    ]
