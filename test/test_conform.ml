(* Conformance subsystem: scenario fuzzer/codec, differential checker,
   shrinker, and replay of the committed regression corpus.

   The corpus files in [conform_corpus/] are minimized repros of real bugs
   the fuzzer found; each is replayed bit-identically here (the fixes must
   keep them green).  A fault-free fixed seed also runs the full pipeline —
   three protocols, instrumented + bare with fingerprint equality — so
   tier-1 exercises the same path as [iss_sim conform]. *)

module Scenario = Conform.Scenario
module Checker = Conform.Checker
module Harness = Conform.Harness
module Shrink = Conform.Shrink

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Scenario fuzzer + JSON codec *)

let test_scenario_roundtrip () =
  for k = 1 to 30 do
    let sc = Scenario.of_seed (Int64.of_int k) in
    check_bool
      (Printf.sprintf "seed %d validates" k)
      true
      (Result.is_ok (Scenario.validate sc));
    match Scenario.of_string (Scenario.to_string sc) with
    | Error e -> Alcotest.failf "seed %d does not round-trip: %s" k e
    | Ok sc' ->
        check_bool (Printf.sprintf "seed %d round-trips exactly" k) true (sc = sc')
  done

let test_scenario_deterministic () =
  for k = 1 to 10 do
    let a = Scenario.of_seed (Int64.of_int k) and b = Scenario.of_seed (Int64.of_int k) in
    check_bool (Printf.sprintf "seed %d is a pure function" k) true (a = b)
  done

(* ------------------------------------------------------------------ *)
(* Checker unit tests against synthetic delivery streams *)

let req ~client ~ts =
  Proto.Request.make ~client ~ts ~submitted_at:Sim.Time_ns.zero ()

let batch reqs = Proto.Batch.make (Array.of_list reqs)

let new_checker ?(n = 2) ?(reply_quorum = 2) ?(window = 512) () =
  Checker.create ~n ~reply_quorum ~window

let submit ck reqs = List.iter (Checker.note_submitted ck) reqs

let expect_ok name ck =
  match Checker.finalize ck with
  | Ok stats -> stats
  | Error msg -> Alcotest.failf "%s: unexpected violation: %s" name msg

let expect_violation name needle ck =
  match Checker.finalize ck with
  | Ok _ -> Alcotest.failf "%s: expected a violation mentioning %S" name needle
  | Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check_bool
        (Printf.sprintf "%s: message %S mentions %S" name msg needle)
        true (contains msg needle)

let test_checker_clean_run () =
  let ck = new_checker () in
  let r = List.init 4 (fun ts -> req ~client:7 ~ts) in
  submit ck r;
  let b0 = batch [ List.nth r 0; List.nth r 1 ] and b1 = batch [ List.nth r 2; List.nth r 3 ] in
  for node = 0 to 1 do
    Checker.note_delivery ck ~node ~sn:0 ~first_request_sn:0 b0;
    Checker.note_delivery ck ~node ~sn:1 ~first_request_sn:2 b1
  done;
  let stats = expect_ok "clean" ck in
  check_int "distinct positions" 2 stats.Checker.sns;
  check_int "distinct requests" 4 stats.Checker.requests;
  check_int "quorate requests" 4 stats.Checker.quorum_requests;
  check_int "node 0 delivered" 4 stats.Checker.per_node_delivered.(0);
  check_int "node 1 delivered" 4 stats.Checker.per_node_delivered.(1)

let test_checker_accepts_keepalive_holes () =
  (* Positions 1-4 held ⊥ / empty keep-alive batches: never observed, zero
     requests — the Eq. (2) chain must pass straight through them. *)
  let ck = new_checker () in
  let r = List.init 3 (fun ts -> req ~client:7 ~ts) in
  submit ck r;
  let b0 = batch [ List.nth r 0; List.nth r 1 ] and b5 = batch [ List.nth r 2 ] in
  for node = 0 to 1 do
    Checker.note_delivery ck ~node ~sn:0 ~first_request_sn:0 b0;
    Checker.note_delivery ck ~node ~sn:5 ~first_request_sn:2 b5
  done;
  let stats = expect_ok "holes" ck in
  check_int "distinct positions" 2 stats.Checker.sns

let test_checker_rejects_disagreement () =
  let ck = new_checker ~reply_quorum:1 () in
  let a = req ~client:7 ~ts:0 and b = req ~client:8 ~ts:0 in
  submit ck [ a; b ];
  Checker.note_delivery ck ~node:0 ~sn:0 ~first_request_sn:0 (batch [ a; b ]);
  Checker.note_delivery ck ~node:1 ~sn:0 ~first_request_sn:0 (batch [ b; a ]);
  expect_violation "disagreement" "different batch" ck

let test_checker_rejects_double_ordering () =
  let ck = new_checker ~reply_quorum:1 () in
  let a = req ~client:7 ~ts:0 in
  submit ck [ a ];
  Checker.note_delivery ck ~node:0 ~sn:0 ~first_request_sn:0 (batch [ a ]);
  Checker.note_delivery ck ~node:0 ~sn:1 ~first_request_sn:1 (batch [ a ]);
  expect_violation "double ordering" "ordered at both" ck

let test_checker_rejects_fabrication () =
  let ck = new_checker ~reply_quorum:1 () in
  let a = req ~client:7 ~ts:0 in
  Checker.note_delivery ck ~node:0 ~sn:0 ~first_request_sn:0 (batch [ a ]);
  expect_violation "fabrication" "never submitted" ck

let test_checker_rejects_out_of_order () =
  let ck = new_checker ~reply_quorum:1 () in
  let a = req ~client:7 ~ts:0 and b = req ~client:7 ~ts:1 in
  submit ck [ a; b ];
  Checker.note_delivery ck ~node:0 ~sn:1 ~first_request_sn:0 (batch [ a ]);
  Checker.note_delivery ck ~node:0 ~sn:0 ~first_request_sn:1 (batch [ b ]);
  expect_violation "out of order" "out of order" ck

let test_checker_rejects_eq2_break () =
  let ck = new_checker ~reply_quorum:1 () in
  let a = req ~client:7 ~ts:0 and b = req ~client:7 ~ts:1 in
  submit ck [ a; b ];
  Checker.note_delivery ck ~node:0 ~sn:0 ~first_request_sn:0 (batch [ a ]);
  (* sn 1 claims to start numbering at 2, but only one request precedes it. *)
  Checker.note_delivery ck ~node:0 ~sn:2 ~first_request_sn:2 (batch [ b ]);
  expect_violation "Eq. 2 break" "Eq. 2" ck

let test_checker_rejects_lost_request () =
  let ck = new_checker ~reply_quorum:1 () in
  let a = req ~client:7 ~ts:0 and b = req ~client:7 ~ts:1 in
  submit ck [ a; b ];
  Checker.note_delivery ck ~node:0 ~sn:0 ~first_request_sn:0 (batch [ a ]);
  expect_violation "lost request" "never ordered" ck

let test_checker_rejects_window_violation () =
  (* window = 4: ts 4 may only be ordered after ts 0 of the same client. *)
  let ck = new_checker ~n:1 ~reply_quorum:1 ~window:4 () in
  let r = List.init 5 (fun ts -> req ~client:7 ~ts) in
  submit ck r;
  let order = [ 4; 0; 1; 2; 3 ] in
  List.iteri
    (fun sn ts ->
      Checker.note_delivery ck ~node:0 ~sn ~first_request_sn:sn (batch [ List.nth r ts ]))
    order;
  expect_violation "window violation" "watermark window" ck

(* ------------------------------------------------------------------ *)
(* Shrinker *)

let test_shrink_candidates_valid () =
  for k = 1 to 10 do
    let sc = Scenario.of_seed (Int64.of_int k) in
    List.iter
      (fun c ->
        check_bool
          (Printf.sprintf "seed %d candidate validates" k)
          true
          (Result.is_ok (Scenario.validate c));
        check_bool (Printf.sprintf "seed %d candidate differs" k) true (c <> sc))
      (Shrink.candidates sc)
  done

let test_shrink_converges () =
  (* Synthetic failure predicate: the "bug" needs an offered load >= 100.
     The greedy descent must land on a local minimum that still fails and
     has shed everything irrelevant (faults, clients, duration). *)
  let sc = Scenario.of_seed 3L in
  check_bool "seed 3 starts above the threshold" true (sc.Scenario.rate >= 100.);
  let still_fails c = c.Scenario.rate >= 100. in
  let min_sc = Shrink.minimize sc ~still_fails in
  check_bool "minimum still fails" true (still_fails min_sc);
  check_bool "no candidate of the minimum still fails" true
    (not (List.exists still_fails (Shrink.candidates min_sc)));
  check_bool "irrelevant faults dropped" true (min_sc.Scenario.faults = []);
  check_int "client pool shrunk" 1 min_sc.Scenario.num_clients

(* ------------------------------------------------------------------ *)
(* End-to-end: fixed seed + committed regression corpus *)

let test_fixed_seed_pipeline () =
  (* Seed 9 draws a fault-free scenario: the cheapest full pass through all
     three protocols with instrumented/bare fingerprint equality. *)
  match Harness.check_seed 9L with
  | Ok () -> ()
  | Error f -> Alcotest.failf "seed 9: %s" (Format.asprintf "%a" Harness.pp_failure f)

let corpus_dir = "conform_corpus"

let corpus_files () =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  else []

let protocol_of_name s =
  match String.lowercase_ascii s with
  | "pbft" -> Some Core.Config.PBFT
  | "hotstuff" -> Some Core.Config.HotStuff
  | "raft" -> Some Core.Config.Raft
  | _ -> None

(* Committed behaviour fingerprints: an engine or network change that
   reorders even one event delivery shows up here as a mismatch.  Update the
   corpus file's "fingerprints" field only for an *intentional* behaviour
   change. *)
let pinned_fingerprint json proto =
  match Obs.Jsonx.member "fingerprints" json with
  | Some (Obs.Jsonx.Obj kvs) -> (
      match List.assoc_opt (Core.Config.protocol_name proto) kvs with
      | Some (Obs.Jsonx.String fp) -> Some fp
      | _ -> None)
  | _ -> None

let replay_corpus_file file () =
  let path = Filename.concat corpus_dir file in
  let contents = In_channel.with_open_text path In_channel.input_all in
  match Obs.Jsonx.of_string contents with
  | Error e -> Alcotest.failf "%s: bad JSON: %s" file e
  | Ok json -> (
      let scenario_json =
        match Obs.Jsonx.member "scenario" json with Some s -> s | None -> json
      in
      match Scenario.of_json scenario_json with
      | Error e -> Alcotest.failf "%s: bad scenario: %s" file e
      | Ok sc ->
          let protocols =
            match Obs.Jsonx.member "protocol" json with
            | Some (Obs.Jsonx.String p) -> (
                match protocol_of_name p with
                | Some p -> [ p ]
                | None -> Alcotest.failf "%s: unknown protocol %S" file p)
            | _ -> Harness.protocols
          in
          List.iter
            (fun p ->
              (match Harness.check_protocol sc p with
              | Ok () -> ()
              | Error f ->
                  Alcotest.failf "%s regressed: %s" file (Harness.failure_message f));
              match pinned_fingerprint json p with
              | None -> ()
              | Some expected -> (
                  match Harness.run_protocol ~instrumented:false sc p with
                  | Error e -> Alcotest.failf "%s: replay failed: %s" file e
                  | Ok r ->
                      Alcotest.(check string)
                        (Printf.sprintf "%s %s fingerprint pinned" file
                           (Core.Config.protocol_name p))
                        expected r.Harness.fingerprint))
            protocols)

(* The tier-1 fixed seed's fingerprints, pinned as constants: the engine
   rebuild (timing wheel) was required to reproduce these bit-identically,
   and any future scheduling change must be equally intentional. *)
let seed9_fingerprints =
  [
    (Core.Config.PBFT, "b1f6bd24769c82d02af04afe3b08501af5aba30e2fcac52685f460128f481b21");
    (Core.Config.HotStuff, "ccca5137f04bea6e0b0e870b5e96ed1325c41ee2c5af51b0f174b8ff03c8bdb5");
    (Core.Config.Raft, "b1f6bd24769c82d02af04afe3b08501af5aba30e2fcac52685f460128f481b21");
  ]

let test_seed9_fingerprints_pinned () =
  let sc = Scenario.of_seed 9L in
  List.iter
    (fun (p, expected) ->
      match Harness.run_protocol ~instrumented:false sc p with
      | Error e -> Alcotest.failf "seed 9 %s: %s" (Core.Config.protocol_name p) e
      | Ok r ->
          Alcotest.(check string)
            (Printf.sprintf "seed 9 %s fingerprint" (Core.Config.protocol_name p))
            expected r.Harness.fingerprint)
    seed9_fingerprints

let test_corpus_not_empty () =
  check_bool "committed corpus has entries" true (corpus_files () <> [])

let () =
  Alcotest.run "conform"
    [
      ( "scenario",
        [
          Alcotest.test_case "json round-trip" `Quick test_scenario_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
        ] );
      ( "checker",
        [
          Alcotest.test_case "clean run" `Quick test_checker_clean_run;
          Alcotest.test_case "keep-alive holes are legal" `Quick
            test_checker_accepts_keepalive_holes;
          Alcotest.test_case "disagreement" `Quick test_checker_rejects_disagreement;
          Alcotest.test_case "double ordering" `Quick test_checker_rejects_double_ordering;
          Alcotest.test_case "fabrication" `Quick test_checker_rejects_fabrication;
          Alcotest.test_case "out of order" `Quick test_checker_rejects_out_of_order;
          Alcotest.test_case "Eq. 2 break" `Quick test_checker_rejects_eq2_break;
          Alcotest.test_case "lost request" `Quick test_checker_rejects_lost_request;
          Alcotest.test_case "window violation" `Quick test_checker_rejects_window_violation;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates valid" `Quick test_shrink_candidates_valid;
          Alcotest.test_case "greedy descent converges" `Quick test_shrink_converges;
        ] );
      ( "end-to-end",
        Alcotest.test_case "fixed seed, all protocols" `Slow test_fixed_seed_pipeline
        :: Alcotest.test_case "fixed-seed fingerprints pinned" `Slow
             test_seed9_fingerprints_pinned
        :: Alcotest.test_case "corpus is committed" `Quick test_corpus_not_empty
        :: List.map
             (fun f -> Alcotest.test_case ("corpus " ^ f) `Slow (replay_corpus_file f))
             (corpus_files ()) );
    ]
