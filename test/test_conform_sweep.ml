(* The heavyweight conformance sweep, opt-in via:  dune build @conform

   200 fuzzed seeds, each run against all three ISS instantiations,
   instrumented + bare.  On failure the scenario is greedily minimized and
   the repro JSON is printed, ready to commit into test/conform_corpus/. *)

let seeds = 200

let () =
  for k = 1 to seeds do
    let sc = Conform.Scenario.of_seed (Int64.of_int k) in
    (match Conform.Harness.check_scenario sc with
    | Ok () -> ()
    | Error f ->
        let f = Conform.Shrink.minimize_failure f in
        Format.eprintf "CONFORMANCE FAILURE@.%a@." Conform.Harness.pp_failure f;
        Format.eprintf "minimized repro (commit into test/conform_corpus/):@.%s@."
          (Obs.Jsonx.to_string (Conform.Harness.repro_to_json f));
        exit 1);
    if k mod 10 = 0 then Format.printf "conform sweep: %d/%d seeds OK@." k seeds
  done;
  Format.printf "conform sweep: %d seeds passed (x %d protocols, instrumented + bare)@."
    seeds
    (List.length Conform.Harness.protocols)
