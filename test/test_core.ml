(* Unit and property tests for the ISS core data structures. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let req ~client ~ts = Proto.Request.make ~client ~ts ~submitted_at:0 ()

(* ------------------------------------------------------------------ *)
(* Bucket queue *)

let test_bq_fifo () =
  let q = Core.Bucket_queue.create () in
  for i = 0 to 9 do
    check_bool "add" true (Core.Bucket_queue.add q ~seq:i (req ~client:1 ~ts:i))
  done;
  check_int "length" 10 (Core.Bucket_queue.length q);
  let batch = Core.Bucket_queue.cut q ~max:4 in
  Alcotest.(check (list int)) "oldest four" [ 0; 1; 2; 3 ]
    (Array.to_list (Array.map (fun (r : Proto.Request.t) -> r.id.Proto.Request.ts) batch));
  check_int "remaining" 6 (Core.Bucket_queue.length q)

let test_bq_idempotent_add () =
  let q = Core.Bucket_queue.create () in
  let r = req ~client:1 ~ts:5 in
  check_bool "first add" true (Core.Bucket_queue.add q ~seq:0 r);
  check_bool "duplicate rejected" false (Core.Bucket_queue.add q ~seq:1 r);
  check_int "held once" 1 (Core.Bucket_queue.length q)

let test_bq_remove () =
  let q = Core.Bucket_queue.create () in
  let r1 = req ~client:1 ~ts:1 and r2 = req ~client:1 ~ts:2 in
  ignore (Core.Bucket_queue.add q ~seq:0 r1);
  ignore (Core.Bucket_queue.add q ~seq:1 r2);
  (match Core.Bucket_queue.remove q r1.id with
  | Some r -> check_int "removed the right one" 1 r.id.Proto.Request.ts
  | None -> Alcotest.fail "remove failed");
  check_bool "absent remove" true (Core.Bucket_queue.remove q r1.id = None);
  check_int "one left" 1 (Core.Bucket_queue.length q);
  (match Core.Bucket_queue.peek_oldest q with
  | Some r -> check_int "r2 now oldest" 2 r.id.Proto.Request.ts
  | None -> Alcotest.fail "peek failed")

let test_bq_resurrect_order () =
  let q = Core.Bucket_queue.create () in
  let rs = Array.init 5 (fun i -> req ~client:1 ~ts:i) in
  Array.iteri (fun i r -> ignore (Core.Bucket_queue.add q ~seq:i r)) rs;
  (* Cut 0,1,2 as if proposing, then resurrect 1 at its original seq:
     it must come out before 3 and 4. *)
  ignore (Core.Bucket_queue.cut q ~max:3);
  Core.Bucket_queue.resurrect q ~seq:1 rs.(1);
  let order = Core.Bucket_queue.cut q ~max:10 in
  Alcotest.(check (list int)) "resurrected keeps reception order" [ 1; 3; 4 ]
    (Array.to_list (Array.map (fun (r : Proto.Request.t) -> r.id.Proto.Request.ts) order))

(* Model-based property: the queue behaves like a sorted association list. *)
let prop_bq_model =
  let open QCheck in
  (* Operations: add ts, remove ts, cut k. *)
  let op_gen =
    Gen.(
      frequency
        [
          (6, map (fun ts -> `Add ts) (int_range 0 50));
          (2, map (fun ts -> `Remove ts) (int_range 0 50));
          (2, map (fun k -> `Cut k) (int_range 1 5));
        ])
  in
  Test.make ~name:"bucket queue matches reference model" ~count:300
    (make (Gen.list_size (Gen.int_range 1 60) op_gen))
    (fun ops ->
      let q = Core.Bucket_queue.create () in
      let model = ref [] (* (seq, ts), sorted by seq *) in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Add ts ->
              let r = req ~client:7 ~ts in
              let added = Core.Bucket_queue.add q ~seq:!seq r in
              let model_has = List.exists (fun (_, t) -> t = ts) !model in
              if added = model_has then ok := false;
              if added then model := !model @ [ (!seq, ts) ];
              incr seq
          | `Remove ts ->
              let removed = Core.Bucket_queue.remove q { Proto.Request.client = 7; ts } in
              let model_has = List.exists (fun (_, t) -> t = ts) !model in
              if (removed <> None) <> model_has then ok := false;
              model := List.filter (fun (_, t) -> t <> ts) !model
          | `Cut k ->
              let cut = Core.Bucket_queue.cut q ~max:k in
              let sorted = List.sort compare !model in
              let expected = List.filteri (fun i _ -> i < k) sorted in
              let got =
                Array.to_list
                  (Array.map (fun (r : Proto.Request.t) -> r.id.Proto.Request.ts) cut)
              in
              if got <> List.map snd expected then ok := false;
              model := List.filteri (fun i _ -> i >= k) sorted)
        ops;
      !ok && Core.Bucket_queue.length q = List.length !model)

(* ------------------------------------------------------------------ *)
(* Bucket assignment *)

let prop_assignment_partition =
  QCheck.Test.make ~name:"every bucket assigned to exactly one leader" ~count:100
    QCheck.(triple (int_range 4 40) (int_range 0 50) (int_range 1 10))
    (fun (n, epoch, leaders_seed) ->
      let num_buckets = 16 * n in
      (* A deterministic non-empty leader subset. *)
      let leaders =
        Array.of_list
          (List.filter (fun i -> i mod (1 + (leaders_seed mod 3)) = 0 || i < 1) (List.init n (fun i -> i)))
      in
      let owner = Core.Bucket_assignment.assign ~n ~num_buckets ~epoch ~leaders in
      Array.length owner = num_buckets
      && Array.for_all (fun l -> Array.exists (fun x -> x = l) leaders) owner)

let test_assignment_rotation_coverage () =
  (* Over n consecutive epochs, every node receives every bucket at least
     once via the initial assignment (Lemma 5.4's base). *)
  let n = 6 in
  let num_buckets = 16 * n in
  let seen = Array.make_matrix n num_buckets false in
  for epoch = 0 to n - 1 do
    for node = 0 to n - 1 do
      List.iter
        (fun b -> seen.(node).(b) <- true)
        (Core.Bucket_assignment.init_buckets ~n ~num_buckets ~epoch ~node)
    done
  done;
  for node = 0 to n - 1 do
    for b = 0 to num_buckets - 1 do
      if not seen.(node).(b) then
        Alcotest.failf "node %d never initially assigned bucket %d" node b
    done
  done

let test_assignment_matches_eq1 () =
  (* Eq. (1): initBuckets(e,i) = { b | (b+e) ≡ i mod n }. *)
  let n = 5 and num_buckets = 80 and epoch = 3 in
  for node = 0 to n - 1 do
    let bs = Core.Bucket_assignment.init_buckets ~n ~num_buckets ~epoch ~node in
    List.iter
      (fun b -> check_int (Printf.sprintf "bucket %d owner" b) node ((b + epoch) mod n))
      bs
  done

let test_buckets_of_leader () =
  let n = 4 and epoch = 1 in
  let num_buckets = 8 in
  (* Figure 2's setting: 8 buckets, 2 leaders, 4 nodes, epoch 1. *)
  let leaders = [| 0; 2 |] in
  let all =
    List.concat_map
      (fun leader ->
        Core.Bucket_assignment.buckets_of_leader ~n ~num_buckets ~epoch ~leaders ~leader)
      [ 0; 2 ]
  in
  Alcotest.(check (list int)) "all buckets covered exactly once"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare all)

(* ------------------------------------------------------------------ *)
(* Segments *)

let config4 = Core.Config.pbft_default ~n:4

let test_segments_round_robin () =
  let leaders = [| 0; 1; 2 |] in
  let segs = Core.Segment.make_epoch ~config:config4 ~epoch:0 ~start_sn:0 ~leaders in
  check_int "one segment per leader" 3 (List.length segs);
  let all_sns =
    List.concat_map (fun (s : Core.Segment.t) -> Array.to_list s.seq_nrs) segs
    |> List.sort compare
  in
  let epoch_len = Core.Config.epoch_length config4 ~leaders:3 in
  Alcotest.(check (list int)) "segments partition the epoch"
    (List.init epoch_len (fun i -> i))
    all_sns;
  List.iter
    (fun (s : Core.Segment.t) ->
      Array.iteri
        (fun j sn ->
          check_int "round robin stride" (s.leader_index + (j * 3)) sn;
          check_bool "contains_sn" true (Core.Segment.contains_sn s sn);
          check_int "sn_index" j (Option.get (Core.Segment.sn_index s sn)))
        s.seq_nrs;
      check_bool "foreign sn rejected" false
        (Core.Segment.contains_sn s (s.seq_nrs.(0) + 1)))
    segs

let test_segments_epoch_length_grows () =
  let config = Core.Config.hotstuff_default ~n:32 in
  (* min segment 16 with 32 leaders -> epoch of 512, not 256. *)
  check_int "epoch grows" 512 (Core.Config.epoch_length config ~leaders:32);
  check_int "small leader set keeps min" 256 (Core.Config.epoch_length config ~leaders:4)

let prop_segment_buckets_partition =
  QCheck.Test.make ~name:"segments partition the buckets" ~count:50
    QCheck.(pair (int_range 4 16) (int_range 0 20))
    (fun (n, epoch) ->
      let config = Core.Config.pbft_default ~n in
      let leaders = Array.init ((n / 2) + 1) (fun i -> i) in
      let segs = Core.Segment.make_epoch ~config ~epoch ~start_sn:(epoch * 256) ~leaders in
      let all =
        List.concat_map (fun (s : Core.Segment.t) -> s.Core.Segment.buckets) segs
        |> List.sort compare
      in
      all = List.init (Core.Config.num_buckets config) (fun b -> b))

(* ------------------------------------------------------------------ *)
(* Leader policies *)

let mk_policy kind n =
  Core.Leader_policy.create { (Core.Config.pbft_default ~n) with Core.Config.leader_policy = kind }

let test_policy_simple () =
  let p = mk_policy Core.Config.Simple 7 in
  Core.Leader_policy.epoch_finished p ~epoch:0 ~failed:[ (3, 10) ] ();
  Alcotest.(check (list int)) "all nodes stay" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Array.to_list (Core.Leader_policy.leaders p ~epoch:1))

let test_policy_blacklist () =
  let p = mk_policy Core.Config.Blacklist 7 in
  (* f = 2 for n = 7. *)
  Core.Leader_policy.epoch_finished p ~epoch:0 ~failed:[ (3, 10) ] ();
  let l1 = Array.to_list (Core.Leader_policy.leaders p ~epoch:1) in
  check_bool "node 3 excluded" false (List.mem 3 l1);
  check_int "six leaders" 6 (List.length l1);
  (* A second failure: both excluded (still <= f). *)
  Core.Leader_policy.epoch_finished p ~epoch:1 ~failed:[ (5, 300) ] ();
  let l2 = Array.to_list (Core.Leader_policy.leaders p ~epoch:2) in
  check_bool "3 and 5 excluded" true ((not (List.mem 3 l2)) && not (List.mem 5 l2));
  (* A third failure: only the f=2 most recent stay banned -> 3 returns. *)
  Core.Leader_policy.epoch_finished p ~epoch:2 ~failed:[ (0, 700) ] ();
  let l3 = Array.to_list (Core.Leader_policy.leaders p ~epoch:3) in
  check_bool "only two most recent banned" true (List.mem 3 l3);
  check_bool "0 banned" false (List.mem 0 l3);
  check_bool "5 banned" false (List.mem 5 l3);
  check_int "at least 2f+1 leaders" 5 (List.length l3)

let test_policy_backoff () =
  let p = mk_policy Core.Config.Backoff 5 in
  Core.Leader_policy.epoch_finished p ~epoch:0 ~failed:[ (2, 4) ] ();
  check_bool "banned after failure" true (Core.Leader_policy.is_banned p 2);
  let l = Array.to_list (Core.Leader_policy.leaders p ~epoch:1) in
  check_bool "excluded while banned" false (List.mem 2 l);
  (* Ban decreases linearly with clean epochs (ban period 4, decrease 1). *)
  let rec run_clean e =
    if Core.Leader_policy.is_banned p 2 then begin
      Core.Leader_policy.epoch_finished p ~epoch:e ~failed:[] ();
      run_clean (e + 1)
    end
    else e
  in
  let back_at = run_clean 1 in
  check_bool "eventually re-included" true (back_at <= 6);
  check_bool "re-included in leaders" true
    (List.mem 2 (Array.to_list (Core.Leader_policy.leaders p ~epoch:back_at)))

let test_policy_backoff_doubling () =
  let p = mk_policy Core.Config.Backoff 5 in
  Core.Leader_policy.epoch_finished p ~epoch:0 ~failed:[ (2, 4) ] ();
  (* Fail again while banned: the ban doubles (4*2-1 = 7). *)
  Core.Leader_policy.epoch_finished p ~epoch:1 ~failed:[ (2, 9) ] ();
  let clean_epochs_needed =
    let rec go e count =
      if Core.Leader_policy.is_banned p 2 then begin
        Core.Leader_policy.epoch_finished p ~epoch:e ~failed:[] ();
        go (e + 1) (count + 1)
      end
      else count
    in
    go 2 0
  in
  check_bool "doubled ban takes longer than initial" true (clean_epochs_needed >= 6)

let test_policy_straggler_aware () =
  let p = mk_policy Core.Config.Straggler_aware 7 in
  let stats ~straggler ~busy =
    List.init 7 (fun i ->
        {
          Core.Leader_policy.ls_leader = i;
          ls_batches = 8;
          ls_empty = (if i = straggler then 8 else 0);
          ls_requests = (if i = straggler then 0 else busy);
        })
  in
  (* Under real load, a leader shipping nothing while others ship plenty is
     banned. *)
  Core.Leader_policy.epoch_finished p ~epoch:0 ~failed:[]
    ~stats:(stats ~straggler:4 ~busy:4096) ();
  check_bool "straggler banned" true (Core.Leader_policy.is_banned p 4);
  check_bool "busy leader kept" false (Core.Leader_policy.is_banned p 0);
  (* At low load (everyone near-idle), nobody is banned — empty batches are
     normal keep-alives then. *)
  let p2 = mk_policy Core.Config.Straggler_aware 7 in
  Core.Leader_policy.epoch_finished p2 ~epoch:0 ~failed:[]
    ~stats:(stats ~straggler:4 ~busy:10) ();
  check_bool "no ban at low load" false (Core.Leader_policy.is_banned p2 4);
  (* ⊥ evidence still counts, like BLACKLIST. *)
  let p3 = mk_policy Core.Config.Straggler_aware 7 in
  Core.Leader_policy.epoch_finished p3 ~epoch:0 ~failed:[ (2, 11) ] ();
  check_bool "crash evidence bans too" true (Core.Leader_policy.is_banned p3 2)

(* The leader policy is evaluated locally at every node from log-derived
   evidence alone (§3.4): two replicas fed identical evidence must stay in
   lockstep — identical snapshots (which checkpoint signatures cover) and
   identical leader sets — over any 100-epoch evidence stream.  A policy
   that consulted anything local (RNG, wall clock, insertion order) would
   wedge checkpoint quorums. *)
let prop_policy_determinism =
  let open QCheck in
  let n = 7 in
  let epoch_evidence =
    (* Per epoch: ⊥ evidence as (leader, sn) pairs. *)
    Gen.list_size (Gen.int_range 0 3) (Gen.pair (Gen.int_range 0 (n - 1)) (Gen.int_range 0 10_000))
  in
  Test.make ~name:"identical evidence keeps two policies in lockstep" ~count:30
    (make (Gen.list_size (Gen.return 100) epoch_evidence))
    (fun evidence ->
      List.for_all
        (fun kind ->
          let p1 = mk_policy kind n and p2 = mk_policy kind n in
          let ok = ref true in
          List.iteri
            (fun epoch failed ->
              Core.Leader_policy.epoch_finished p1 ~epoch ~failed ();
              Core.Leader_policy.epoch_finished p2 ~epoch ~failed ();
              if
                Core.Leader_policy.snapshot p1 <> Core.Leader_policy.snapshot p2
                || Core.Leader_policy.leaders p1 ~epoch:(epoch + 1)
                   <> Core.Leader_policy.leaders p2 ~epoch:(epoch + 1)
              then ok := false)
            evidence;
          !ok)
        [ Core.Config.Blacklist; Core.Config.Backoff ])

let test_policy_fixed () =
  let p = mk_policy (Core.Config.Fixed [ 0 ]) 5 in
  Core.Leader_policy.epoch_finished p ~epoch:0 ~failed:[ (0, 3) ] ();
  Alcotest.(check (list int)) "fixed stays fixed" [ 0 ]
    (Array.to_list (Core.Leader_policy.leaders p ~epoch:1))

let test_policy_snapshot_roundtrip () =
  (* A fresh policy restored from a snapshot must produce the same leader
     sets as the evolved original (checkpoint jump adopts policy state this
     way). *)
  List.iter
    (fun kind ->
      let p = mk_policy kind 7 in
      Core.Leader_policy.epoch_finished p ~epoch:0 ~failed:[ (2, 11); (5, 3) ] ();
      Core.Leader_policy.epoch_finished p ~epoch:1 ~failed:[ (2, 20) ] ();
      let q = mk_policy kind 7 in
      Core.Leader_policy.restore q (Core.Leader_policy.snapshot p);
      Alcotest.(check (list int))
        "restored policy yields identical leaders"
        (Array.to_list (Core.Leader_policy.leaders p ~epoch:2))
        (Array.to_list (Core.Leader_policy.leaders q ~epoch:2)))
    [ Core.Config.Simple; Core.Config.Backoff; Core.Config.Blacklist; Core.Config.Straggler_aware ];
  (* Kind or size mismatches are rejected, not silently accepted. *)
  let b = mk_policy Core.Config.Blacklist 7 in
  check_bool "mismatched snapshot raises" true
    (try
       Core.Leader_policy.restore b "backoff:0,0,0,0,0,0,0";
       false
     with Invalid_argument _ -> true);
  let small = mk_policy Core.Config.Blacklist 4 in
  check_bool "mismatched size raises" true
    (try
       Core.Leader_policy.restore small (Core.Leader_policy.snapshot b);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Log *)

let batch_of ts_list =
  Proto.Batch.make (Array.of_list (List.map (fun (c, ts) -> req ~client:c ~ts) ts_list))

let test_log_delivery_order_eq2 () =
  let log = Core.Log.create () in
  let deliveries = ref [] in
  let drain () =
    ignore
      (Core.Log.deliver_ready log ~on_batch:(fun ~sn ~first_request_sn batch ->
           deliveries := (sn, first_request_sn, Proto.Batch.length batch) :: !deliveries))
  in
  (* Commit out of order: 1 then 0 then 2. *)
  check_bool "commit 1" true (Core.Log.commit log ~sn:1 (Proto.Proposal.Batch (batch_of [ (1, 0); (1, 1) ])));
  drain ();
  check_int "nothing deliverable yet" 0 (List.length !deliveries);
  check_bool "commit 0" true (Core.Log.commit log ~sn:0 (Proto.Proposal.Batch (batch_of [ (2, 0) ])));
  drain ();
  check_bool "commit 2 nil" true (Core.Log.commit log ~sn:2 Proto.Proposal.Nil);
  check_bool "commit 3" true (Core.Log.commit log ~sn:3 (Proto.Proposal.Batch (batch_of [ (3, 0) ])));
  drain ();
  (* Eq 2: request sns are 0; then 1,2; nil contributes none; then 3. *)
  Alcotest.(check (list (triple int int int)))
    "delivery order and request sns"
    [ (0, 0, 1); (1, 1, 2); (3, 3, 1) ]
    (List.rev !deliveries);
  check_int "first undelivered" 4 (Core.Log.first_undelivered log);
  check_int "total delivered" 4 (Core.Log.total_delivered log)

let test_log_conflict_detection () =
  let log = Core.Log.create () in
  ignore (Core.Log.commit log ~sn:0 (Proto.Proposal.Batch (batch_of [ (1, 0) ])));
  check_bool "same value re-commit is no-op" false
    (Core.Log.commit log ~sn:0 (Proto.Proposal.Batch (batch_of [ (1, 0) ])));
  Alcotest.check_raises "conflicting commit raises"
    (Invalid_argument "Log.commit: conflicting proposals at sn 0 (SB agreement violation)")
    (fun () -> ignore (Core.Log.commit log ~sn:0 (Proto.Proposal.Batch (batch_of [ (9, 9) ]))))

let test_log_ranges () =
  let log = Core.Log.create () in
  ignore (Core.Log.commit log ~sn:0 (Proto.Proposal.Batch (batch_of [ (1, 0) ])));
  ignore (Core.Log.commit log ~sn:1 Proto.Proposal.Nil);
  ignore (Core.Log.commit log ~sn:2 (Proto.Proposal.Batch (batch_of [ (1, 1) ])));
  check_bool "range complete" true (Core.Log.range_complete log ~from_sn:0 ~to_sn:2);
  check_bool "range with gap" false (Core.Log.range_complete log ~from_sn:0 ~to_sn:3);
  Alcotest.(check (list int)) "nil entries" [ 1 ] (Core.Log.nil_entries log ~from_sn:0 ~to_sn:2);
  check_int "digest array" 3 (Array.length (Core.Log.batch_digests log ~from_sn:0 ~to_sn:2))

let drain log =
  ignore (Core.Log.deliver_ready log ~on_batch:(fun ~sn:_ ~first_request_sn:_ _ -> ()))

let test_log_prune () =
  let log = Core.Log.create () in
  for sn = 0 to 9 do
    ignore (Core.Log.commit log ~sn (Proto.Proposal.Batch (batch_of [ (1, sn) ])))
  done;
  (* Commit one entry ahead of a gap; it must survive every prune. *)
  ignore (Core.Log.commit log ~sn:11 (Proto.Proposal.Batch (batch_of [ (1, 99) ])));
  drain log;
  check_int "frontier at gap" 10 (Core.Log.first_undelivered log);
  check_int "one committed ahead" 1 (Core.Log.committed_ahead log);
  (* Prune below 6: exactly entries 0-5 go. *)
  check_int "pruned 6 entries" 6 (Core.Log.prune log ~below_sn:6);
  check_int "pruned_below" 6 (Core.Log.pruned_below log);
  check_bool "pruned entry absent" true (Core.Log.get log ~sn:3 = None);
  check_bool "retained entry present" true (Core.Log.get log ~sn:7 <> None);
  check_int "committed_ahead robust to pruning" 1 (Core.Log.committed_ahead log);
  (* Prune clamps to the frontier: undelivered positions never go. *)
  check_int "clamped prune" 4 (Core.Log.prune log ~below_sn:100);
  check_int "pruned_below clamped" 10 (Core.Log.pruned_below log);
  check_bool "committed-ahead entry survives" true (Core.Log.get log ~sn:11 <> None);
  (* Late retransmission of a pruned position is dropped, not resurrected. *)
  check_bool "re-commit below pruned_below dropped" false
    (Core.Log.commit log ~sn:2 (Proto.Proposal.Batch (batch_of [ (1, 2) ])));
  check_bool "still absent" true (Core.Log.get log ~sn:2 = None);
  (* Idempotent. *)
  check_int "second prune removes nothing" 0 (Core.Log.prune log ~below_sn:6)

let test_log_jump () =
  let log = Core.Log.create () in
  for sn = 0 to 3 do
    ignore (Core.Log.commit log ~sn (Proto.Proposal.Batch (batch_of [ (1, sn) ])))
  done;
  drain log;
  (* An entry committed ahead of the jump target must deliver afterwards. *)
  ignore (Core.Log.commit log ~sn:21 (Proto.Proposal.Batch (batch_of [ (2, 0); (2, 1) ])));
  Core.Log.jump log ~to_sn:20 ~total_delivered:57;
  check_int "frontier jumped" 20 (Core.Log.first_undelivered log);
  check_int "pruned below jump" 20 (Core.Log.pruned_below log);
  check_int "request numbering adopted" 57 (Core.Log.total_delivered log);
  check_int "nothing committed-ahead lost" 1 (Core.Log.committed_ahead log);
  ignore (Core.Log.commit log ~sn:20 (Proto.Proposal.Batch (batch_of [ (3, 0) ])));
  let seen = ref [] in
  ignore
    (Core.Log.deliver_ready log ~on_batch:(fun ~sn ~first_request_sn _ ->
         seen := (sn, first_request_sn) :: !seen));
  Alcotest.(check (list (pair int int)))
    "post-jump deliveries resume at adopted count"
    [ (20, 57); (21, 58) ]
    (List.rev !seen);
  (* Jump not ahead of the frontier is a no-op. *)
  Core.Log.jump log ~to_sn:5 ~total_delivered:0;
  check_int "stale jump ignored" 22 (Core.Log.first_undelivered log)

(* ------------------------------------------------------------------ *)
(* Watermarks *)

let test_watermarks_window () =
  let w = Core.Watermarks.create ~window:4 in
  let id ts = { Proto.Request.client = 9; ts } in
  check_bool "ts 0 valid" true (Core.Watermarks.valid w (id 0));
  check_bool "ts 3 valid" true (Core.Watermarks.valid w (id 3));
  check_bool "ts 4 too far" false (Core.Watermarks.valid w (id 4));
  Core.Watermarks.note_delivered w (id 0);
  check_int "floor advanced" 1 (Core.Watermarks.floor w 9);
  check_bool "ts 4 now valid" true (Core.Watermarks.valid w (id 4));
  check_bool "ts 0 now below window" false (Core.Watermarks.valid w (id 0))

let test_watermarks_out_of_order () =
  let w = Core.Watermarks.create ~window:8 in
  let id ts = { Proto.Request.client = 3; ts } in
  Core.Watermarks.note_delivered w (id 2);
  Core.Watermarks.note_delivered w (id 1);
  check_int "floor waits for 0" 0 (Core.Watermarks.floor w 3);
  check_bool "delivered 2" true (Core.Watermarks.delivered w (id 2));
  check_bool "not delivered 0" false (Core.Watermarks.delivered w (id 0));
  Core.Watermarks.note_delivered w (id 0);
  check_int "floor jumps over prefix" 3 (Core.Watermarks.floor w 3);
  check_bool "0 delivered below floor" true (Core.Watermarks.delivered w (id 0))

let prop_watermarks_permutation =
  QCheck.Test.make ~name:"floor reaches n after any delivery permutation" ~count:100
    QCheck.(int_range 1 30)
    (fun n ->
      let w = Core.Watermarks.create ~window:64 in
      let order = Array.init n (fun i -> i) in
      let rng = Sim.Rng.create ~seed:(Int64.of_int n) in
      Sim.Rng.shuffle rng order;
      Array.iter
        (fun ts -> Core.Watermarks.note_delivered w { Proto.Request.client = 1; ts })
        order;
      Core.Watermarks.floor w 1 = n)

(* The ring-overflow degrade path (watermarks.ml): a timestamp at or past
   [floor + capacity] cannot be represented in the bitmap, so the tracker
   advances the floor instead of setting a bit.  The safety contract is that
   [delivered] is monotone — once it has answered [true] for an id, no later
   [note_delivered] (however far it jumps the floor) may flip it back to
   [false], because a node trusts [true] to mean "never deliver this request
   again".  False negatives are allowed (they cause a redundant proposal
   attempt, rejected elsewhere); un-delivering is not. *)
let prop_watermarks_overflow_no_duplicate =
  (* window 8 -> capacity 32; ts up to 400 drives the degrade path hard,
     including repeated overflow jumps and bit aliasing across ring wraps. *)
  QCheck.Test.make ~name:"ring overflow never un-delivers (no duplicate delivery)" ~count:300
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 2) (int_bound 400)))
    (fun ops ->
      let w = Core.Watermarks.create ~window:8 in
      let seen = Hashtbl.create 64 in
      List.for_all
        (fun (client, ts) ->
          let id = { Proto.Request.client; ts } in
          Core.Watermarks.note_delivered w id;
          (* A just-noted id must read as delivered (the pre-fix degrade
             path jumped the floor to ts + 1 - capacity without setting the
             triggering bit, leaving its own delivery unrecorded). *)
          if not (Core.Watermarks.delivered w id) then false
          else begin
            Hashtbl.replace seen (client, ts) ();
            (* Every id ever reported delivered must still be reported so. *)
            Hashtbl.fold
              (fun (client, ts) () ok ->
                ok && Core.Watermarks.delivered w { Proto.Request.client; ts })
              seen true
          end)
        ops)

(* The converse direction: [delivered] may answer [true] above the floor
   only for timestamps actually noted.  Before the degrade path cleared
   stale ring bits, a floor jump left bits of the old window set, and a
   fresh timestamp aliasing one of them ([mod capacity]) read as already
   delivered — a false positive that silently suppresses a live request
   (exactly-once's liveness half).  Scan the whole representable window
   after every operation. *)
let prop_watermarks_overflow_no_false_positive =
  QCheck.Test.make
    ~name:"ring overflow never fabricates a delivery (no false positive)" ~count:300
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 2) (int_bound 400)))
    (fun ops ->
      let window = 8 in
      let capacity = 4 * window in
      let w = Core.Watermarks.create ~window in
      let noted = Hashtbl.create 64 in
      List.for_all
        (fun (client, ts) ->
          Core.Watermarks.note_delivered w { Proto.Request.client; ts };
          Hashtbl.replace noted (client, ts) ();
          List.for_all
            (fun client ->
              let floor = Core.Watermarks.floor w client in
              let ok = ref true in
              for ts = floor to floor + capacity - 1 do
                if
                  Core.Watermarks.delivered w { Proto.Request.client; ts }
                  && not (Hashtbl.mem noted (client, ts))
                then ok := false
              done;
              !ok)
            [ 0; 1; 2 ])
        ops)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_validation () =
  let ok c = match Core.Config.validate c with Ok () -> true | Error _ -> false in
  check_bool "pbft default valid" true (ok (Core.Config.pbft_default ~n:4));
  check_bool "hotstuff default valid" true (ok (Core.Config.hotstuff_default ~n:16));
  check_bool "raft default valid" true (ok (Core.Config.raft_default ~n:3));
  check_bool "n=0 invalid" false (ok (Core.Config.pbft_default ~n:4 |> fun c -> { c with Core.Config.n = 0 }));
  check_bool "empty fixed invalid" false
    (ok { (Core.Config.pbft_default ~n:4) with Core.Config.leader_policy = Core.Config.Fixed [] });
  check_bool "out of range fixed invalid" false
    (ok { (Core.Config.pbft_default ~n:4) with Core.Config.leader_policy = Core.Config.Fixed [ 9 ] });
  check_bool "negative batch invalid" false
    (ok { (Core.Config.pbft_default ~n:4) with Core.Config.max_batch_size = 0 })

let test_config_quorums () =
  let c = Core.Config.pbft_default ~n:10 in
  check_int "f" 3 (Core.Config.max_faulty c);
  check_int "strong quorum" 7 (Core.Config.strong_quorum c);
  check_int "buckets" 160 (Core.Config.num_buckets c)

(* ------------------------------------------------------------------ *)
(* Request / bucket mapping *)

let prop_bucket_mapping_in_range =
  QCheck.Test.make ~name:"bucket mapping stays in range" ~count:200
    QCheck.(triple (int_range 0 10_000) (int_range 0 10_000) (int_range 1 4096))
    (fun (client, ts, num_buckets) ->
      let b = Proto.Request.bucket_of_id ~num_buckets { Proto.Request.client; ts } in
      b >= 0 && b < num_buckets)

let test_bucket_mapping_spread () =
  (* A single client's consecutive timestamps must spread across buckets
     (the paper excludes the payload but mixes c and t). *)
  let num_buckets = 64 in
  let seen = Hashtbl.create 64 in
  for ts = 0 to 255 do
    Hashtbl.replace seen (Proto.Request.bucket_of_id ~num_buckets { Proto.Request.client = 5; ts }) ()
  done;
  check_bool "at least half the buckets hit" true (Hashtbl.length seen > 32)

let prop_request_signature =
  QCheck.Test.make ~name:"signed requests verify; altered ones do not" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (client, ts) ->
      let kp = Iss_crypto.Signature.genkey ~id:client in
      let r = Proto.Request.sign kp (req ~client ~ts) in
      Proto.Request.signature_valid r
      && not
           (Proto.Request.signature_valid
              { r with Proto.Request.id = { r.Proto.Request.id with Proto.Request.ts = ts + 1 } }))

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "bucket-queue",
        [
          Alcotest.test_case "fifo cut" `Quick test_bq_fifo;
          Alcotest.test_case "idempotent add" `Quick test_bq_idempotent_add;
          Alcotest.test_case "remove" `Quick test_bq_remove;
          Alcotest.test_case "resurrect order" `Quick test_bq_resurrect_order;
          qc prop_bq_model;
        ] );
      ( "bucket-assignment",
        [
          qc prop_assignment_partition;
          Alcotest.test_case "rotation coverage" `Quick test_assignment_rotation_coverage;
          Alcotest.test_case "matches Eq (1)" `Quick test_assignment_matches_eq1;
          Alcotest.test_case "buckets_of_leader" `Quick test_buckets_of_leader;
        ] );
      ( "segments",
        [
          Alcotest.test_case "round robin" `Quick test_segments_round_robin;
          Alcotest.test_case "epoch length adapts" `Quick test_segments_epoch_length_grows;
          qc prop_segment_buckets_partition;
        ] );
      ( "leader-policy",
        [
          Alcotest.test_case "SIMPLE" `Quick test_policy_simple;
          Alcotest.test_case "BLACKLIST" `Quick test_policy_blacklist;
          Alcotest.test_case "BACKOFF re-inclusion" `Quick test_policy_backoff;
          Alcotest.test_case "BACKOFF doubling" `Quick test_policy_backoff_doubling;
          Alcotest.test_case "STRAGGLER-AWARE" `Quick test_policy_straggler_aware;
          Alcotest.test_case "FIXED" `Quick test_policy_fixed;
          Alcotest.test_case "snapshot roundtrip" `Quick test_policy_snapshot_roundtrip;
          qc prop_policy_determinism;
        ] );
      ( "log",
        [
          Alcotest.test_case "delivery order + Eq 2" `Quick test_log_delivery_order_eq2;
          Alcotest.test_case "conflict detection" `Quick test_log_conflict_detection;
          Alcotest.test_case "ranges and nils" `Quick test_log_ranges;
          Alcotest.test_case "prune below checkpoint" `Quick test_log_prune;
          Alcotest.test_case "checkpoint jump" `Quick test_log_jump;
        ] );
      ( "watermarks",
        [
          Alcotest.test_case "window" `Quick test_watermarks_window;
          Alcotest.test_case "out of order" `Quick test_watermarks_out_of_order;
          qc prop_watermarks_permutation;
          qc prop_watermarks_overflow_no_duplicate;
          qc prop_watermarks_overflow_no_false_positive;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "quorums" `Quick test_config_quorums;
        ] );
      ( "requests",
        [
          qc prop_bucket_mapping_in_range;
          Alcotest.test_case "bucket spread" `Quick test_bucket_mapping_spread;
          qc prop_request_signature;
        ] );
    ]
