(* The chaos harness: fault-schedule DSL, crash-recovery, partition healing,
   client retransmission over a lossy network, and schedule determinism.

   Every scenario run enables the cross-node invariant checker (safety +
   exactly-once on every delivery) and ends with the liveness check (every
   submitted request reached its reply quorum), so a regression in view
   change, state transfer, block sync or log repair fails loudly here.

   Runs use a shortened configuration (small epochs, tight timeouts) so the
   post-heal grace period fits in a test budget; the full-size randomized
   sweep lives in test_chaos.ml behind the [chaos] alias. *)

module Time_ns = Sim.Time_ns
module Faults = Runner.Faults
module Cluster = Runner.Cluster

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small epochs and tight timeouts: the liveness grace period is derived
   from these, so shrinking them shrinks the whole run. *)
let fast c =
  {
    c with
    Core.Config.min_epoch_length = 32;
    min_segment_size = 4;
    epoch_change_timeout = Time_ns.sec 4;
    max_batch_timeout = (if c.Core.Config.max_batch_timeout = 0 then 0 else Time_ns.sec 1);
  }

(* ------------------------------------------------------------------ *)
(* DSL unit tests *)

let test_validate_rejects () =
  let bad spec msg =
    match Faults.validate (Faults.make ~name:"bad" spec) ~n:4 with
    | Ok () -> Alcotest.failf "validate accepted %s" msg
    | Error _ -> ()
  in
  bad [ Faults.Crash { node = 9; at_s = 1.0 } ] "an out-of-range node";
  bad [ Faults.Drop { prob = 1.5; from_s = 0.0; until_s = 5.0 } ] "drop probability > 1";
  bad
    [ Faults.Split { minority = [ 0; 1 ]; from_s = 0.0; until_s = 5.0 } ]
    "a split without a majority";
  bad [ Faults.Isolate { node = 0; from_s = 5.0; until_s = 2.0 } ] "an inverted window";
  match
    Faults.validate
      (Faults.make ~name:"ok" [ Faults.Crash_recover { node = 1; at_s = 1.0; down_s = 3.0 } ])
      ~n:4
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate rejected a good schedule: %s" e

let test_named_scenarios () =
  List.iter
    (fun name ->
      if name <> "chaos" then
        match Faults.named ~n:4 name with
        | Ok sc ->
            check_bool (name ^ " validates") true (Faults.validate sc ~n:4 = Ok ());
            check_bool (name ^ " has a heal time") true (Faults.heal_s sc > 0.0)
        | Error e -> Alcotest.failf "named %s: %s" name e)
    Faults.scenario_names;
  match Faults.named ~n:4 "no-such-scenario" with
  | Ok _ -> Alcotest.fail "named accepted an unknown scenario"
  | Error _ -> ()

(* Exhaustive by construction: the inner match must cover every [spec]
   constructor (no wildcard), so adding a fault kind fails to compile until
   its heal time is decided here — keeping [heal_s] uniform across window
   specs. *)
let test_heal_time_all_constructors () =
  let expected (s : Faults.spec) =
    match s with
    | Faults.Crash { at_s; _ } | Faults.Recover { at_s; _ } -> at_s
    | Faults.Crash_recover { at_s; down_s; _ } -> at_s +. down_s
    | Faults.Isolate { until_s; _ }
    | Faults.Split { until_s; _ }
    | Faults.Drop { until_s; _ }
    | Faults.Straggle { until_s; _ }
    | Faults.Slow_link { until_s; _ }
    | Faults.Equivocate { until_s; _ }
    | Faults.Censor { until_s; _ }
    | Faults.Corrupt_sig { until_s; _ }
    | Faults.Replay { until_s; _ }
    | Faults.Bad_checkpoint { until_s; _ } ->
        until_s
  in
  let one_of_each =
    [
      Faults.Crash { node = 0; at_s = 3.0 };
      Faults.Recover { node = 0; at_s = 7.0 };
      Faults.Crash_recover { node = 1; at_s = 2.0; down_s = 4.0 };
      Faults.Isolate { node = 2; from_s = 1.0; until_s = 5.0 };
      Faults.Split { minority = [ 3 ]; from_s = 1.0; until_s = 6.0 };
      Faults.Drop { prob = 0.05; from_s = 0.5; until_s = 4.5 };
      Faults.Straggle { node = 2; from_s = 2.0; until_s = 9.0 };
      Faults.Slow_link { a = 0; b = 1; extra = Time_ns.ms 100; from_s = 1.0; until_s = 8.0 };
      Faults.Equivocate { node = 1; from_s = 2.0; until_s = 11.0 };
      Faults.Censor { node = 1; buckets = []; from_s = 2.0; until_s = 12.0 };
      Faults.Corrupt_sig { node = 1; from_s = 2.0; until_s = 13.0 };
      Faults.Replay { node = 1; from_s = 2.0; until_s = 14.0 };
      Faults.Bad_checkpoint { node = 1; from_s = 2.0; until_s = 15.0 };
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9))
        "heal time of a singleton schedule" (expected s)
        (Faults.heal_s (Faults.make ~name:"one" [ s ])))
    one_of_each;
  Alcotest.(check (float 1e-9))
    "heal time of the whole schedule is the latest event" 15.0
    (Faults.heal_s (Faults.make ~name:"all" one_of_each))

let test_random_deterministic () =
  let show sc = Format.asprintf "%a" Faults.pp sc in
  let a = Faults.random ~seed:42L ~n:4 ~duration_s:60.0 in
  let b = Faults.random ~seed:42L ~n:4 ~duration_s:60.0 in
  Alcotest.(check string) "same seed, same schedule" (show a) (show b);
  check_bool "random schedule validates" true (Faults.validate a ~n:4 = Ok ());
  check_bool "random schedule is non-empty" true (Faults.spec a <> [])

(* ------------------------------------------------------------------ *)
(* Scenario runs *)

let run_scenario ~system sc =
  let n = 4 in
  let cluster = Cluster.create ~tweak:fast ~system ~n ~seed:7L () in
  (match Faults.validate sc ~n with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scenario %s: %s" (Faults.name sc) e);
  Faults.apply sc cluster;
  Cluster.enable_invariants cluster;
  Cluster.start cluster;
  let until = Time_ns.of_sec_f 30.0 in
  let run_until =
    Time_ns.of_sec_f
      (Float.max 30.0 (Faults.heal_s sc +. Faults.liveness_grace_s (Cluster.config cluster)))
  in
  Runner.Workload.start ~cluster ~rate:100.0 ~resubmit:true ~sweep_until:run_until ~until ();
  Sim.Engine.run ~until:run_until (Cluster.engine cluster);
  (* Raises Invariant_violation with a readable report on a missing request. *)
  Cluster.check_liveness cluster;
  check_bool "workload submitted requests" true (Cluster.submitted cluster > 0);
  check_int "every request reached its reply quorum" (Cluster.submitted cluster)
    (Cluster.delivered_quorum cluster);
  cluster

let run_named ~system name =
  match Faults.named ~n:4 name with
  | Ok sc -> run_scenario ~system sc
  | Error e -> Alcotest.failf "named %s: %s" name e

(* The faulted node must be back, caught up and delivering — not merely
   tolerated by the rest of the cluster. *)
let check_rejoined cluster ~node =
  let nodes = Cluster.nodes cluster in
  check_bool "victim is back up" false (Core.Node.is_halted nodes.(node));
  check_bool "victim delivered requests" true (Core.Node.delivered_count nodes.(node) > 0);
  let max_epoch =
    Array.fold_left (fun acc nd -> max acc (Core.Node.current_epoch nd)) 0 nodes
  in
  check_bool "victim caught up to the cluster epoch" true
    (Core.Node.current_epoch nodes.(node) >= max_epoch - 1)

(* Named scenarios: crash-recover crashes node 1, partition-heal isolates
   node n-1 (see Faults.named). *)
let test_crash_recover system () =
  let cluster = run_named ~system:(Cluster.Iss system) "crash-recover" in
  check_rejoined cluster ~node:1

let test_partition_heal system () =
  let cluster = run_named ~system:(Cluster.Iss system) "partition-heal" in
  check_rejoined cluster ~node:3

(* ------------------------------------------------------------------ *)
(* Determinism: the same chaos schedule under the same seed must replay to
   byte-identical delivered logs. *)

let fingerprint cluster =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "n%d(%d):" (Core.Node.id node) (Core.Node.delivered_count node));
      let log = Core.Node.log node in
      (* Start at the pruned horizon: GC may have dropped the delivered
         prefix, and [get] reports pruned positions as absent. *)
      let sn = ref (Core.Log.pruned_below log) in
      let continue_ = ref true in
      while !continue_ do
        match Core.Log.get log ~sn:!sn with
        | None -> continue_ := false
        | Some p ->
            Buffer.add_string buf (Iss_crypto.Hash.short (Proto.Proposal.digest p));
            incr sn
      done;
      Buffer.add_char buf '\n')
    (Cluster.nodes cluster);
  Buffer.contents buf

let test_chaos_determinism () =
  let run () =
    let sc = Faults.random ~seed:99L ~n:4 ~duration_s:30.0 in
    let cluster = run_scenario ~system:(Cluster.Iss Core.Config.Raft) sc in
    (fingerprint cluster, Cluster.submitted cluster, Cluster.delivered_quorum cluster)
  in
  let log1, sub1, del1 = run () in
  let log2, sub2, del2 = run () in
  check_int "same submissions" sub1 sub2;
  check_int "same deliveries" del1 del2;
  Alcotest.(check string) "identical delivered logs" log1 log2

(* ------------------------------------------------------------------ *)
(* Client retransmission over a lossy network.

   The modeled workload injects requests directly into nodes, bypassing the
   network — so this test wires real Client processes through the simulated
   WAN (the examples/quickstart.ml pattern): requests, replies and bucket
   updates all cross the lossy network, and only the client's
   exponential-backoff retransmission plus node-side duplicate suppression
   can get every request delivered exactly once. *)

let test_lossy_retransmission () =
  let n = 4 in
  let num_clients = 3 in
  let per_client = 20 in
  let config = fast (Core.Config.pbft_default ~n) in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:11L in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in
  let send_from src ~dst msg =
    Sim.Network.send net ~src ~dst ~size:(Proto.Message.wire_size msg) msg
  in
  (* (node, request id) -> request_sn: the per-node reply cache, doubling as
     the exactly-once check. *)
  let reply_cache = Hashtbl.create 256 in
  let duplicate = ref None in
  let hooks =
    {
      Core.Node.default_hooks with
      on_deliver =
        Some
          (fun node (d : Core.Log.delivery) ->
            let me = Core.Node.id node in
            let key = (me, d.request.Proto.Request.id) in
            if Hashtbl.mem reply_cache key then
              duplicate :=
                Some
                  (Format.asprintf "node %d delivered request %a twice" me Proto.Request.pp_id
                     d.request.Proto.Request.id)
            else Hashtbl.replace reply_cache key d.request_sn;
            send_from me ~dst:d.request.Proto.Request.id.Proto.Request.client
              (Proto.Message.Reply
                 { req_id = d.request.Proto.Request.id; sn = d.request_sn; replier = me }));
      on_duplicate =
        (* A retransmission of an already-delivered request: answer from the
           reply cache (the original reply may have been dropped). *)
        Some
          (fun node (r : Proto.Request.t) ->
            let me = Core.Node.id node in
            match Hashtbl.find_opt reply_cache (me, r.Proto.Request.id) with
            | Some sn ->
                send_from me ~dst:r.Proto.Request.id.Proto.Request.client
                  (Proto.Message.Reply { req_id = r.Proto.Request.id; sn; replier = me })
            | None -> ());
      on_epoch_start =
        (fun node ~epoch ~leaders:_ ~bucket_leaders ->
          for c = n to n + num_clients - 1 do
            send_from (Core.Node.id node) ~dst:c
              (Proto.Message.Bucket_update { epoch; bucket_leaders })
          done);
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine ~send:(send_from id)
          ~orderer_factory:Pbft.Pbft_orderer.factory ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;
  let clients =
    Array.init num_clients (fun i ->
        Core.Client.create ~config ~id:(n + i) ~engine ~send:(send_from (n + i)) ())
  in
  Array.iteri
    (fun i client ->
      Sim.Network.add_endpoint net ~id:(n + i) ~category:Sim.Network.Client
        ~datacenter:(i * 5 mod 16)
        ~handler:(fun ~src ~size:_ msg -> Core.Client.on_message client ~src msg))
    clients;
  Array.iter Core.Node.start nodes;
  (* Ten percent of every message — requests and replies included — is lost
     during the first 25 seconds. *)
  ignore
    (Sim.Engine.schedule_at engine ~at:(Time_ns.of_sec_f 0.5) (fun () ->
         Sim.Network.set_drop_probability net 0.1));
  ignore
    (Sim.Engine.schedule_at engine ~at:(Time_ns.of_sec_f 25.0) (fun () ->
         Sim.Network.set_drop_probability net 0.0));
  Array.iter
    (fun client ->
      for k = 0 to per_client - 1 do
        ignore
          (Sim.Engine.schedule engine ~delay:(Time_ns.ms (500 * k)) (fun () ->
               Core.Client.submit_next client))
      done)
    clients;
  Sim.Engine.run ~until:(Time_ns.sec 120) engine;
  (match !duplicate with
  | Some report -> Alcotest.fail report
  | None -> ());
  Array.iteri
    (fun i client ->
      check_int
        (Printf.sprintf "client %d confirmed all its requests" (n + i))
        per_client (Core.Client.completed client))
    clients;
  let retx = Array.fold_left (fun acc c -> acc + Core.Client.retransmissions c) 0 clients in
  check_bool "the lossy window forced retransmissions" true (retx > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "dsl",
        [
          Alcotest.test_case "validate rejects bad schedules" `Quick test_validate_rejects;
          Alcotest.test_case "named scenarios resolve" `Quick test_named_scenarios;
          Alcotest.test_case "heal time covers every constructor" `Quick
            test_heal_time_all_constructors;
          Alcotest.test_case "random schedules are deterministic" `Quick
            test_random_deterministic;
        ] );
      ( "crash-recover",
        [
          Alcotest.test_case "iss-pbft" `Quick (test_crash_recover Core.Config.PBFT);
          Alcotest.test_case "iss-hotstuff" `Quick (test_crash_recover Core.Config.HotStuff);
          Alcotest.test_case "iss-raft" `Quick (test_crash_recover Core.Config.Raft);
        ] );
      ( "partition-heal",
        [
          Alcotest.test_case "iss-raft" `Quick (test_partition_heal Core.Config.Raft);
          Alcotest.test_case "iss-hotstuff" `Quick (test_partition_heal Core.Config.HotStuff);
        ] );
      ( "determinism",
        [ Alcotest.test_case "chaos schedule replays identically" `Quick test_chaos_determinism ] );
      ( "retransmission",
        [
          Alcotest.test_case "lossy network, exactly-once delivery" `Quick
            test_lossy_retransmission;
        ] );
    ]
