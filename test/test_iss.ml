(* Integration tests: full ISS clusters over the simulated WAN, checking
   the paper's SMR properties and fault-handling mechanisms end to end. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type cluster = {
  engine : Sim.Engine.t;
  net : Proto.Message.t Sim.Network.t;
  nodes : Core.Node.t array;
  deliveries : (int * Core.Log.delivery) list ref;  (* (node, delivery), reversed *)
}

let factory_for (config : Core.Config.t) =
  match config.Core.Config.protocol with
  | Core.Config.PBFT -> Pbft.Pbft_orderer.factory
  | Core.Config.HotStuff -> Hotstuff.Hotstuff_orderer.factory
  | Core.Config.Raft -> Raft.Raft_orderer.factory

let build ?(seed = 42L) ?(extra_hooks = fun h -> h) config =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let net = Sim.Network.create engine ~rng () in
  let n = config.Core.Config.n in
  let placement = Sim.Topology.assign_uniform ~n in
  let deliveries = ref [] in
  let hooks =
    extra_hooks
      {
        Core.Node.default_hooks with
        on_deliver = Some (fun node d -> deliveries := (Core.Node.id node, d) :: !deliveries);
      }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine
          ~send:(fun ~dst msg ->
            Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
          ~orderer_factory:(factory_for config) ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;
  { engine; net; nodes; deliveries }

let submit_all c r = Array.iter (fun node -> Core.Node.submit node r) c.nodes

let submit_spread c ~clients ~per_client ~gap_ms =
  for k = 0 to (clients * per_client) - 1 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(Sim.Time_ns.ms (gap_ms * k)) (fun () ->
           let r =
             Proto.Request.make ~client:(1000 + (k mod clients)) ~ts:(k / clients)
               ~submitted_at:(Sim.Engine.now c.engine) ()
           in
           submit_all c r))
  done

let deliveries_at c node =
  List.rev (List.filter_map (fun (i, d) -> if i = node then Some d else None) !(c.deliveries))

(* ------------------------------------------------------------------ *)
(* SMR properties across protocols *)

let test_no_duplication config () =
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  (* Submit each request several times with retransmission gaps — the
     no-duplication guarantee must hold regardless. *)
  for k = 0 to 39 do
    for copy = 0 to 2 do
      ignore
        (Sim.Engine.schedule c.engine
           ~delay:(Sim.Time_ns.ms ((40 * k) + (1500 * copy)))
           (fun () ->
             let r =
               Proto.Request.make ~client:(500 + (k mod 4)) ~ts:(k / 4)
                 ~submitted_at:(Sim.Engine.now c.engine) ()
             in
             submit_all c r))
    done
  done;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 90) c.engine;
  let ds = deliveries_at c 0 in
  check_int "all 40 distinct requests delivered" 40 (List.length ds);
  let keys =
    List.map (fun (d : Core.Log.delivery) -> Proto.Request.id_key d.request.Proto.Request.id) ds
  in
  check_int "no duplicates (SMR no-duplication)" 40 (List.length (List.sort_uniq compare keys))

let test_total_order config () =
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  submit_spread c ~clients:8 ~per_client:10 ~gap_ms:30;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 90) c.engine;
  let d0 = deliveries_at c 0 in
  check_bool "node 0 delivered something" true (List.length d0 > 0);
  Array.iteri
    (fun i _ ->
      let di = deliveries_at c i in
      let common = min (List.length d0) (List.length di) in
      check_bool (Printf.sprintf "node %d made progress" i) true (common > 0);
      (* SMR2/SMR3: the delivery sequences agree on their common prefix. *)
      List.iteri
        (fun k ((a : Core.Log.delivery), (b : Core.Log.delivery)) ->
          if not (Proto.Request.equal_id a.request.Proto.Request.id b.request.Proto.Request.id)
          then Alcotest.failf "node %d diverges from node 0 at delivery %d" i k;
          check_int "same request sn" a.request_sn b.request_sn)
        (List.combine
           (List.filteri (fun k _ -> k < common) d0)
           (List.filteri (fun k _ -> k < common) di)))
    c.nodes;
  (* Eq. (2): request sequence numbers are exactly 0, 1, 2, ... *)
  List.iteri (fun k (d : Core.Log.delivery) -> check_int "dense request sns" k d.request_sn) d0

(* ------------------------------------------------------------------ *)
(* Fault handling *)

let short_epochs config = { config with Core.Config.min_epoch_length = 24 }

let test_crash_leader_progress () =
  let config = short_epochs (Core.Config.pbft_default ~n:4) in
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  submit_spread c ~clients:4 ~per_client:30 ~gap_ms:100;
  (* Crash node 1 early: its segments must fill with ⊥ via view change and
     the system must keep delivering (f = 1 tolerated). *)
  ignore
    (Sim.Engine.schedule c.engine ~delay:(Sim.Time_ns.ms 500) (fun () ->
         Sim.Network.crash c.net 1;
         Core.Node.halt c.nodes.(1)));
  Sim.Engine.run ~until:(Sim.Time_ns.sec 120) c.engine;
  let ds = deliveries_at c 0 in
  check_int "all 120 requests delivered despite crash" 120 (List.length ds);
  (* The crashed leader's positions show as ⊥ somewhere in the log. *)
  let log = Core.Node.log c.nodes.(0) in
  let nils = Core.Log.nil_entries log ~from_sn:0 ~to_sn:(Core.Log.first_undelivered log - 1) in
  check_bool "⊥ entries exist for the dead leader" true (List.length nils > 0);
  (* BLACKLIST: node 1 excluded from the current leader set. *)
  check_bool "crashed node not a leader anymore" false
    (Array.exists (fun l -> l = 1) (Core.Node.epoch_leaders c.nodes.(0)))

let test_epochs_advance () =
  let config = short_epochs (Core.Config.pbft_default ~n:4) in
  let epochs_seen = ref [] in
  let extra_hooks h =
    {
      h with
      Core.Node.on_epoch_start =
        (fun node ~epoch ~leaders:_ ~bucket_leaders:_ ->
          if Core.Node.id node = 0 then epochs_seen := epoch :: !epochs_seen);
    }
  in
  let c = build ~extra_hooks config in
  Array.iter Core.Node.start c.nodes;
  submit_spread c ~clients:4 ~per_client:50 ~gap_ms:50;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) c.engine;
  let epochs = List.rev !epochs_seen in
  check_bool "multiple epochs" true (List.length epochs >= 3);
  List.iteri (fun i e -> check_int "consecutive epochs" i e) epochs

let test_checkpoint_stability () =
  let config = short_epochs (Core.Config.pbft_default ~n:4) in
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  submit_spread c ~clients:4 ~per_client:40 ~gap_ms:40;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) c.engine;
  Array.iteri
    (fun i node ->
      match Core.Node.last_stable_checkpoint node with
      | Some cert ->
          check_bool
            (Printf.sprintf "node %d checkpoint has quorum sigs" i)
            true
            (List.length cert.Proto.Message.cc_sigs >= 3);
          (* Verify every signature in the certificate. *)
          let material =
            Proto.Message.checkpoint_material ~epoch:cert.Proto.Message.cc_epoch
              ~max_sn:cert.Proto.Message.cc_max_sn ~root:cert.Proto.Message.cc_root
              ~req_count:cert.Proto.Message.cc_req_count
              ~policy:cert.Proto.Message.cc_policy
          in
          List.iter
            (fun (signer, s) ->
              check_bool "checkpoint sig valid" true
                (Iss_crypto.Signature.verify
                   (Iss_crypto.Signature.public_of_id signer)
                   material s))
            cert.Proto.Message.cc_sigs
      | None -> Alcotest.failf "node %d has no stable checkpoint" i)
    c.nodes

let test_state_transfer_after_partition () =
  let config = short_epochs (Core.Config.pbft_default ~n:4) in
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  submit_spread c ~clients:4 ~per_client:60 ~gap_ms:80;
  (* Partition node 3 away for a while; with n=4 and f=1 the rest keep
     going, so node 3 must catch up (live instances or state transfer). *)
  ignore
    (Sim.Engine.schedule c.engine ~delay:(Sim.Time_ns.sec 2) (fun () ->
         Sim.Network.set_partition c.net (Some (fun id -> if id = 3 then 1 else 0))));
  ignore
    (Sim.Engine.schedule c.engine ~delay:(Sim.Time_ns.sec 60) (fun () ->
         Sim.Network.set_partition c.net None));
  Sim.Engine.run ~until:(Sim.Time_ns.sec 240) c.engine;
  let frontier i = Core.Log.first_undelivered (Core.Node.log c.nodes.(i)) in
  check_bool "majority progressed during partition" true (frontier 0 > 0);
  (* Totality: node 3 catches up to the others after healing (within the
     last in-flight epoch). *)
  check_bool "node 3 caught up after heal" true (frontier 3 >= frontier 0 - 48)

let test_log_bounded_by_gc () =
  (* Long fault-free run over many epochs: GC must prune delivered entries
     behind the stable-checkpoint retention window, so each node's retained
     log stays bounded no matter how long the run is. *)
  let config =
    {
      (short_epochs (Core.Config.pbft_default ~n:4)) with
      Core.Config.log_retention_epochs = 3;
      (* Keep idle epochs turning over quickly so the run spans many of
         them: empty keep-alive batches are cut every epoch_change_timeout/2,
         so a short epoch-change timeout drives the idle tail of the run
         through many checkpoint/GC cycles. *)
      max_batch_timeout = Sim.Time_ns.ms 250;
      epoch_change_timeout = Sim.Time_ns.sec 2;
    }
  in
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  submit_spread c ~clients:4 ~per_client:200 ~gap_ms:20;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 120) c.engine;
  let epoch_len = config.Core.Config.min_epoch_length in
  Array.iteri
    (fun i node ->
      let log = Core.Node.log node in
      let frontier = Core.Log.first_undelivered log in
      if frontier <= 20 * epoch_len then
        Alcotest.failf "node %d only reached frontier %d (epoch %d) — expected > %d"
          i frontier (Core.Node.current_epoch node) (20 * epoch_len);
      check_bool (Printf.sprintf "node %d pruned" i) true (Core.Log.pruned_below log > 0);
      (* Retained = delivered-but-kept window + commit queue.  The bound is
         retention (3 epochs) + the current epoch + skew slack while
         certificates stabilize. *)
      let retained = frontier - Core.Log.pruned_below log + Core.Log.committed_ahead log in
      if retained > 8 * epoch_len then
        Alcotest.failf "node %d retains %d entries after %d delivered — GC is not keeping up"
          i retained frontier)
    c.nodes

let test_straggler_impact () =
  let config = short_epochs (Core.Config.pbft_default ~n:4) in
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  Core.Node.set_straggler c.nodes.(1) true;
  submit_spread c ~clients:4 ~per_client:30 ~gap_ms:50;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 120) c.engine;
  (* The straggler proposes empty batches, so requests in its buckets wait
     for re-assignment; everything still delivers eventually. *)
  let ds = deliveries_at c 0 in
  check_int "eventually all delivered despite straggler" 120 (List.length ds)

(* Randomized schedules: agreement and progress must hold for any seed and
   any crash time.  (Conflicting commits would raise inside Log.commit, so
   merely completing the run already checks SB agreement; we additionally
   compare delivery prefixes.) *)
let prop_agreement_random_crashes =
  QCheck.Test.make ~name:"agreement + progress under random crash schedules" ~count:6
    QCheck.(pair (int_range 1 1000) (int_range 0 20_000))
    (fun (seed, crash_ms) ->
      let config = short_epochs (Core.Config.pbft_default ~n:4) in
      let c = build ~seed:(Int64.of_int seed) config in
      Array.iter Core.Node.start c.nodes;
      submit_spread c ~clients:4 ~per_client:20 ~gap_ms:60;
      let victim = 1 + (seed mod 3) in
      ignore
        (Sim.Engine.schedule c.engine ~delay:(Sim.Time_ns.ms crash_ms) (fun () ->
             Sim.Network.crash c.net victim;
             Core.Node.halt c.nodes.(victim)));
      Sim.Engine.run ~until:(Sim.Time_ns.sec 120) c.engine;
      let d0 = deliveries_at c 0 in
      let agree i =
        let di = deliveries_at c i in
        let common = min (List.length d0) (List.length di) in
        List.for_all2
          (fun (a : Core.Log.delivery) (b : Core.Log.delivery) ->
            Proto.Request.equal_id a.request.Proto.Request.id b.request.Proto.Request.id)
          (List.filteri (fun k _ -> k < common) d0)
          (List.filteri (fun k _ -> k < common) di)
      in
      List.length d0 > 0
      && List.for_all agree (List.filter (fun i -> i <> victim) [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Byzantine-ish inputs *)

let test_invalid_signature_rejected () =
  let config = Core.Config.pbft_default ~n:4 in
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  let bad =
    Proto.Request.make ~client:700 ~ts:0 ~sig_data:(Proto.Request.Presumed false)
      ~submitted_at:Sim.Time_ns.zero ()
  in
  let good = Proto.Request.make ~client:701 ~ts:0 ~submitted_at:Sim.Time_ns.zero () in
  submit_all c bad;
  submit_all c good;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 30) c.engine;
  let ds = deliveries_at c 0 in
  check_int "only the valid request delivered" 1 (List.length ds);
  match ds with
  | [ d ] -> check_int "it is the good one" 701 d.request.Proto.Request.id.Proto.Request.client
  | _ -> Alcotest.fail "unexpected deliveries"

let test_out_of_window_rejected () =
  let config = Core.Config.pbft_default ~n:4 in
  let c = build config in
  Array.iter Core.Node.start c.nodes;
  let too_far =
    Proto.Request.make ~client:800
      ~ts:(config.Core.Config.client_watermark_window + 5)
      ~submitted_at:Sim.Time_ns.zero ()
  in
  submit_all c too_far;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 30) c.engine;
  check_int "watermark-violating request not delivered" 0 (List.length (deliveries_at c 0))

(* ------------------------------------------------------------------ *)

let () =
  let e2e name config =
    [
      Alcotest.test_case (name ^ " no-duplication") `Slow (test_no_duplication config);
      Alcotest.test_case (name ^ " total order") `Slow (test_total_order config);
    ]
  in
  Alcotest.run "iss-integration"
    [
      ( "smr-properties",
        e2e "pbft" (Core.Config.pbft_default ~n:4)
        @ e2e "hotstuff" (Core.Config.hotstuff_default ~n:4)
        @ e2e "raft" (Core.Config.raft_default ~n:4) );
      ( "faults",
        [
          Alcotest.test_case "crash leader, keep delivering" `Slow test_crash_leader_progress;
          Alcotest.test_case "epochs advance consecutively" `Slow test_epochs_advance;
          Alcotest.test_case "checkpoints stabilize with quorum sigs" `Slow
            test_checkpoint_stability;
          Alcotest.test_case "state transfer after partition" `Slow
            test_state_transfer_after_partition;
          Alcotest.test_case "straggler tolerated" `Slow test_straggler_impact;
          Alcotest.test_case "log bounded by checkpoint GC" `Slow test_log_bounded_by_gc;
          QCheck_alcotest.to_alcotest prop_agreement_random_crashes;
        ] );
      ( "request-validation",
        [
          Alcotest.test_case "invalid signature rejected" `Quick test_invalid_signature_rejected;
          Alcotest.test_case "out-of-window rejected" `Quick test_out_of_window_rejected;
        ] );
    ]
