(* Observability subsystem: JSON printer/parser, lifecycle tracer, metric
   registry, trace sinks — and the zero-perturbation guarantee: instrumented
   runs must produce bit-identical results to bare ones. *)

module J = Obs.Jsonx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Jsonx *)

let test_jsonx_print () =
  check_string "scalars" {|[null,true,-3,1.5,"a\"b\\c\nd"]|}
    (J.to_string (J.List [ J.Null; J.Bool true; J.Int (-3); J.Float 1.5; J.String "a\"b\\c\nd" ]));
  check_string "object" {|{"a":1,"b":[]}|}
    (J.to_string (J.Obj [ ("a", J.Int 1); ("b", J.List []) ]));
  check_string "non-finite floats degrade to null" {|[null,null]|}
    (J.to_string (J.List [ J.Float nan; J.Float infinity ]));
  check_string "control chars escaped" {|"\u0001"|} (J.to_string (J.String "\001"))

let test_jsonx_roundtrip () =
  let v =
    J.Obj
      [
        ("name", J.String "node.nic.tx_backlog_s");
        ("node", J.Int 3);
        ("values", J.List [ J.Float 0.25; J.Int 7; J.Null; J.Bool false ]);
        ("nested", J.Obj [ ("esc", J.String "tab\there \"and\" slash\\") ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' -> check_string "roundtrip" (J.to_string v) (J.to_string v')

let test_jsonx_parse_errors () =
  let bad s = match J.of_string s with Ok _ -> false | Error _ -> true in
  check_bool "trailing garbage" true (bad "1 x");
  check_bool "unterminated string" true (bad {|"abc|});
  check_bool "bare word" true (bad "nope");
  check_bool "unclosed list" true (bad "[1,2");
  check_bool "missing colon" true (bad {|{"a" 1}|})

let test_jsonx_accessors () =
  let v = J.Obj [ ("x", J.Int 2); ("l", J.List [ J.Float 0.5 ]) ] in
  check_bool "member" true (J.member "x" v = Some (J.Int 2));
  check_bool "missing member" true (J.member "y" v = None);
  check_bool "int widens" true (J.member "x" v |> Option.get |> J.to_float = Some 2.0);
  check_int "to_list" 1 (List.length (Option.get (J.to_list (Option.get (J.member "l" v)))))

(* ------------------------------------------------------------------ *)
(* Tracer + registry on a real (small) simulation *)

let run_instrumented ?(sample = 1) ?max_events () =
  let engine = Sim.Engine.create () in
  let tracer = Obs.Tracer.create ~sample ?max_events ~engine () in
  let registry = Obs.Registry.create () in
  let r =
    Runner.Experiment.run ~engine ~tracer ~registry ~system:(Runner.Cluster.Iss Core.Config.PBFT)
      ~n:4 ~rate:400.0 ~duration_s:6.0 ~seed:7L ()
  in
  (r, tracer, registry, engine)

let test_tracer_covers_all_phases () =
  let _r, tracer, _registry, _engine = run_instrumented () in
  let seen = Hashtbl.create 8 in
  Obs.Tracer.iter tracer (fun ~req:_ ~node:_ ~at:_ phase -> Hashtbl.replace seen phase ());
  List.iter
    (fun phase ->
      check_bool (Printf.sprintf "phase %s recorded" (Obs.Tracer.phase_name phase)) true
        (Hashtbl.mem seen phase))
    Obs.Tracer.all_phases;
  check_bool "events recorded" true (Obs.Tracer.num_events tracer > 0);
  check_int "nothing dropped" 0 (Obs.Tracer.dropped tracer)

let test_tracer_jsonl_parses () =
  let _r, tracer, _registry, _engine = run_instrumented () in
  let lines = String.split_on_char '\n' (String.trim (Obs.Tracer.to_jsonl_string tracer)) in
  check_bool "at least one line per event" true (List.length lines >= Obs.Tracer.num_events tracer);
  let phase_names = List.map Obs.Tracer.phase_name Obs.Tracer.all_phases in
  List.iter
    (fun line ->
      match J.of_string line with
      | Error e -> Alcotest.failf "JSONL line does not parse: %s (%s)" line e
      | Ok v ->
          if J.member "dropped_events" v = None then begin
            check_bool "req field" true (J.member "req" v <> None);
            check_bool "t field" true (J.member "t" v <> None);
            match J.member "phase" v with
            | Some (J.String p) -> check_bool ("known phase " ^ p) true (List.mem p phase_names)
            | _ -> Alcotest.fail "phase field missing"
          end)
    lines

let test_tracer_sampling_and_bound () =
  let _r, all, _, _ = run_instrumented ~sample:1 () in
  let _r, sampled, _, _ = run_instrumented ~sample:8 () in
  check_bool "sampling records fewer events" true
    (Obs.Tracer.num_events sampled < Obs.Tracer.num_events all);
  check_bool "sampling records something" true (Obs.Tracer.num_events sampled > 0);
  let _r, capped, _, _ = run_instrumented ~max_events:100 () in
  check_int "memory bound respected" 100 (Obs.Tracer.num_events capped);
  check_bool "overflow counted, not stored" true (Obs.Tracer.dropped capped > 0)

let test_breakdown () =
  let _r, tracer, _registry, _engine = run_instrumented () in
  let bd = Obs.Tracer.breakdown tracer in
  check_bool "has end-to-end transition" true (List.mem_assoc "submit -> reply" bd);
  let e2e = List.assoc "submit -> reply" bd in
  check_bool "end-to-end samples" true (Sim.Metrics.Histogram.count e2e > 0);
  check_bool "p99 >= p95" true
    (Sim.Metrics.Histogram.percentile e2e 99.0 >= Sim.Metrics.Histogram.percentile e2e 95.0);
  List.iter
    (fun (name, h) ->
      check_bool (name ^ " non-negative mean") true
        (Sim.Metrics.Histogram.count h = 0 || Sim.Metrics.Histogram.mean h >= 0.0))
    bd

let test_registry_snapshot () =
  let _r, _tracer, registry, engine = run_instrumented () in
  check_bool "metrics registered" true (Obs.Registry.num_metrics registry > 0);
  let snap = Obs.Registry.snapshot registry ~at:(Sim.Engine.now engine) in
  (* The snapshot must survive a print/parse roundtrip and carry the core
     gauge set from DESIGN.md §8. *)
  (match J.of_string (J.to_string snap) with
  | Error e -> Alcotest.failf "snapshot does not reparse: %s" e
  | Ok _ -> ());
  let metrics = Option.get (J.to_list (Option.get (J.member "metrics" snap))) in
  let names =
    List.filter_map
      (fun m -> match J.member "name" m with Some (J.String s) -> Some s | _ -> None)
      metrics
  in
  List.iter
    (fun expected ->
      check_bool ("metric " ^ expected) true (List.mem expected names))
    [
      "net.messages_sent";
      "cluster.delivered_quorum";
      "cluster.latency_s";
      "node.bucket_queue.occupancy";
      "node.commit_queue.depth";
      "node.orderer.instances";
      "node.checkpoint.lag_epochs";
      "node.nic.tx_backlog_s";
    ];
  (* Sanity of one polled value: delivered counter matches the result. *)
  let delivered =
    List.find_map
      (fun m ->
        match (J.member "name" m, J.member "value" m) with
        | Some (J.String "cluster.delivered_quorum"), Some v -> J.to_float v
        | _ -> None)
      metrics
  in
  check_bool "delivered gauge positive" true (Option.get delivered > 0.0)

(* The observability contract that protects every benchmark number: an
   instrumented run and a bare run of the same seed produce identical
   results. *)
let test_instrumentation_does_not_perturb () =
  let bare =
    Runner.Experiment.run ~system:(Runner.Cluster.Iss Core.Config.PBFT) ~n:4 ~rate:400.0
      ~duration_s:6.0 ~seed:7L ()
  in
  let traced, _, _, _ = run_instrumented () in
  let open Runner.Experiment in
  check_int "submitted" bare.submitted traced.submitted;
  check_int "delivered" bare.delivered traced.delivered;
  check_int "sim events" bare.sim_events traced.sim_events;
  check_int "net messages" bare.net_messages traced.net_messages;
  check_int "net bytes" bare.net_bytes traced.net_bytes;
  Alcotest.(check (float 0.0)) "throughput" bare.throughput traced.throughput;
  Alcotest.(check (float 0.0)) "mean latency" bare.mean_latency_s traced.mean_latency_s;
  Alcotest.(check (float 0.0)) "p99 latency" bare.p99_latency_s traced.p99_latency_s;
  check_int "series length" (Array.length bare.series) (Array.length traced.series);
  Array.iteri
    (fun i v -> Alcotest.(check (float 0.0)) (Printf.sprintf "series bin %d" i) v traced.series.(i))
    bare.series

let test_result_json () =
  let r, _, _, _ = run_instrumented () in
  let j = Runner.Experiment.result_to_json ~series:true r in
  match J.of_string (J.to_string j) with
  | Error e -> Alcotest.failf "result json does not reparse: %s" e
  | Ok v ->
      check_bool "p99 present" true (J.member "p99_latency_s" v <> None);
      check_bool "p99 >= p95" true
        (Option.get (J.to_float (Option.get (J.member "p99_latency_s" v)))
        >= Option.get (J.to_float (Option.get (J.member "p95_latency_s" v))));
      let series = Option.get (J.to_list (Option.get (J.member "series_req_s" v))) in
      check_int "series exported" (Array.length r.Runner.Experiment.series) (List.length series)

(* ------------------------------------------------------------------ *)
(* Trace sinks *)

let test_jsonl_sink () =
  let buf = Buffer.create 256 in
  let engine = Sim.Engine.create () in
  Obs.Trace_sink.with_sink (Obs.Trace_sink.jsonl buf ~min_level:Sim.Trace.Debug) (fun () ->
      Sim.Trace.emit engine Sim.Trace.Info "hello %d \"quoted\"" 42);
  let line = String.trim (Buffer.contents buf) in
  match J.of_string line with
  | Error e -> Alcotest.failf "sink line does not parse: %s (%s)" line e
  | Ok v ->
      check_bool "msg field" true
        (J.member "msg" v = Some (J.String {|hello 42 "quoted"|}));
      check_bool "level field" true (J.member "level" v = Some (J.String "info"))

let test_sink_restored () =
  let buf = Buffer.create 16 in
  Obs.Trace_sink.with_sink (Obs.Trace_sink.buffer buf ~min_level:Sim.Trace.Debug) (fun () -> ());
  check_bool "sink uninstalled after with_sink" true (Sim.Trace.sink () = None)

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "printing" `Quick test_jsonx_print;
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_jsonx_parse_errors;
          Alcotest.test_case "accessors" `Quick test_jsonx_accessors;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "covers all seven phases" `Quick test_tracer_covers_all_phases;
          Alcotest.test_case "JSONL parses" `Quick test_tracer_jsonl_parses;
          Alcotest.test_case "sampling + memory bound" `Quick test_tracer_sampling_and_bound;
          Alcotest.test_case "latency breakdown" `Quick test_breakdown;
        ] );
      ( "registry",
        [ Alcotest.test_case "snapshot" `Quick test_registry_snapshot ] );
      ( "integration",
        [
          Alcotest.test_case "no perturbation vs bare run" `Quick
            test_instrumentation_does_not_perturb;
          Alcotest.test_case "result json" `Quick test_result_json;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
          Alcotest.test_case "restore" `Quick test_sink_restored;
        ] );
    ]
