(* Overload robustness: node-side admission control and shedding, wire
   pushback, client backoff jitter and retry budgets, and the end-to-end
   flow-control conformance rules (exactly-once or explicit give-up). *)

module Time_ns = Sim.Time_ns

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Client side: jitter, retry budgets, Busy pushback *)

type sent = { dst : int; at : Time_ns.t; msg : Proto.Message.t }

let make_client ?(n = 4) ?(id = 100) ?jitter ?retry_budget ~engine () =
  let config = Core.Config.pbft_default ~n in
  let sent = ref [] in
  let gave_up = ref [] in
  let client =
    Core.Client.create ~config ~id ~engine
      ~send:(fun ~dst msg -> sent := { dst; at = Sim.Engine.now engine; msg } :: !sent)
      ?jitter ?retry_budget
      ~retx_base:(Time_ns.sec 1) ~retx_max:(Time_ns.sec 8)
      ~on_give_up:(fun r -> gave_up := r :: !gave_up)
      ()
  in
  (client, sent, gave_up)

(* Distinct send instants: one submission or retransmission fans out to up
   to three target nodes, all at the same engine time. *)
let request_send_times sent =
  List.sort_uniq compare
    (List.filter_map
       (fun { at; msg; _ } ->
         match msg with Proto.Message.Request_msg _ -> Some at | _ -> None)
       !sent)

let test_jitter_desynchronizes () =
  (* Two clients with identical backoff parameters but different ids: with
     jitter on, their retransmission schedules must diverge (each draws from
     its own id-seeded RNG).  This is the regression guard for lockstep
     retransmission storms. *)
  let engine = Sim.Engine.create () in
  let c1, sent1, _ = make_client ~id:100 ~jitter:0.25 ~engine () in
  let c2, sent2, _ = make_client ~id:200 ~jitter:0.25 ~engine () in
  Core.Client.submit_next c1;
  Core.Client.submit_next c2;
  Sim.Engine.run ~until:(Time_ns.sec 30) engine;
  let t1 = request_send_times sent1 and t2 = request_send_times sent2 in
  check_bool "both retransmitted" true (List.length t1 > 2 && List.length t2 > 2);
  (* Drop the initial sends (both at t=0 by construction) and compare the
     retransmission instants pairwise. *)
  let retx l = List.tl l in
  check_bool "jittered schedules diverge" true (retx t1 <> retx t2);
  (* Control: with jitter off the two schedules are in lockstep. *)
  let engine = Sim.Engine.create () in
  let c3, sent3, _ = make_client ~id:100 ~jitter:0.0 ~engine () in
  let c4, sent4, _ = make_client ~id:200 ~jitter:0.0 ~engine () in
  Core.Client.submit_next c3;
  Core.Client.submit_next c4;
  Sim.Engine.run ~until:(Time_ns.sec 30) engine;
  check_bool "no jitter means lockstep" true
    (request_send_times sent3 = request_send_times sent4)

let test_retry_budget_gives_up () =
  let engine = Sim.Engine.create () in
  let client, _, gave_up = make_client ~retry_budget:3 ~jitter:0.25 ~engine () in
  Core.Client.submit_next client;
  check_int "in flight" 1 (Core.Client.in_flight client);
  Sim.Engine.run ~until:(Time_ns.sec 60) engine;
  check_int "budget spent: request abandoned" 1 (List.length !gave_up);
  check_int "gave_up counter" 1 (Core.Client.gave_up client);
  check_int "no longer in flight" 0 (Core.Client.in_flight client);
  check_int "exactly budget retransmissions" 3 (Core.Client.retransmissions client)

let test_busy_defers_retransmission () =
  let engine = Sim.Engine.create () in
  let client, sent, _ = make_client ~engine () in
  Core.Client.submit_next client;
  let req_id = { Proto.Request.client = 100; ts = 0 } in
  (* The node pushes back with a 5 s hint: the next retransmission must not
     fire before t=5s even though retx_base is 1 s. *)
  Core.Client.on_message client ~src:0
    (Proto.Message.Busy { req_id; retry_after = Time_ns.sec 5; shed = true });
  check_int "pushback accepted" 1 (Core.Client.pushbacks_received client);
  Sim.Engine.run ~until:(Time_ns.sec 20) engine;
  (match request_send_times sent with
  | _initial :: first_retx :: _ ->
      check_bool
        (Printf.sprintf "first retransmission honours the hint (%.2fs)"
           (Time_ns.to_sec_f first_retx))
        true
        (first_retx >= Time_ns.sec 5)
  | _ -> Alcotest.fail "expected at least one retransmission");
  check_bool "still retransmitting after the hint" true
    (List.length (request_send_times sent) > 2)

(* ------------------------------------------------------------------ *)
(* Node side: admission control and shed policies *)

type pushback_event = { p_req : Proto.Request.t; p_shed : bool }

type node_fixture = {
  engine : Sim.Engine.t;
  nodes : Core.Node.t array;
  pushbacks : pushback_event list ref;  (* reversed *)
}

let build_nodes ?(n = 4) ?(capacity = 2) ?(policy = Core.Config.Reject_new)
    ?(watermark = 1.0) () =
  let config =
    {
      (Core.Config.pbft_default ~n) with
      Core.Config.buckets_per_leader = 1;
      flow_control = true;
      bucket_capacity = capacity;
      shed_policy = policy;
      pushback_watermark = watermark;
    }
  in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:7L in
  let net = Sim.Network.create engine ~rng () in
  let placement = Sim.Topology.assign_uniform ~n in
  let pushbacks = ref [] in
  let hooks =
    {
      Core.Node.default_hooks with
      on_pushback =
        Some (fun _ r ~retry_after:_ ~shed -> pushbacks := { p_req = r; p_shed = shed } :: !pushbacks);
    }
  in
  let nodes =
    Array.init n (fun id ->
        Core.Node.create ~config ~id ~engine
          ~send:(fun ~dst msg ->
            Sim.Network.send net ~src:id ~dst ~size:(Proto.Message.wire_size msg) msg)
          ~orderer_factory:Pbft.Pbft_orderer.factory ~hooks ())
  in
  Array.iteri
    (fun id node ->
      Sim.Network.add_endpoint net ~id ~category:Sim.Network.Node
        ~datacenter:placement.(id)
        ~handler:(fun ~src ~size:_ msg -> Core.Node.on_message node ~src msg))
    nodes;
  { engine; nodes; pushbacks }

(* A stream of requests that all map to the same bucket (bucket_of_id mixes
   client and timestamp, so same-client requests spread over buckets). *)
let same_bucket_requests ~num_buckets ~count =
  let target = ref (-1) in
  let out = ref [] in
  let client = ref 1000 in
  let ts = ref 0 in
  while List.length !out < count do
    let r = Proto.Request.make ~client:!client ~ts:!ts ~submitted_at:Time_ns.zero () in
    let b = Proto.Request.bucket_of_id ~num_buckets r.Proto.Request.id in
    if !target = -1 then target := b;
    if b = !target then out := r :: !out;
    incr ts;
    if !ts > 10_000 then begin
      incr client;
      ts := 0
    end
  done;
  List.rev !out

let test_reject_new_sheds_incoming () =
  let fx = build_nodes ~capacity:2 ~policy:Core.Config.Reject_new () in
  let node = fx.nodes.(0) in
  let reqs = same_bucket_requests ~num_buckets:4 ~count:5 in
  List.iter (Core.Node.submit node) reqs;
  check_int "three incoming requests shed" 3 (Core.Node.shed_count node);
  let shed = List.filter (fun e -> e.p_shed) !(fx.pushbacks) in
  check_int "shed events surfaced via the hook" 3 (List.length shed);
  (* Reject_new drops the incoming request, not a queued victim. *)
  let expected = List.filteri (fun i _ -> i >= 2) reqs in
  let shed_ids = List.rev_map (fun e -> e.p_req.Proto.Request.id) shed in
  check_bool "the newest requests were the ones shed" true
    (List.sort compare shed_ids
    = List.sort compare (List.map (fun (r : Proto.Request.t) -> r.Proto.Request.id) expected));
  (* A retransmission of a queued request is never shed: admission treats
     it as a duplicate, not new load. *)
  let shed_before = Core.Node.shed_count node in
  Core.Node.submit node (List.hd reqs);
  check_int "retransmission of a queued request not shed" shed_before
    (Core.Node.shed_count node)

let test_drop_oldest_evicts_victim () =
  let fx = build_nodes ~capacity:2 ~policy:Core.Config.Drop_oldest () in
  let node = fx.nodes.(0) in
  let reqs = same_bucket_requests ~num_buckets:4 ~count:3 in
  List.iter (Core.Node.submit node) reqs;
  check_int "one request shed" 1 (Core.Node.shed_count node);
  (match List.filter (fun e -> e.p_shed) !(fx.pushbacks) with
  | [ e ] ->
      check_bool "the oldest queued request was the victim" true
        (e.p_req.Proto.Request.id = (List.hd reqs).Proto.Request.id)
  | _ -> Alcotest.fail "expected exactly one shed event")

let test_advisory_pushback_below_shedding () =
  let fx = build_nodes ~capacity:4 ~watermark:0.5 () in
  let node = fx.nodes.(0) in
  let reqs = same_bucket_requests ~num_buckets:4 ~count:3 in
  List.iter (Core.Node.submit node) reqs;
  check_int "nothing shed below capacity" 0 (Core.Node.shed_count node);
  let advisory = List.filter (fun e -> not e.p_shed) !(fx.pushbacks) in
  (* Occupancy crosses the 50% watermark at the second request and stays
     above it: requests 2 and 3 draw advisory warnings. *)
  check_int "advisory pushback above the watermark" 2 (List.length advisory);
  check_int "pushback counter includes advisories" 2 (Core.Node.pushback_count node)

let test_flow_control_off_is_inert () =
  (* With flow_control off the admission gate must never fire, whatever the
     occupancy — the zero-perturbation guarantee behind the pinned
     conformance fingerprints. *)
  let fx = build_nodes () in
  let config =
    { (Core.Config.pbft_default ~n:4) with Core.Config.buckets_per_leader = 1 }
  in
  check_bool "flow control defaults off" true (not config.Core.Config.flow_control);
  let node = fx.nodes.(1) in
  ignore (same_bucket_requests ~num_buckets:4 ~count:1);
  check_int "no shed" 0 (Core.Node.shed_count node)

(* ------------------------------------------------------------------ *)
(* End to end: an overload conformance scenario passes the full harness
   (flow control on, shedding and give-ups active, fingerprints stable
   across instrumented and bare runs). *)

let test_overload_scenario_conformance () =
  let sc =
    {
      Conform.Scenario.seed = 424242L;
      n = 4;
      rate = 150.0;
      num_clients = 4;
      duration_s = 4.0;
      faults = [];
      overload =
        Some
          (Conform.Scenario.Flash_crowd
             { at_s = 1.0; factor = 8.0; len_s = 1.5; drop_oldest = false });
    }
  in
  match Conform.Harness.check_protocol sc Core.Config.PBFT with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Conform.Harness.failure_message f)

let test_overload_scenario_drop_oldest () =
  let sc =
    {
      Conform.Scenario.seed = 434343L;
      n = 4;
      rate = 150.0;
      num_clients = 4;
      duration_s = 4.0;
      faults = [];
      overload = Some (Conform.Scenario.Hot_bucket { skew = 1.2; drop_oldest = true });
    }
  in
  match Conform.Harness.check_protocol sc Core.Config.PBFT with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Conform.Harness.failure_message f)

(* ------------------------------------------------------------------ *)
(* Property: under any interleaving of shedding, retransmission,
   crash/recovery and epoch turnover, no correct node ever delivers a
   request twice, and every request is delivered or explicitly gives up.
   The online invariant checker raises on double delivery and on a
   delivered-then-shed contradiction; check_liveness accepts only
   delivered-or-gave-up terminal states. *)

let overload_cluster_prop seed =
  let module Cluster = Runner.Cluster in
  let tweak c =
    {
      c with
      Core.Config.min_epoch_length = 32;
      min_segment_size = 4;
      epoch_change_timeout = Time_ns.sec 4;
      flow_control = true;
      bucket_capacity = 8;
      shed_policy = (if seed mod 2 = 0 then Core.Config.Reject_new else Core.Config.Drop_oldest);
    }
  in
  let engine = Sim.Engine.create () in
  let cluster =
    Cluster.create ~engine ~tweak ~system:(Cluster.Iss Core.Config.PBFT) ~n:4
      ~seed:(Int64.of_int seed) ()
  in
  Cluster.enable_invariants cluster;
  Cluster.start cluster;
  let rng = Sim.Rng.create ~seed:(Int64.of_int ((seed * 31) + 5)) in
  (* A crash/recovery window somewhere inside the overload burst. *)
  let node = Sim.Rng.int rng 4 in
  let crash_at = 0.5 +. Sim.Rng.float rng 2.5 in
  let down = 0.5 +. Sim.Rng.float rng 1.5 in
  Cluster.crash_at cluster ~node ~at:(Time_ns.of_sec_f crash_at);
  Cluster.recover_at cluster ~node ~at:(Time_ns.of_sec_f (crash_at +. down));
  let until = Time_ns.sec 4 in
  let run_until = Time_ns.sec 25 in
  Runner.Workload.start ~cluster ~rate:150.0 ~num_clients:(2 + Sim.Rng.int rng 4)
    ~resubmit:true
    ~shape:
      (Runner.Workload.Flash_crowd
         { at_s = 0.5 +. Sim.Rng.float rng 1.0; factor = 10.0; len_s = 1.5 })
    ~retry_budget:2 ~shape_seed:(Int64.of_int (seed + 1))
    ~sweep_until:run_until ~until ();
  match
    Sim.Engine.run ~until:run_until engine;
    Cluster.check_liveness cluster
  with
  | () -> true
  | exception Cluster.Invariant_violation report -> Alcotest.fail report

let never_double_deliver =
  QCheck.Test.make ~count:8 ~name:"overload: exactly-once or explicit give-up"
    QCheck.(map (fun i -> 1 + (i mod 1000)) small_nat)
    overload_cluster_prop

let () =
  Alcotest.run "overload"
    [
      ( "client",
        [
          Alcotest.test_case "jitter desynchronizes backoff" `Quick
            test_jitter_desynchronizes;
          Alcotest.test_case "retry budget gives up" `Quick test_retry_budget_gives_up;
          Alcotest.test_case "busy pushback defers retransmission" `Quick
            test_busy_defers_retransmission;
        ] );
      ( "node",
        [
          Alcotest.test_case "reject-new sheds incoming" `Quick test_reject_new_sheds_incoming;
          Alcotest.test_case "drop-oldest evicts the oldest" `Quick
            test_drop_oldest_evicts_victim;
          Alcotest.test_case "advisory pushback below shedding" `Quick
            test_advisory_pushback_below_shedding;
          Alcotest.test_case "flow control off is inert" `Quick test_flow_control_off_is_inert;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "flash-crowd scenario conforms" `Slow
            test_overload_scenario_conformance;
          Alcotest.test_case "hot-bucket drop-oldest scenario conforms" `Slow
            test_overload_scenario_drop_oldest;
          QCheck_alcotest.to_alcotest never_double_deliver;
        ] );
    ]
