(* The heavyweight randomized overload sweep:  dune build @overload


   Part 1 — 200 conformance seeds, each forced to carry an overload window
   (the fuzzer's natural draw gives one seed in five; here every seed runs
   flow control, shedding and retry budgets, alongside whatever fault
   schedule it drew).

   Part 2 — the graceful-degradation acceptance for the offered-load sweep:
   at 2x the saturation ceiling, goodput stays within 25% of the peak and
   p99 latency stays bounded.

   Part 3 — exactly-once-or-gave-up at 2x overload: a saturating run with
   the online invariant checker on, extended until every request reaches a
   terminal state, then judged by the give-up-aware liveness check. *)

module Time_ns = Sim.Time_ns
module Cluster = Runner.Cluster
module Experiment = Runner.Experiment

let forced_overload k =
  let drop_oldest = k mod 2 = 0 in
  if k mod 4 < 2 then
    Conform.Scenario.Flash_crowd
      { at_s = 1.0 +. (0.25 *. float_of_int (k mod 8)); factor = 8.0; len_s = 1.5; drop_oldest }
  else
    Conform.Scenario.Hot_bucket
      { skew = 0.9 +. (0.1 *. float_of_int (k mod 6)); drop_oldest }

let conformance_part () =
  let seeds = 200 in
  let failed = ref 0 in
  let sheds_seen = ref 0 in
  for k = 1 to seeds do
    let sc = Conform.Scenario.of_seed (Int64.of_int (100_000 + k)) in
    let sc =
      match sc.Conform.Scenario.overload with
      | Some _ -> sc
      | None -> { sc with Conform.Scenario.overload = Some (forced_overload k) }
    in
    Printf.printf "[%3d/%d] %s %!" k seeds (Conform.Scenario.name sc);
    (match Conform.Harness.check_scenario sc with
    | Ok () -> Printf.printf "OK\n%!"
    | Error f ->
        incr failed;
        Printf.printf "FAIL\n%s\nscenario: %s\n%!"
          (Conform.Harness.failure_message f)
          (Conform.Scenario.to_string f.Conform.Harness.scenario));
    (* Count sheds through one extra bare PBFT run so the sweep can assert
       the overload machinery actually fired across the corpus. *)
    match Conform.Harness.run_protocol ~instrumented:false sc Core.Config.PBFT with
    | Ok r -> sheds_seen := !sheds_seen + r.Conform.Harness.stats.Conform.Checker.shed
    | Error _ -> ()
  done;
  if !failed > 0 then begin
    Printf.printf "overload conformance: %d/%d seeds FAILED\n" !failed seeds;
    exit 1
  end;
  Printf.printf "overload conformance: %d seeds passed (%d sheds observed)\n%!" seeds
    !sheds_seen;
  if !sheds_seen = 0 then begin
    Printf.printf "but no seed ever shed a request — overload windows are inert\n";
    exit 1
  end

let sweep_part () =
  let sw = Experiment.overload_sweep () in
  List.iter
    (fun (p : Experiment.sweep_point) ->
      Format.printf "  %.2fx  %a@." p.Experiment.fraction Experiment.pp_result
        p.Experiment.point)
    sw.Experiment.sweep_points;
  Format.printf "peak goodput %.0f req/s; knee at %.2fx@." sw.Experiment.peak_goodput
    sw.Experiment.knee_fraction;
  let at_2x =
    List.find (fun (p : Experiment.sweep_point) -> p.Experiment.fraction = 2.0)
      sw.Experiment.sweep_points
  in
  let goodput_ratio = at_2x.Experiment.goodput /. sw.Experiment.peak_goodput in
  if goodput_ratio < 0.75 then begin
    Format.printf "FAIL: goodput at 2x collapsed to %.0f%% of peak (floor 75%%)@."
      (100.0 *. goodput_ratio);
    exit 1
  end;
  let p99 = at_2x.Experiment.point.Experiment.p99_latency_s in
  if p99 > 30.0 then begin
    Format.printf "FAIL: p99 at 2x unbounded (%.1fs)@." p99;
    exit 1
  end;
  if sw.Experiment.knee_fraction < 0.5 then begin
    Format.printf "FAIL: knee below half the analytical ceiling (%.2fx)@."
      sw.Experiment.knee_fraction;
    exit 1
  end;
  Format.printf
    "graceful degradation: goodput at 2x = %.0f%% of peak, p99 %.1fs, knee %.2fx@."
    (100.0 *. goodput_ratio) p99 sw.Experiment.knee_fraction

let exactly_once_part () =
  (* A 2x-saturation run judged request by request: the online invariant
     checker raises on any double delivery or delivered-then-shed
     contradiction while it runs, and the give-up-aware liveness check
     requires every submitted request to have reached its reply quorum or
     explicitly spent its retry budget by the end. *)
  let engine = Sim.Engine.create () in
  let cluster =
    Cluster.create ~engine
      ~tweak:(Experiment.overload_tweak ())
      ~system:(Cluster.Iss Core.Config.PBFT) ~n:4 ~seed:77L ()
  in
  Cluster.enable_invariants cluster;
  Cluster.start cluster;
  let until = Time_ns.sec 10 in
  let run_until = Time_ns.sec 45 in
  Runner.Workload.start ~cluster ~rate:(2.0 *. Experiment.overload_ceiling)
    ~resubmit:true ~retry_budget:3 ~sweep_until:run_until ~until ();
  (match
     Sim.Engine.run ~until:run_until engine;
     Cluster.check_liveness cluster
   with
  | () -> ()
  | exception Cluster.Invariant_violation report ->
      Printf.printf "FAIL: %s\n" report;
      exit 1);
  Printf.printf
    "exactly-once at 2x: %d submitted = %d delivered + %d gave up (%d sheds along the way)\n%!"
    (Cluster.submitted cluster)
    (Cluster.delivered_quorum cluster)
    (Cluster.gave_up_count cluster) (Cluster.shed_total cluster)

let () =
  sweep_part ();
  exactly_once_part ();
  conformance_part ();
  print_endline "overload sweep: all checks passed"
