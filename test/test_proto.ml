(* Tests for the proto layer: ids, batches, proposals, message sizes. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let req ~client ~ts = Proto.Request.make ~client ~ts ~submitted_at:0 ()

(* ------------------------------------------------------------------ *)
(* Quorum arithmetic *)

let test_quorums () =
  (* n = 3f+1 families. *)
  List.iter
    (fun (n, f) ->
      check_int (Printf.sprintf "f for n=%d" n) f (Proto.Ids.max_faulty ~n);
      check_int (Printf.sprintf "quorum for n=%d" n) (n - f) (Proto.Ids.quorum ~n);
      (* Two quorums always intersect in at least f+1 nodes. *)
      let q = Proto.Ids.quorum ~n in
      check_bool "quorum intersection beyond faulty" true ((2 * q) - n >= f + 1))
    [ (4, 1); (7, 2); (10, 3); (13, 4); (32, 10); (128, 42) ];
  check_int "majority of 4" 3 (Proto.Ids.majority ~n:4);
  check_int "majority of 5" 3 (Proto.Ids.majority ~n:5)

(* ------------------------------------------------------------------ *)
(* Requests *)

let test_request_id_key_injective () =
  let seen = Hashtbl.create 64 in
  for client = 0 to 40 do
    for ts = 0 to 40 do
      let k = Proto.Request.id_key { Proto.Request.client; ts } in
      (match Hashtbl.find_opt seen k with
      | Some (c', t') -> Alcotest.failf "collision: (%d,%d) vs (%d,%d)" client ts c' t'
      | None -> ());
      Hashtbl.replace seen k (client, ts)
    done
  done

let test_request_wire_size () =
  let r = req ~client:1 ~ts:1 in
  (* 500 payload + 16 id + 64 signature. *)
  check_int "default request wire size" 580 (Proto.Request.wire_size r);
  let unsigned = Proto.Request.make ~client:1 ~ts:1 ~sig_data:Proto.Request.Unsigned ~submitted_at:0 () in
  check_int "unsigned request smaller" 516 (Proto.Request.wire_size unsigned)

(* ------------------------------------------------------------------ *)
(* Batches *)

let test_batch_digest_sensitivity () =
  let b1 = Proto.Batch.make [| req ~client:1 ~ts:0; req ~client:1 ~ts:1 |] in
  let b2 = Proto.Batch.make [| req ~client:1 ~ts:0; req ~client:1 ~ts:1 |] in
  let b3 = Proto.Batch.make [| req ~client:1 ~ts:1; req ~client:1 ~ts:0 |] in
  let b4 = Proto.Batch.make [| req ~client:1 ~ts:0 |] in
  let d = Proto.Batch.digest in
  check_bool "equal content equal digest" true (Iss_crypto.Hash.equal (d b1) (d b2));
  check_bool "order matters" false (Iss_crypto.Hash.equal (d b1) (d b3));
  check_bool "length matters" false (Iss_crypto.Hash.equal (d b1) (d b4))

let test_batch_size_accounting () =
  let reqs = Array.init 10 (fun i -> req ~client:2 ~ts:i) in
  let b = Proto.Batch.make reqs in
  check_int "10 x 580 + header" ((10 * 580) + 16) (Proto.Batch.wire_size b);
  check_int "length" 10 (Proto.Batch.length b);
  check_bool "not empty" false (Proto.Batch.is_empty b);
  check_bool "empty batch is empty" true (Proto.Batch.is_empty Proto.Batch.empty)

(* ------------------------------------------------------------------ *)
(* Proposals *)

let test_proposal_nil_distinct () =
  let b = Proto.Proposal.Batch (Proto.Batch.make [| req ~client:1 ~ts:0 |]) in
  check_bool "nil is nil" true (Proto.Proposal.is_nil Proto.Proposal.Nil);
  check_bool "batch is not nil" false (Proto.Proposal.is_nil b);
  check_bool "digests differ" false
    (Iss_crypto.Hash.equal (Proto.Proposal.digest Proto.Proposal.Nil) (Proto.Proposal.digest b));
  (* The empty batch and ⊥ are different values with different digests —
     an empty keep-alive batch occupies its position, ⊥ marks an abort. *)
  check_bool "empty batch ≠ nil" false
    (Iss_crypto.Hash.equal
       (Proto.Proposal.digest (Proto.Proposal.Batch Proto.Batch.empty))
       (Proto.Proposal.digest Proto.Proposal.Nil))

(* ------------------------------------------------------------------ *)
(* Message sizes *)

let test_message_sizes_monotone () =
  let batch k = Proto.Batch.make (Array.init k (fun i -> req ~client:3 ~ts:i)) in
  let preprepare k =
    Proto.Message.Pbft
      {
        Proto.Pbft_msg.instance = 0;
        body = Proto.Pbft_msg.Preprepare { view = 0; sn = 0; proposal = Proto.Proposal.Batch (batch k) };
      }
  in
  check_bool "bigger batch, bigger message" true
    (Proto.Message.wire_size (preprepare 100) > Proto.Message.wire_size (preprepare 10));
  let prepare =
    Proto.Message.Pbft
      {
        Proto.Pbft_msg.instance = 0;
        body = Proto.Pbft_msg.Prepare { view = 0; sn = 0; digest = Iss_crypto.Hash.of_int 1 };
      }
  in
  check_bool "votes are small" true (Proto.Message.wire_size prepare < 100);
  check_bool "preprepare carries the payload" true
    (Proto.Message.wire_size (preprepare 10) > 10 * 500)

let test_hotstuff_msg_sizes () =
  let share = Iss_crypto.Threshold.sign_share (Iss_crypto.Threshold.setup ~n:4 ~t:3) ~signer:0 "m" in
  let vote =
    Proto.Message.Hotstuff
      {
        Proto.Hotstuff_msg.instance = 0;
        body = Proto.Hotstuff_msg.Vote { view = 0; digest = Iss_crypto.Hash.of_int 0; share };
      }
  in
  (* Constant-size votes: the linear-message-complexity property. *)
  check_bool "hotstuff vote ~100B" true (Proto.Message.wire_size vote < 150)

let test_checkpoint_material_distinct () =
  let root = Iss_crypto.Hash.of_int 7 in
  let mk ~epoch ~max_sn ~req_count ~policy =
    Proto.Message.checkpoint_material ~epoch ~max_sn ~root ~req_count ~policy
  in
  let m1 = mk ~epoch:1 ~max_sn:255 ~req_count:100 ~policy:"blacklist:-1,-1" in
  let m2 = mk ~epoch:2 ~max_sn:255 ~req_count:100 ~policy:"blacklist:-1,-1" in
  let m3 = mk ~epoch:1 ~max_sn:511 ~req_count:100 ~policy:"blacklist:-1,-1" in
  let m4 = mk ~epoch:1 ~max_sn:255 ~req_count:101 ~policy:"blacklist:-1,-1" in
  let m5 = mk ~epoch:1 ~max_sn:255 ~req_count:100 ~policy:"blacklist:7,-1" in
  check_bool "epoch in material" false (String.equal m1 m2);
  check_bool "max_sn in material" false (String.equal m1 m3);
  check_bool "req_count in material" false (String.equal m1 m4);
  check_bool "policy in material" false (String.equal m1 m5)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "proto"
    [
      ("ids", [ Alcotest.test_case "quorum arithmetic" `Quick test_quorums ]);
      ( "requests",
        [
          Alcotest.test_case "id_key injective" `Quick test_request_id_key_injective;
          Alcotest.test_case "wire sizes" `Quick test_request_wire_size;
        ] );
      ( "batches",
        [
          Alcotest.test_case "digest sensitivity" `Quick test_batch_digest_sensitivity;
          Alcotest.test_case "size accounting" `Quick test_batch_size_accounting;
        ] );
      ("proposals", [ Alcotest.test_case "nil distinct" `Quick test_proposal_nil_distinct ]);
      ( "messages",
        [
          Alcotest.test_case "sizes monotone" `Quick test_message_sizes_monotone;
          Alcotest.test_case "hotstuff vote size" `Quick test_hotstuff_msg_sizes;
          Alcotest.test_case "checkpoint material" `Quick test_checkpoint_material_distinct;
        ] );
    ]
