(* Protocol-level tests: drive PBFT / HotStuff / Raft orderer instances
   directly through a mock Orderer_intf context — no ISS node, no real
   network — to exercise view changes, QC chains and elections in
   isolation. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type world = {
  engine : Sim.Engine.t;
  n : int;
  instances : Core.Orderer_intf.instance option array;
  announced : (int * (int * Proto.Proposal.t)) list ref;  (* (node, (sn, proposal)) *)
  crashed : bool array;
  batch_source : int -> Proto.Proposal.t;  (* per sequence number *)
}

(* A tiny message bus: ctx.send schedules the peer's on_message after a
   fixed delay, unless either end is "crashed". *)
let make_world ~n ~config ~segment ~factory ~batch_source =
  let engine = Sim.Engine.create () in
  let w =
    {
      engine;
      n;
      instances = Array.make n None;
      announced = ref [];
      crashed = Array.make n false;
      batch_source;
    }
  in
  let delay = Sim.Time_ns.ms 20 in
  let make_ctx me : Core.Orderer_intf.ctx =
    let send ~dst msg =
      if (not w.crashed.(me)) && not w.crashed.(dst) then
        ignore
          (Sim.Engine.schedule engine ~delay (fun () ->
               if not w.crashed.(dst) then
                 match w.instances.(dst) with
                 | Some inst -> Core.Orderer_intf.on_message inst ~src:me msg
                 | None -> ()))
    in
    {
      Core.Orderer_intf.node = me;
      config;
      engine;
      send;
      broadcast =
        (fun msg ->
          for dst = 0 to n - 1 do
            send ~dst msg
          done);
      announce = (fun ~sn proposal -> w.announced := (me, (sn, proposal)) :: !(w.announced));
      request_batch =
        (fun ~sn callback ->
          (* Immediate batches: protocol pacing is not under test here. *)
          ignore
            (Sim.Engine.schedule engine ~delay:(Sim.Time_ns.ms 1) (fun () ->
                 if not w.crashed.(me) then callback (batch_source sn))));
      charge_cpu = (fun _cost k -> k ());
      keypair = Iss_crypto.Signature.genkey ~id:me;
      threshold_group = Iss_crypto.Threshold.setup ~n ~t:(Proto.Ids.quorum ~n);
      report_suspect = (fun _ -> ());
      validate_proposal = (fun _seg ~sn:_ _proposal -> Core.Orderer_intf.Accept);
    }
  in
  for me = 0 to n - 1 do
    w.instances.(me) <- Some (factory (make_ctx me) segment)
  done;
  w

let start_all w =
  Array.iter (function Some i -> Core.Orderer_intf.start i | None -> ()) w.instances

let announced_at w node =
  List.rev
    (List.filter_map (fun (i, x) -> if i = node then Some x else None) !(w.announced))

let batch_for sn =
  Proto.Proposal.Batch
    (Proto.Batch.make [| Proto.Request.make ~client:1 ~ts:sn ~submitted_at:0 () |])

let segment4 ~leader =
  let config = Core.Config.pbft_default ~n:4 in
  List.nth
    (Core.Segment.make_epoch ~config ~epoch:0 ~start_sn:0
       ~leaders:(Array.init 4 (fun i -> i)))
    leader

(* Shared assertions: every correct node announces every segment sequence
   number exactly once, and all correct nodes agree per sequence number. *)
let assert_sb_complete w (seg : Core.Segment.t) ~expect_nil =
  let expected = Array.to_list seg.Core.Segment.seq_nrs in
  for node = 0 to w.n - 1 do
    if not w.crashed.(node) then begin
      let anns = announced_at w node in
      let sns = List.sort compare (List.map fst anns) in
      Alcotest.(check (list int))
        (Printf.sprintf "node %d announces every sn exactly once" node)
        (List.sort compare expected) sns;
      List.iter
        (fun (sn, p) ->
          if expect_nil then
            check_bool
              (Printf.sprintf "sn %d is ⊥" sn)
              true (Proto.Proposal.is_nil p))
        anns
    end
  done;
  (* Agreement across correct nodes. *)
  let digest_of anns =
    List.sort compare
      (List.map (fun (sn, p) -> (sn, Iss_crypto.Hash.to_hex (Proto.Proposal.digest p))) anns)
  in
  let reference = ref None in
  for node = 0 to w.n - 1 do
    if not w.crashed.(node) then begin
      let d = digest_of (announced_at w node) in
      match !reference with
      | None -> reference := Some d
      | Some r -> check_bool (Printf.sprintf "node %d agrees" node) true (d = r)
    end
  done

(* ------------------------------------------------------------------ *)
(* Happy paths for all three protocols *)

let test_happy_path factory () =
  let config = Core.Config.pbft_default ~n:4 in
  let seg = segment4 ~leader:0 in
  let w = make_world ~n:4 ~config ~segment:seg ~factory ~batch_source:batch_for in
  start_all w;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 30) w.engine;
  assert_sb_complete w seg ~expect_nil:false

(* ------------------------------------------------------------------ *)
(* Leader failure: SB termination demands ⊥ for unproposed positions *)

let test_dead_leader factory () =
  let config = Core.Config.pbft_default ~n:4 in
  let seg = segment4 ~leader:0 in
  let w = make_world ~n:4 ~config ~segment:seg ~factory ~batch_source:batch_for in
  w.crashed.(0) <- true;  (* the segment leader never says anything *)
  start_all w;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 300) w.engine;
  (* Exclude node 0 from the checks (it is crashed). *)
  assert_sb_complete w seg ~expect_nil:true

let test_leader_dies_mid_segment factory () =
  let config = Core.Config.pbft_default ~n:4 in
  let seg = segment4 ~leader:0 in
  let w = make_world ~n:4 ~config ~segment:seg ~factory ~batch_source:batch_for in
  start_all w;
  (* Let a few proposals through, then kill the leader. *)
  ignore
    (Sim.Engine.schedule w.engine ~delay:(Sim.Time_ns.ms 500) (fun () ->
         w.crashed.(0) <- true));
  Sim.Engine.run ~until:(Sim.Time_ns.sec 300) w.engine;
  (* Correct nodes terminate (mixture of real batches and ⊥) and agree. *)
  assert_sb_complete w seg ~expect_nil:false

(* ------------------------------------------------------------------ *)
(* PBFT specifics *)

let test_pbft_commit_quorum_needed () =
  (* With only 2 of 4 nodes alive, PBFT cannot commit anything. *)
  let config = Core.Config.pbft_default ~n:4 in
  let seg = segment4 ~leader:0 in
  let w =
    make_world ~n:4 ~config ~segment:seg ~factory:Pbft.Pbft_orderer.factory
      ~batch_source:batch_for
  in
  w.crashed.(2) <- true;
  w.crashed.(3) <- true;
  start_all w;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) w.engine;
  check_int "no announcements without a quorum" 0 (List.length (announced_at w 0))

(* ------------------------------------------------------------------ *)
(* Raft specifics *)

let test_raft_commit_majority () =
  (* Raft (CFT) tolerates 1 of 4 crashed followers and still commits. *)
  let config = Core.Config.raft_default ~n:4 in
  let seg = segment4 ~leader:0 in
  let w =
    make_world ~n:4 ~config ~segment:seg ~factory:Raft.Raft_orderer.factory
      ~batch_source:batch_for
  in
  w.crashed.(3) <- true;
  start_all w;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) w.engine;
  let anns = announced_at w 0 in
  check_int "leader announces everything with a majority"
    (Core.Segment.seq_count seg) (List.length anns)

let test_raft_election_after_leader_crash () =
  let config = Core.Config.raft_default ~n:4 in
  let seg = segment4 ~leader:0 in
  let w =
    make_world ~n:4 ~config ~segment:seg ~factory:Raft.Raft_orderer.factory
      ~batch_source:batch_for
  in
  w.crashed.(0) <- true;
  start_all w;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 600) w.engine;
  (* A new leader is elected and fills the segment with ⊥ (design
     principle 2). *)
  assert_sb_complete w seg ~expect_nil:true

(* ------------------------------------------------------------------ *)
(* HotStuff specifics *)

let test_hotstuff_three_chain_flush () =
  (* The last real sequence number must be decided even though nothing
     follows it — the three dummy views flush the pipeline (Fig. 4). *)
  let config = Core.Config.hotstuff_default ~n:4 in
  let seg = segment4 ~leader:0 in
  let w =
    make_world ~n:4 ~config ~segment:seg ~factory:Hotstuff.Hotstuff_orderer.factory
      ~batch_source:batch_for
  in
  start_all w;
  Sim.Engine.run ~until:(Sim.Time_ns.sec 60) w.engine;
  let anns = announced_at w 1 in
  let last_sn = seg.Core.Segment.seq_nrs.(Core.Segment.seq_count seg - 1) in
  check_bool "last sn decided (pipeline flushed)" true (List.mem_assoc last_sn anns)

let () =
  let factories =
    [
      ("pbft", Pbft.Pbft_orderer.factory);
      ("hotstuff", Hotstuff.Hotstuff_orderer.factory);
      ("raft", Raft.Raft_orderer.factory);
    ]
  in
  Alcotest.run "protocols"
    [
      ( "happy-path",
        List.map
          (fun (name, f) -> Alcotest.test_case name `Quick (test_happy_path f))
          factories );
      ( "dead-leader",
        List.map
          (fun (name, f) -> Alcotest.test_case name `Slow (test_dead_leader f))
          factories );
      ( "mid-segment-crash",
        List.map
          (fun (name, f) -> Alcotest.test_case name `Slow (test_leader_dies_mid_segment f))
          factories );
      ( "pbft",
        [ Alcotest.test_case "no commit without quorum" `Quick test_pbft_commit_quorum_needed ]
      );
      ( "raft",
        [
          Alcotest.test_case "commits with majority" `Quick test_raft_commit_majority;
          Alcotest.test_case "election after leader crash" `Slow
            test_raft_election_after_leader_crash;
        ] );
      ( "hotstuff",
        [ Alcotest.test_case "three-chain flush" `Quick test_hotstuff_three_chain_flush ] );
    ]
