(* Unit and property tests for the simulator substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:99L and b = Sim.Rng.create ~seed:99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a) (Sim.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:99L in
  let b = Sim.Rng.split a in
  let x = Sim.Rng.next_int64 a and y = Sim.Rng.next_int64 b in
  check_bool "split streams differ" true (x <> y)

let test_rng_bounds () =
  let rng = Sim.Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 17 in
    check_bool "int in range" true (v >= 0 && v < 17);
    let f = Sim.Rng.float rng 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Sim.Rng.create ~seed:6L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "exponential mean ~3" true (mean > 2.8 && mean < 3.2)

let test_rng_zipf () =
  let rng = Sim.Rng.create ~seed:7L in
  let counts = Array.make 11 0 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.zipf rng ~n:10 ~s:1.1 in
    check_bool "zipf in range" true (v >= 1 && v <= 10);
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "rank 1 most frequent" true (counts.(1) > counts.(2) && counts.(2) > counts.(5))

(* ------------------------------------------------------------------ *)
(* Heap *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let test_heap_peek () =
  let h = Sim.Heap.create ~cmp:compare in
  check_bool "empty peek" true (Sim.Heap.peek h = None);
  Sim.Heap.push h 5;
  Sim.Heap.push h 2;
  Sim.Heap.push h 9;
  check_bool "peek min" true (Sim.Heap.peek h = Some 2);
  check_int "length" 3 (Sim.Heap.length h)

let test_heap_releases_elements () =
  (* The heap must not retain popped/cleared elements past its logical
     size: regression for stale references surviving in the backing array. *)
  let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> compare (a : int) b) in
  let w = Weak.create 4 in
  for i = 0 to 3 do
    let v = (i, ref i) in
    Weak.set w i (Some v);
    Sim.Heap.push h v
  done;
  ignore (Sim.Heap.pop h);
  ignore (Sim.Heap.pop h);
  Gc.full_major ();
  check_bool "popped element 0 collected" false (Weak.check w 0);
  check_bool "popped element 1 collected" false (Weak.check w 1);
  check_bool "live element 2 retained" true (Weak.check w 2);
  check_bool "live element 3 retained" true (Weak.check w 3);
  Sim.Heap.clear h;
  Gc.full_major ();
  check_bool "cleared element 2 collected" false (Weak.check w 2);
  check_bool "cleared element 3 collected" false (Weak.check w 3)

(* ------------------------------------------------------------------ *)
(* Event queue (timing wheel + overflow heap) *)

module Q = Sim.Event_queue

(* Drain the queue, executing each popped action (tests record identity
   through the actions, which is how the engine itself consumes events). *)
let drain_queue q =
  let rec go () =
    let ev = Q.pop q in
    if ev != Q.nil then begin
      ev.Q.action ();
      Q.release q ev;
      go ()
    end
  in
  go ()

(* Times biased to cross every structural boundary: within one level-0
   slot, across the level-0 window, across the wheel horizon (2^32 ns),
   and deep into the overflow heap. *)
let gen_time =
  QCheck.Gen.(
    oneof
      [
        int_range 0 8_192;
        int_range 0 5_000_000;
        int_range 0 6_000_000_000;
        int_range 3_000_000_000 40_000_000_000;
      ])

let prop_queue_order_fifo =
  QCheck.Test.make ~name:"event queue pops by (time, insertion seq)" ~count:300
    (QCheck.make
       ~print:QCheck.Print.(list int)
       QCheck.Gen.(list_size (int_range 0 400) gen_time))
    (fun times ->
      let q = Q.create () in
      let order = ref [] in
      List.iteri
        (fun i at -> ignore (Q.add q ~time:at (fun () -> order := i :: !order)))
        times;
      drain_queue q;
      let expected =
        List.mapi (fun i at -> (at, i)) times |> List.sort compare |> List.map snd
      in
      List.rev !order = expected && Q.live q = 0)

let prop_queue_cancel =
  QCheck.Test.make ~name:"cancelled events neither fire nor count as live"
    ~count:300
    (QCheck.make
       ~print:QCheck.Print.(list (pair int bool))
       QCheck.Gen.(list_size (int_range 0 400) (pair gen_time (frequencyl [ (7, true); (3, false) ])))
    )
    (fun items ->
      let q = Q.create () in
      let order = ref [] in
      let handles =
        List.mapi
          (fun i (at, _) -> Q.add q ~time:at (fun () -> order := i :: !order))
          items
      in
      (* Heavy cancellation exercises the bulk-purge sweep. *)
      List.iter2 (fun h (_, c) -> if c then Q.cancel q h) handles items;
      let survivors = List.filter (fun (_, (_, c)) -> not c)
          (List.mapi (fun i it -> (i, it)) items)
      in
      let live_ok = Q.live q = List.length survivors in
      drain_queue q;
      let expected =
        List.map (fun (i, (at, _)) -> (at, i)) survivors
        |> List.sort compare |> List.map snd
      in
      live_ok && List.rev !order = expected && Q.live q = 0)

let test_queue_boundary_times () =
  (* Deterministic walk across the exact level boundaries: end of a
     level-0 slot (2^12), end of the level-0 window (2^22), the wheel
     horizon (2^32), and far overflow.  Inserted in reverse. *)
  let times =
    [
      0;
      1;
      4_095;
      4_096;
      4_194_303;
      4_194_304;
      4_294_967_295;
      4_294_967_296;
      40_000_000_000;
    ]
  in
  let q = Q.create () in
  let popped = ref [] in
  List.iter
    (fun at -> ignore (Q.add q ~time:at (fun () -> popped := at :: !popped)))
    (List.rev times);
  drain_queue q;
  Alcotest.(check (list int)) "ascending across boundaries" times (List.rev !popped)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 20) (fun () -> order := 2 :: !order));
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> order := 1 :: !order));
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 30) (fun () -> order := 3 :: !order));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_engine_fifo_same_time () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> order := i :: !order))
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> fired := true) in
  Sim.Engine.cancel e id;
  Sim.Engine.run e;
  check_bool "cancelled timer silent" false !fired

let test_engine_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> incr fired));
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 50) (fun () -> incr fired));
  Sim.Engine.run ~until:(Sim.Time_ns.ms 20) e;
  check_int "only first event" 1 !fired;
  check_int "clock at limit" (Sim.Time_ns.ms 20) (Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "second event after resume" 2 !fired

let test_engine_nested_schedule () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 5) (fun () ->
         log := `A :: !log;
         ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 5) (fun () -> log := `B :: !log))));
  Sim.Engine.run e;
  check_int "both fired" 2 (List.length !log);
  check_int "final clock" (Sim.Time_ns.ms 10) (Sim.Engine.now e)

let test_engine_until_non_monotonic () =
  (* Regression: a second [run ~until] with an *earlier* limit used to move
     the clock backwards; it must be a no-op on the clock. *)
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 30) (fun () -> incr fired));
  Sim.Engine.run ~until:(Sim.Time_ns.ms 20) e;
  check_int "clock parked at first limit" (Sim.Time_ns.ms 20) (Sim.Engine.now e);
  Sim.Engine.run ~until:(Sim.Time_ns.ms 10) e;
  check_int "clock does not rewind" (Sim.Time_ns.ms 20) (Sim.Engine.now e);
  check_int "nothing fired early" 0 !fired;
  Sim.Engine.run ~until:(Sim.Time_ns.ms 30) e;
  check_int "due event still fires" 1 !fired

let test_engine_pending_excludes_cancelled () =
  let e = Sim.Engine.create () in
  let ids =
    List.init 10 (fun _ -> Sim.Engine.schedule e ~delay:(Sim.Time_ns.ms 10) (fun () -> ()))
  in
  check_int "all pending" 10 (Sim.Engine.pending e);
  List.iteri (fun i id -> if i < 4 then Sim.Engine.cancel e id) ids;
  check_int "pending excludes cancelled" 6 (Sim.Engine.pending e);
  Sim.Engine.cancel e (List.hd ids);
  check_int "double cancel is a no-op" 6 (Sim.Engine.pending e);
  Sim.Engine.run e;
  check_int "drained" 0 (Sim.Engine.pending e)

let test_engine_cancel_releases_closure () =
  (* Cancelling must drop the action closure immediately, even though the
     event record lingers as a tombstone. *)
  let e = Sim.Engine.create () in
  let w = Weak.create 1 in
  let id =
    let v = ref 42 in
    Weak.set w 0 (Some v);
    Sim.Engine.schedule e ~delay:(Sim.Time_ns.sec 100) (fun () -> ignore !v)
  in
  Sim.Engine.cancel e id;
  Gc.full_major ();
  check_bool "cancelled closure collected" false (Weak.check w 0)

let test_engine_post_recycles () =
  (* Fire-and-forget events run through the record freelist; a long chain
     must reuse records without corruption. *)
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec body () =
    if !count < 10_000 then begin
      incr count;
      Sim.Engine.post e ~delay:(Sim.Time_ns.us 1) body
    end
  in
  Sim.Engine.post e ~delay:0 body;
  Sim.Engine.run e;
  check_int "all anonymous events fired" 10_000 !count;
  check_int "queue empty" 0 (Sim.Engine.pending e)

(* Random interleavings of schedule / cancel / run-until, checked against a
   sorted-list model of the queue and clock. *)
let prop_engine_matches_model =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (6, map (fun d -> `Schedule d) (oneof [ int_range 0 2_000_000; int_range 0 6_000_000_000 ]));
          (2, map (fun k -> `Cancel k) (int_range 0 300));
          (3, map (fun u -> `Run u) (oneof [ int_range 0 2_000_000; int_range 0 8_000_000_000 ]));
        ])
  in
  let print_op = function
    | `Schedule d -> Printf.sprintf "Schedule %d" d
    | `Cancel k -> Printf.sprintf "Cancel %d" k
    | `Run u -> Printf.sprintf "Run %d" u
  in
  QCheck.Test.make ~name:"engine matches sorted-list model" ~count:300
    (QCheck.make
       ~print:QCheck.Print.(list print_op)
       QCheck.Gen.(list_size (int_range 1 120) gen_op))
    (fun ops ->
      let e = Sim.Engine.create () in
      let fired_real = ref [] and fired_model = ref [] in
      let handles = ref [] (* insertion order, reversed *) in
      let model = ref [] (* (at, idx, cancelled) in insertion order *) in
      let idx = ref 0 and clock = ref 0 in
      let ok = ref true in
      let fire_due limit =
        let due, rest =
          List.partition (fun (at, _, _) -> at <= limit)
            (List.stable_sort (fun (a, _, _) (b, _, _) -> compare (a : int) b) !model)
        in
        List.iter (fun (_, i, c) -> if not !c then fired_model := i :: !fired_model) due;
        model := rest;
        if limit > !clock then clock := limit
      in
      List.iter
        (fun op ->
          match op with
          | `Schedule d ->
              let i = !idx in
              incr idx;
              let h =
                Sim.Engine.schedule e ~delay:d (fun () -> fired_real := i :: !fired_real)
              in
              handles := h :: !handles;
              model := !model @ [ (!clock + d, i, ref false) ]
          | `Cancel k -> (
              match List.nth_opt (List.rev !handles) k with
              | None -> ()
              | Some h ->
                  (* also exercises cancel-after-fire as a no-op: fired
                     entries are gone from [model], so only a still-pending
                     entry gets marked *)
                  Sim.Engine.cancel e h;
                  List.iter (fun (_, i, c) -> if i = k then c := true) !model)
          | `Run u ->
              Sim.Engine.run ~until:u e;
              fire_due u;
              if Sim.Engine.now e <> !clock then ok := false;
              let live = List.length (List.filter (fun (_, _, c) -> not !c) !model) in
              if Sim.Engine.pending e <> live then ok := false)
        ops;
      Sim.Engine.run e;
      fire_due max_int;
      !ok
      && List.rev !fired_real = List.rev !fired_model
      && Sim.Engine.pending e = 0)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_histogram () =
  let h = Sim.Metrics.Histogram.create () in
  for i = 1 to 100 do
    Sim.Metrics.Histogram.add h (float_of_int i)
  done;
  check_int "count" 100 (Sim.Metrics.Histogram.count h);
  Alcotest.(check (float 0.01)) "mean" 50.5 (Sim.Metrics.Histogram.mean h);
  Alcotest.(check (float 1.5)) "p50" 50.0 (Sim.Metrics.Histogram.percentile h 50.0);
  Alcotest.(check (float 1.5)) "p95" 95.0 (Sim.Metrics.Histogram.percentile h 95.0);
  Alcotest.(check (float 0.01)) "min" 1.0 (Sim.Metrics.Histogram.min h);
  Alcotest.(check (float 0.01)) "max" 100.0 (Sim.Metrics.Histogram.max h)

let test_series () =
  let s = Sim.Metrics.Series.create ~bin:(Sim.Time_ns.sec 1) in
  Sim.Metrics.Series.add s ~at:(Sim.Time_ns.ms 500) 3.0;
  Sim.Metrics.Series.add s ~at:(Sim.Time_ns.ms 800) 2.0;
  Sim.Metrics.Series.add s ~at:(Sim.Time_ns.ms 2500) 7.0;
  let bins = Sim.Metrics.Series.bins s ~until:(Sim.Time_ns.sec 4) in
  Alcotest.(check (array (float 0.01))) "bins" [| 5.0; 0.0; 7.0; 0.0 |] bins

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_symmetry () =
  let n = Array.length Sim.Topology.datacenters in
  check_int "16 datacenters" 16 n;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_int
        (Printf.sprintf "latency %d-%d symmetric" i j)
        (Sim.Topology.latency i j) (Sim.Topology.latency j i)
    done
  done

let test_topology_sane_values () =
  (* London <-> Frankfurt should be a few ms; Sydney <-> London ~ 100+ ms. *)
  let name_idx name =
    let rec go i =
      if Sim.Topology.datacenters.(i).Sim.Topology.name = name then i else go (i + 1)
    in
    go 0
  in
  let lon = name_idx "London" and fra = name_idx "Frankfurt" and syd = name_idx "Sydney" in
  let ms x = Sim.Time_ns.to_ms_f x in
  check_bool "London-Frankfurt < 10ms" true (ms (Sim.Topology.latency lon fra) < 10.0);
  check_bool "London-Sydney > 80ms" true (ms (Sim.Topology.latency lon syd) > 80.0);
  check_bool "intra-dc small" true (ms (Sim.Topology.latency 0 0) < 1.0)

let test_topology_assignment () =
  let a = Sim.Topology.assign_uniform ~n:4 in
  check_int "4 nodes, 4 distinct dcs" 4 (List.length (List.sort_uniq compare (Array.to_list a)));
  let a = Sim.Topology.assign_uniform ~n:32 in
  check_int "32 nodes round-robin" 32 (Array.length a);
  Array.iteri (fun i dc -> check_int (Printf.sprintf "node %d" i) (i mod 16) dc) a

(* ------------------------------------------------------------------ *)
(* Network *)

let make_net () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:1L in
  let config = { Sim.Network.default_config with jitter = 0 } in
  let net = Sim.Network.create ~config e ~rng () in
  (e, net)

let test_network_delivery () =
  let e, net = make_net () in
  let got = ref [] in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:15
    ~handler:(fun ~src ~size msg -> got := (src, size, msg) :: !got);
  Sim.Network.send net ~src:0 ~dst:1 ~size:1000 "hello";
  Sim.Engine.run e;
  (match !got with
  | [ (0, 1000, "hello") ] -> ()
  | _ -> Alcotest.fail "expected one delivery");
  (* Dallas -> Sydney one way is > 50 ms. *)
  check_bool "propagation delay applied" true (Sim.Engine.now e > Sim.Time_ns.ms 50)

let test_network_bandwidth_serialization () =
  let e, net = make_net () in
  let arrivals = ref [] in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> arrivals := Sim.Engine.now e :: !arrivals);
  (* 10 x 1.25 MB messages at 1 Gbps = 10 ms serialization each: arrivals
     must be spaced by ~10 ms because the sender NIC serializes them. *)
  for _ = 1 to 10 do
    Sim.Network.send net ~src:0 ~dst:1 ~size:1_250_000 ()
  done;
  Sim.Engine.run e;
  let ts = List.rev !arrivals in
  check_int "all arrived" 10 (List.length ts);
  let rec gaps = function a :: (b :: _ as rest) -> (b - a) :: gaps rest | _ -> [] in
  List.iter
    (fun gap ->
      check_bool "NIC spacing ~10ms" true
        (gap > Sim.Time_ns.ms 9 && gap < Sim.Time_ns.ms 12))
    (gaps ts)

let test_network_crash_and_partition () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:1
    ~handler:(fun ~src:_ ~size:_ _ -> incr got);
  Sim.Network.crash net 1;
  Sim.Network.send net ~src:0 ~dst:1 ~size:100 ();
  Sim.Engine.run e;
  check_int "crashed endpoint receives nothing" 0 !got;
  Sim.Network.recover net 1;
  Sim.Network.set_partition net (Some (fun id -> id));
  Sim.Network.send net ~src:0 ~dst:1 ~size:100 ();
  Sim.Engine.run e;
  check_int "partitioned pair drops" 0 !got;
  Sim.Network.set_partition net None;
  Sim.Network.send net ~src:0 ~dst:1 ~size:100 ();
  Sim.Engine.run e;
  check_int "healed partition delivers" 1 !got

let test_network_drop_probability () =
  let e, net = make_net () in
  let got = ref 0 in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  Sim.Network.add_endpoint net ~id:1 ~category:Sim.Network.Node ~datacenter:1
    ~handler:(fun ~src:_ ~size:_ _ -> incr got);
  Sim.Network.set_drop_probability net 0.5;
  for _ = 1 to 1000 do
    Sim.Network.send net ~src:0 ~dst:1 ~size:10 ()
  done;
  Sim.Engine.run e;
  check_bool "about half dropped" true (!got > 350 && !got < 650)

let test_network_charge () =
  let e, net = make_net () in
  Sim.Network.add_endpoint net ~id:0 ~category:Sim.Network.Node ~datacenter:0
    ~handler:(fun ~src:_ ~size:_ _ -> ());
  (* 1.25 MB at 1 Gbps = 10 ms. *)
  let d1 = Sim.Network.charge net ~endpoint:0 ~dir:`Tx ~peer:Sim.Network.Node ~bytes:1_250_000 in
  check_bool "first charge ~10ms" true (d1 > Sim.Time_ns.ms 9 && d1 < Sim.Time_ns.ms 11);
  let d2 = Sim.Network.charge net ~endpoint:0 ~dir:`Tx ~peer:Sim.Network.Node ~bytes:1_250_000 in
  check_bool "charges accumulate" true (d2 > Sim.Time_ns.ms 19);
  (* The client-facing NIC is independent. *)
  let d3 =
    Sim.Network.charge net ~endpoint:0 ~dir:`Tx ~peer:Sim.Network.Client ~bytes:1_250_000
  in
  check_bool "separate NIC unaffected" true (d3 < Sim.Time_ns.ms 11);
  ignore e

(* ------------------------------------------------------------------ *)
(* Trace *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_trace_capture () =
  let e = Sim.Engine.create () in
  let (), captured =
    Sim.Trace.with_capture (fun () ->
        Sim.Trace.set_level Sim.Trace.Info;
        Sim.Trace.emit e Sim.Trace.Info "hello %d" 42;
        Sim.Trace.emit e Sim.Trace.Debug "hidden %s" "debug")
  in
  check_bool "info captured" true (contains ~needle:"hello 42" captured);
  check_bool "below-level suppressed" false (contains ~needle:"hidden" captured)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf;
        ] );
      ( "heap",
        [
          qc prop_heap_sorts;
          Alcotest.test_case "peek/length" `Quick test_heap_peek;
          Alcotest.test_case "releases popped elements" `Quick test_heap_releases_elements;
        ] );
      ( "event queue",
        [
          qc prop_queue_order_fifo;
          qc prop_queue_cancel;
          Alcotest.test_case "level boundary crossings" `Quick test_queue_boundary_times;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO at equal time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "until is monotonic" `Quick test_engine_until_non_monotonic;
          Alcotest.test_case "pending excludes cancelled" `Quick
            test_engine_pending_excludes_cancelled;
          Alcotest.test_case "cancel releases closure" `Quick
            test_engine_cancel_releases_closure;
          Alcotest.test_case "post recycles records" `Quick test_engine_post_recycles;
          qc prop_engine_matches_model;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "series" `Quick test_series;
        ] );
      ( "topology",
        [
          Alcotest.test_case "symmetry" `Quick test_topology_symmetry;
          Alcotest.test_case "sane values" `Quick test_topology_sane_values;
          Alcotest.test_case "assignment" `Quick test_topology_assignment;
        ] );
      ("trace", [ Alcotest.test_case "capture and levels" `Quick test_trace_capture ]);
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "bandwidth serialization" `Quick test_network_bandwidth_serialization;
          Alcotest.test_case "crash and partition" `Quick test_network_crash_and_partition;
          Alcotest.test_case "drop probability" `Quick test_network_drop_probability;
          Alcotest.test_case "charge" `Quick test_network_charge;
        ] );
    ]
